"""Unit tests for the broadcast executor layer (serial vs thread pool).

The contract under test: the pool executor produces the same logical
protocol — identical ``set_response`` event ordering, identical SignalSet
outcomes — as the serial executor, while overlapping the physical sends;
early abandonment discards undigested outcomes and skips undispatched
sends; per-action timeouts surface as unreachable outcomes; and the
delivery policies stay exact under concurrency.
"""

import threading
import time

import pytest

from repro.core import (
    ActivityCoordinator,
    AtLeastOnceDelivery,
    BroadcastSignalSet,
    ExactlyOnceDelivery,
    FunctionAction,
    Outcome,
    RecordingAction,
    SequenceSignalSet,
    SerialBroadcastExecutor,
    ThreadPoolBroadcastExecutor,
)
from repro.exceptions import CommunicationError
from repro.models.twopc import TwoPhaseCommitSignalSet, TwoPhaseParticipant
from repro.persistence import MemoryStore


def make_coordinator(executor, delivery=None, action_timeout=None):
    return ActivityCoordinator(
        "act-bcast",
        delivery=delivery,
        executor=executor,
        action_timeout=action_timeout,
    )


def protocol_trace(coordinator):
    """The logical protocol sequence (ignores registration events)."""
    return [
        (event.kind, event.detail.get("signal"), event.detail.get("action"),
         event.detail.get("outcome"))
        for event in coordinator.event_log
        if event.kind in ("get_signal", "transmit", "set_response", "get_outcome")
    ]


@pytest.fixture
def pool():
    with ThreadPoolBroadcastExecutor(max_workers=8) as executor:
        yield executor


class TestDeterminism:
    """Parallel broadcasts must replay the serial logical protocol."""

    def run_scenario(self, executor, participants):
        coordinator = make_coordinator(executor)
        actions = [
            TwoPhaseParticipant(name, on_prepare=on_prepare)
            for name, on_prepare in participants
        ]
        for action in actions:
            coordinator.add_action("repro.2pc", action)
        outcome = coordinator.process_signal_set(TwoPhaseCommitSignalSet())
        return outcome, protocol_trace(coordinator), actions

    def test_all_commit_same_trace_and_outcome(self, pool):
        participants = [(f"p{i}", None) for i in range(6)]
        serial_outcome, serial_trace, _ = self.run_scenario(
            SerialBroadcastExecutor(), participants
        )
        pool_outcome, pool_trace, _ = self.run_scenario(pool, participants)
        assert pool_outcome == serial_outcome
        assert pool_outcome.name == "committed"
        assert pool_trace == serial_trace

    def test_no_vote_pivot_same_set_response_ordering(self, pool):
        # p2 votes rollback: the prepare broadcast is abandoned and the
        # set pivots to a rollback signal for everyone.
        participants = [
            ("p0", None),
            ("p1", None),
            ("p2", lambda: False),
            ("p3", None),
            ("p4", None),
        ]
        serial_outcome, serial_trace, _ = self.run_scenario(
            SerialBroadcastExecutor(), participants
        )
        pool_outcome, pool_trace, _ = self.run_scenario(pool, participants)
        assert pool_outcome == serial_outcome
        assert pool_outcome.name == "rolled_back"
        serial_responses = [e for e in serial_trace if e[0] == "set_response"]
        pool_responses = [e for e in pool_trace if e[0] == "set_response"]
        assert pool_responses == serial_responses

    def test_multi_signal_sequence_identical(self, pool):
        for executor_factory in (SerialBroadcastExecutor, lambda: pool):
            coordinator = make_coordinator(executor_factory())
            recorders = [RecordingAction(f"r{i}") for i in range(4)]
            for recorder in recorders:
                coordinator.add_action("seq", recorder)
            outcome = coordinator.process_signal_set(
                SequenceSignalSet("seq", ["s1", "s2", "s3"])
            )
            assert outcome.is_done and outcome.data == 12
            for recorder in recorders:
                assert recorder.signal_names == ["s1", "s2", "s3"]

    def test_delivery_ids_stamped_in_registration_order(self, pool):
        coordinator = make_coordinator(pool)
        recorders = [RecordingAction(f"r{i}") for i in range(5)]
        for recorder in recorders:
            coordinator.add_action("b", recorder)
        coordinator.process_signal_set(BroadcastSignalSet("go", signal_set_name="b"))
        ids = [recorder.received[0].delivery_id for recorder in recorders]
        assert ids == [f"delivery-{n}" for n in range(1, 6)]


class TestParallelism:
    def test_sends_overlap(self, pool):
        """8 actions that block until all 8 pool workers are busy at once."""
        barrier = threading.Barrier(8, timeout=5.0)

        def slow(signal):
            barrier.wait()
            return Outcome.done()

        coordinator = make_coordinator(pool)
        for i in range(8):
            coordinator.add_action("b", FunctionAction(slow, name=f"a{i}"))
        outcome = coordinator.process_signal_set(
            BroadcastSignalSet("go", signal_set_name="b")
        )
        # The barrier only releases when all 8 sends ran concurrently; a
        # serial executor would deadlock (hence the barrier timeout).
        assert outcome.is_done

    def test_single_action_broadcast_takes_serial_path(self, pool):
        coordinator = make_coordinator(pool)
        coordinator.add_action("b", RecordingAction("only"))
        outcome = coordinator.process_signal_set(
            BroadcastSignalSet("go", signal_set_name="b")
        )
        assert outcome.is_done


class TestEarlyAbandon:
    class PivotOnFirst(SequenceSignalSet):
        def __init__(self):
            super().__init__("pivot", ["first", "second"])

        def on_response(self, signal_name, response):
            return signal_name == "first" and response.name == "pivot-now"

    def test_undispatched_sends_skipped(self):
        # One worker: a2's send is still queued when a1's outcome digests
        # and abandons, so it must be cancelled — a2 never sees "first".
        with ThreadPoolBroadcastExecutor(max_workers=1) as executor:
            coordinator = make_coordinator(executor)
            seen = []
            coordinator.add_action(
                "pivot",
                FunctionAction(
                    lambda s: (seen.append(("a1", s.signal_name)),
                               Outcome.of("pivot-now"))[-1],
                    name="a1",
                ),
            )
            coordinator.add_action(
                "pivot",
                FunctionAction(
                    lambda s: seen.append(("a2", s.signal_name)), name="a2"
                ),
            )
            coordinator.process_signal_set(self.PivotOnFirst())
            assert ("a2", "first") not in seen
            assert ("a2", "second") in seen
            assert executor.skipped_sends >= 1

    def test_in_flight_outcome_discarded_not_digested(self, pool):
        # a2's send is already running when a1 abandons; its outcome must
        # be drained and discarded, never fed to the SignalSet.
        release = threading.Event()
        a2_started = threading.Event()

        def fast_first(signal):
            # Only pivot once a2's send is genuinely in flight, so the
            # abandonment cannot cancel it and must drain it instead.
            a2_started.wait(timeout=5.0)
            return Outcome.of("pivot-now")

        def slow_second(signal):
            if signal.signal_name == "first":
                a2_started.set()
                release.wait(timeout=5.0)
                return Outcome.of("late-vote")
            return Outcome.done()

        coordinator = make_coordinator(pool)
        coordinator.add_action("pivot", FunctionAction(fast_first, name="a1"))
        coordinator.add_action("pivot", FunctionAction(slow_second, name="a2"))
        signal_set = self.PivotOnFirst()
        # a2 is mid-send when a1's pivot digests; release it shortly
        # after the abandonment so the drain completes.
        threading.Timer(0.1, release.set).start()
        coordinator.process_signal_set(signal_set)
        responses = [(name, outcome.name) for name, outcome in signal_set.responses]
        # "first" was digested exactly once (a1's pivot); a2's late vote
        # for "first" was drained and discarded, never fed to the set.
        assert [r for r in responses if r[0] == "first"] == [("first", "pivot-now")]
        assert pool.discarded_outcomes >= 1


class TestActionTimeout:
    def test_slow_action_becomes_unreachable(self, pool):
        started = threading.Event()

        def stuck(signal):
            started.set()
            time.sleep(0.5)
            return Outcome.done()

        coordinator = make_coordinator(pool, action_timeout=0.05)
        coordinator.add_action("b", FunctionAction(stuck, name="stuck"))
        coordinator.add_action("b", RecordingAction("fast"))
        outcome = coordinator.process_signal_set(
            BroadcastSignalSet("go", signal_set_name="b")
        )
        assert started.is_set()
        assert outcome.is_error  # the unreachable outcome poisons the set
        assert pool.timeouts >= 1
        responses = [
            event.detail["outcome"]
            for event in coordinator.event_log.of_kind("set_response")
        ]
        assert "repro.activity.unreachable" in responses


class TestThreadSafeDelivery:
    def test_at_least_once_counters_exact_under_concurrency(self, pool):
        fail_once = {}
        lock = threading.Lock()

        def flaky(signal):
            with lock:
                first = signal.delivery_id not in fail_once
                fail_once[signal.delivery_id] = True
            if first:
                raise CommunicationError("lost", transient=True)
            return Outcome.done()

        delivery = AtLeastOnceDelivery(max_attempts=3)
        coordinator = make_coordinator(pool, delivery=delivery)
        for i in range(16):
            coordinator.add_action("b", FunctionAction(flaky, name=f"a{i}"))
        outcome = coordinator.process_signal_set(
            BroadcastSignalSet("go", signal_set_name="b")
        )
        assert outcome.is_done
        assert delivery.attempts == 32  # one failure + one success each
        assert delivery.retries == 16
        assert delivery.failures == 0

    def test_exactly_once_ledger_complete_under_concurrency(self, pool):
        store = MemoryStore()
        delivery = ExactlyOnceDelivery(store=store)
        coordinator = make_coordinator(pool, delivery=delivery)
        recorders = [RecordingAction(f"r{i}") for i in range(16)]
        for recorder in recorders:
            coordinator.add_action("b", recorder)
        outcome = coordinator.process_signal_set(
            BroadcastSignalSet("go", signal_set_name="b")
        )
        assert outcome.is_done
        # Every delivery is in the durable ledger once the broadcast ends.
        assert len(store.keys()) == 16
        assert delivery.ledger_flushes >= 1
        # Redelivery of a recorded id is suppressed by the ledger.
        recorded = recorders[0].received[0]
        hit = delivery.deliver(lambda s: Outcome.of("resent"), recorded)
        assert hit.is_done
        assert delivery.ledger_hits == 1
        assert recorders[0].signal_names == ["go"]


class TestExecutorValidation:
    def test_max_workers_positive(self):
        with pytest.raises(ValueError):
            ThreadPoolBroadcastExecutor(max_workers=0)

    def test_shutdown_idempotent(self):
        executor = ThreadPoolBroadcastExecutor()
        executor.shutdown()
        executor.shutdown()


class TestReentrancy:
    def test_nested_broadcast_from_action_does_not_deadlock(self, pool):
        """An action completing a nested activity through the same pool
        executor (HLS nesting) must run the inner broadcast serially
        instead of deadlocking on its own pool's slots."""
        inner_seen = []

        def complete_nested(signal):
            inner = make_coordinator(pool)
            for i in range(4):
                inner.add_action(
                    "inner",
                    FunctionAction(lambda s, n=i: inner_seen.append(n), name=f"i{i}"),
                )
            return inner.process_signal_set(
                BroadcastSignalSet("go", signal_set_name="inner")
            )

        outer = make_coordinator(pool)
        for i in range(8):
            outer.add_action("outer", FunctionAction(complete_nested, name=f"o{i}"))
        outcome = outer.process_signal_set(
            BroadcastSignalSet("go", signal_set_name="outer")
        )
        assert outcome.is_done
        assert len(inner_seen) == 32
        assert pool.nested_serial == 8


class TestTimedOutQueuedSends:
    def test_timed_out_queued_send_cancelled_never_fires(self):
        """A send still *queued* when its outcome times out must be
        cancelled — it must not fire a stale signal later."""
        with ThreadPoolBroadcastExecutor(max_workers=1) as executor:
            release = threading.Event()
            late_ran = []

            def hang(signal):
                release.wait(timeout=5.0)
                return Outcome.done()

            coordinator = make_coordinator(executor, action_timeout=0.05)
            coordinator.add_action("b", FunctionAction(hang, name="hang"))
            coordinator.add_action(
                "b", FunctionAction(lambda s: late_ran.append(True), name="late")
            )
            outcome = coordinator.process_signal_set(
                BroadcastSignalSet("go", signal_set_name="b")
            )
            assert outcome.is_error  # both digested as unreachable
            assert executor.skipped_sends >= 1  # the queued send, cancelled
            release.set()
            time.sleep(0.1)  # give the worker time to pick up queued work
            assert late_ran == []
