"""Chaos-hardened runtime: seeded fault campaigns over the federation.

The package turns the repo's existing determinism seams — the
:class:`~repro.util.clock.SimulatedClock`, seeded
:class:`~repro.orb.transport.FaultPlan` transports, protocol failpoints
and durable-media domain reboots — into a replayable chaos harness:

- :mod:`repro.chaos.schedule` draws seeded fault schedules (partitions,
  crashes, protocol-point failpoints, flaky links, clock jumps);
- :mod:`repro.chaos.world` hosts the N-domain federated world whose
  durable media survive crashes, with idempotent bank accounts;
- :mod:`repro.chaos.workload` runs randomized mixed workloads (flat
  transactions, sagas, BTP atoms, timed activities) and ledgers every
  outcome the client observed;
- :mod:`repro.chaos.invariants` judges the quiesced world: conservation,
  exactly-once outcomes, no orphans, WAL-replay convergence;
- :mod:`repro.chaos.campaign` ties them together — ``run_campaign(seed)``
  is a pure function of its seed, so any CI failure replays locally;
- :mod:`repro.chaos.multiprocess` drives the same story over real site
  daemons with SIGKILLs (the nightly job).
"""

from repro.chaos.campaign import (
    CampaignConfig,
    CampaignResult,
    run_campaign,
    run_sweep,
)
from repro.chaos.invariants import (
    ConservationChecker,
    InvariantChecker,
    InvariantViolation,
    OrphanChecker,
    OutcomeChecker,
    ReplicationChecker,
    WalReplayChecker,
    default_checkers,
    run_checkers,
)
from repro.chaos.schedule import (
    ChaosEvent,
    ChaosProfile,
    ChaosSchedule,
    FAILPOINT_NAMES,
)
from repro.chaos.workload import DEFAULT_MIX, OpResult, WorkloadRunner
from repro.chaos.world import ChaosAccount, ChaosDomain, ChaosWorld

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "run_campaign",
    "run_sweep",
    "ConservationChecker",
    "InvariantChecker",
    "InvariantViolation",
    "OrphanChecker",
    "OutcomeChecker",
    "ReplicationChecker",
    "WalReplayChecker",
    "default_checkers",
    "run_checkers",
    "ChaosEvent",
    "ChaosProfile",
    "ChaosSchedule",
    "FAILPOINT_NAMES",
    "DEFAULT_MIX",
    "OpResult",
    "WorkloadRunner",
    "ChaosAccount",
    "ChaosDomain",
    "ChaosWorld",
]
