"""Ablation — PropertyGroup propagation: by value vs by reference (§3.3).

By-value groups snapshot into every outgoing request (bytes on the wire
scale with group size, downstream writes are invisible upstream);
by-reference groups ship one ObjectRef and pay a round-trip per
downstream property access (writes are visible upstream immediately).
The crossover is the artefact: small groups / chatty access favour
by-reference; large groups / rare access favour… actually the reverse —
this bench produces the actual table.
"""

import pytest

from repro.core import (
    ActivityManager,
    Propagation,
    PropertyGroup,
    received_context,
)
from repro.orb import Orb
from repro.orb.core import Servant


def build(propagation, group_size):
    orb = Orb()
    origin = orb.create_node("origin")
    server = orb.create_node("server")
    manager = ActivityManager(clock=orb.clock)
    manager.install(orb)
    group = PropertyGroup(
        "ctx", propagation=propagation,
        initial={f"key-{i}": f"value-{i}" for i in range(group_size)},
    )
    if propagation is Propagation.REFERENCE:
        manager.export_property_group(group, origin)

    class Reader(Servant):
        def read_one(self):
            groups = received_context(orb).received_groups()
            return groups["ctx"].get_property("key-0")

        def noop(self):
            return True

    ref = server.activate(Reader())
    activity = manager.current.begin("ablation")
    activity.attach_property_group(group)
    return orb, manager, ref, group


class TestPropagationAblation:
    def test_wire_cost_table(self, benchmark, emit):
        def scenario_run():
            rows = []
            for propagation in (Propagation.VALUE, Propagation.REFERENCE):
                for size in (1, 32, 256):
                    orb, manager, ref, group = build(propagation, size)
                    orb.transport.stats.reset()
                    for _ in range(5):
                        ref.invoke("noop")
                    rows.append(
                        (propagation.value, size,
                         orb.transport.stats.bytes_sent,
                         orb.transport.stats.requests_sent)
                    )
                    manager.current.complete()
            return rows

        rows = benchmark.pedantic(scenario_run, rounds=1, iterations=1)
        by_value = {size: bytes_ for prop, size, bytes_, _ in rows if prop == "by-value"}
        by_ref = {size: bytes_ for prop, size, bytes_, _ in rows if prop == "by-reference"}
        # Shape: by-value cost grows with group size; by-reference doesn't.
        assert by_value[256] > by_value[32] > by_value[1]
        assert by_ref[256] < by_value[256] / 4
        assert abs(by_ref[256] - by_ref[1]) < by_ref[1] * 0.5
        emit(
            "ablation_propagation",
            ["ablation — context bytes for 5 calls carrying a group:",
             "  propagation    size  bytes_on_wire  requests"]
            + [f"  {p:12s}  {s:5d}  {b:13d}  {r:8d}" for p, s, b, r in rows],
            data={
                "by_value_bytes_at_256": by_value[256],
                "by_reference_bytes_at_256": by_ref[256],
            },
        )

    def test_semantics_difference(self, benchmark, emit):
        """Downstream write visibility: the defining semantic difference."""

        def scenario_run():
            outcomes = {}
            for propagation in (Propagation.VALUE, Propagation.REFERENCE):
                orb = Orb()
                origin = orb.create_node("origin")
                server = orb.create_node("server")
                manager = ActivityManager(clock=orb.clock)
                manager.install(orb)
                group = PropertyGroup("ctx", propagation=propagation,
                                      initial={"k": "original"})
                if propagation is Propagation.REFERENCE:
                    manager.export_property_group(group, origin)

                class Writer(Servant):
                    def write(self):
                        groups = received_context(orb).received_groups()
                        groups["ctx"].set_property("k", "downstream")
                        return True

                ref = server.activate(Writer())
                activity = manager.current.begin()
                activity.attach_property_group(group)
                ref.invoke("write")
                outcomes[propagation.value] = group.get_property("k")
                manager.current.complete()
            return outcomes

        outcomes = benchmark.pedantic(scenario_run, rounds=1, iterations=1)
        assert outcomes["by-value"] == "original"
        assert outcomes["by-reference"] == "downstream"
        emit(
            "ablation_propagation",
            ["ablation — downstream write visibility:",
             f"  by-value     : origin sees {outcomes['by-value']!r}",
             f"  by-reference : origin sees {outcomes['by-reference']!r}"],
        )

    @pytest.mark.parametrize("propagation,size", [
        (Propagation.VALUE, 1),
        (Propagation.VALUE, 256),
        (Propagation.REFERENCE, 1),
        (Propagation.REFERENCE, 256),
    ])
    def test_bench_invocation_with_group(self, benchmark, propagation, size):
        orb, manager, ref, group = build(propagation, size)
        benchmark(lambda: ref.invoke("noop"))

    @pytest.mark.parametrize("propagation", [Propagation.VALUE, Propagation.REFERENCE])
    def test_bench_downstream_read(self, benchmark, propagation):
        """Reading one property downstream: snapshot hit vs round-trip."""
        orb, manager, ref, group = build(propagation, 32)
        benchmark(lambda: ref.invoke("read_one"))
