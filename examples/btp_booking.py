"""BTP atoms and cohesions for the travel booking (§4.5, figs 11–12).

Run:  python examples/btp_booking.py

Each reservation is a BTP *atom* (prepare = provisional hold, confirm =
real booking, cancel = release).  The whole trip is a *cohesion*: the
business logic prepares atoms as it goes, drops the hotel when it turns
out to be unacceptable, enrols a cancellation atom, and finally confirms
its chosen confirm-set atomically.
"""

from repro.apps import TravelScenario
from repro.core import ActivityManager
from repro.models import BtpAtom, BtpCohesion, BtpParticipant, BtpStatus


def make_atom(manager, cohesion, service, client):
    """One reservation atom whose participant drives the service."""
    holds = {}

    def on_prepare() -> bool:
        try:
            holds["id"] = service.prepare_booking(client)
            return True
        except Exception:
            return False

    def on_confirm() -> None:
        service.confirm_booking(holds["id"])

    def on_cancel() -> None:
        if "id" in holds:
            service.cancel_booking(holds["id"])

    atom = BtpAtom(manager, service.name)
    atom.enroll(
        BtpParticipant(
            service.name,
            on_prepare=on_prepare,
            on_confirm=on_confirm,
            on_cancel=on_cancel,
        )
    )
    cohesion.enroll(atom)
    return atom


def main() -> None:
    scenario = TravelScenario(capacity=3)
    manager = ActivityManager()
    cohesion = BtpCohesion(manager, "trip")

    for service in scenario.services:
        make_atom(manager, cohesion, service, client="carol")

    # Business rules in action: prepare the easy ones up front…
    assert cohesion.prepare_member("taxi")
    assert cohesion.prepare_member("restaurant")
    print("taxi and restaurant prepared (held, not booked)")
    print(f"  holds outstanding: taxi={scenario.taxi.holds_outstanding}, "
          f"restaurant={scenario.restaurant.holds_outstanding}")

    # …then discover the hotel quote is unacceptable and cancel that member.
    cohesion.cancel_member("hotel")
    print("hotel cancelled by business logic (price not acceptable)")

    # The confirm-set is everything except the hotel.
    outcomes = cohesion.confirm(["taxi", "restaurant", "theatre"])
    print("cohesion outcomes:")
    for name in sorted(outcomes):
        print(f"  {name:12s} {outcomes[name].value}")

    assert outcomes["taxi"] is BtpStatus.CONFIRMED
    assert outcomes["theatre"] is BtpStatus.CONFIRMED
    assert outcomes["hotel"] is BtpStatus.CANCELLED
    # Confirmed services hold real bookings; the hotel pool is untouched.
    assert scenario.taxi.booking_count() == 1
    assert scenario.hotel.available() == 3
    assert scenario.taxi.holds_outstanding == 0
    print("\nconfirm-set booked atomically; cancelled member left no trace")


if __name__ == "__main__":
    main()
