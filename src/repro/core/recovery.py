"""Activity-structure recovery (§3.4).

The paper's recovery requirements: *rebinding of the activity structure*
(references valid again after failure), *recover actions and signal sets*,
with the application's logic driving in-flight activities to consistency.

The division of labour here:

- the service checkpoints, per activity, everything it owns: identity,
  parentage, lifecycle state, completion status, the names of registered
  SignalSets and the factory names + configs of durable Actions;
- applications register *factories* for their signal sets and actions
  with the :class:`~repro.core.manager.ActivityManager`;
- ``recover()`` rebuilds the activity tree in parent-first order,
  re-instantiates signal sets and actions through those factories, and
  reports which activities are still in flight — the application then
  drives them (e.g. re-runs completion) exactly as it would at runtime.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.activity import Activity
from repro.core.exceptions import RecoveryError
from repro.core.status import ActivityStatus, CompletionStatus
from repro.persistence.object_store import ObjectStore

_RECORD_PREFIX = "activity-record:"


class ActivityRecoveryService:
    """Checkpoints and recovers the activity structure for one manager."""

    def __init__(self, manager: Any, store: ObjectStore) -> None:
        self.manager = manager
        self.store = store

    # -- checkpointing -------------------------------------------------------

    def checkpoint(self, activity: Activity) -> None:
        """Persist one activity's structure record."""
        self.store.put(
            _RECORD_PREFIX + activity.activity_id, self._structure_record(activity)
        )

    def _structure_record(self, activity: Activity) -> Dict[str, Any]:
        """Build the durable structure record for one activity."""
        durable_actions = []
        coordinator = activity.coordinator
        for set_name in list(coordinator._actions):
            for record in coordinator.actions_for(set_name):
                if record.factory_name is not None:
                    durable_actions.append(
                        {
                            "signal_set": set_name,
                            "factory": record.factory_name,
                            "config": record.factory_config,
                        }
                    )
        durable_sets = []
        for set_name in activity.signal_set_names():
            signal_set = activity.signal_set(set_name)
            factory_name = getattr(signal_set, "_factory_name", None)
            if factory_name is not None:
                durable_sets.append(
                    {
                        "factory": factory_name,
                        "completion": activity.completion_signal_set_name == set_name,
                    }
                )
        return {
            "id": activity.activity_id,
            "name": activity.name,
            "parent": activity.parent.activity_id if activity.parent else None,
            "status": activity.status,
            "completion_status": activity.get_completion_status(),
            "signal_sets": durable_sets,
            "actions": durable_actions,
            # Deadlines survive recovery: a timed activity that crashes
            # mid-flight is still policed after restart (the manager
            # re-arms its wheel timer on adopt).
            "deadline": activity.deadline,
        }

    def checkpoint_tree(self, root: Activity) -> int:
        """Checkpoint ``root`` and every descendant in one batched store
        write (one flush however deep the tree); return count."""
        batch: Dict[str, Dict[str, Any]] = {}
        stack = [root]
        while stack:
            activity = stack.pop()
            batch[_RECORD_PREFIX + activity.activity_id] = self._structure_record(
                activity
            )
            stack.extend(activity.children)
        self.store.put_many(batch)
        return len(batch)

    def forget(self, activity_id: str) -> None:
        key = _RECORD_PREFIX + activity_id
        if self.store.contains(key):
            self.store.remove(key)

    # -- recovery ----------------------------------------------------------------

    def recover(self) -> List[str]:
        """Rebuild all checkpointed activities; return in-flight ids."""
        records: Dict[str, Dict[str, Any]] = {}
        for key in self.store.keys():
            if key.startswith(_RECORD_PREFIX):
                record = self.store.get(key)
                records[record["id"]] = record

        in_flight: List[str] = []
        built: Dict[str, Activity] = {}

        def build(activity_id: str) -> Activity:
            if activity_id in built:
                return built[activity_id]
            if self.manager.knows(activity_id):
                activity = self.manager.get(activity_id)
                built[activity_id] = activity
                return activity
            record = records.get(activity_id)
            if record is None:
                raise RecoveryError(
                    f"activity {activity_id!r} referenced but not checkpointed"
                )
            parent = build(record["parent"]) if record["parent"] else None
            activity = Activity(
                activity_id=record["id"],
                name=record["name"],
                parent=parent,
                manager=self.manager,
                event_log=self.manager.event_log,
                delivery=self.manager.delivery,
                clock=self.manager.clock,
                executor=self.manager.executor,
                action_timeout=self.manager.action_timeout,
                interposer=getattr(self.manager, "interposer", None),
            )
            activity.status = record["status"]
            if record["status"] is ActivityStatus.COMPLETING:
                # In-flight completion must be re-driven by the application.
                activity.status = ActivityStatus.ACTIVE
            # Pre-deadline checkpoints lack the key; .get keeps them readable.
            activity.deadline = record.get("deadline")
            if record["completion_status"] is not CompletionStatus.SUCCESS:
                activity.set_completion_status(record["completion_status"])
            for set_record in record["signal_sets"]:
                signal_set = self.manager.make_signal_set(set_record["factory"])
                activity.register_signal_set(
                    signal_set,
                    completion=set_record["completion"],
                    factory_name=set_record["factory"],
                )
            for action_record in record["actions"]:
                action = self.manager.make_action(
                    action_record["factory"], action_record["config"]
                )
                activity.add_action(
                    action_record["signal_set"],
                    action,
                    factory_name=action_record["factory"],
                    factory_config=action_record["config"],
                )
            self.manager.adopt(activity)
            built[activity_id] = activity
            if not activity.status.is_terminal:
                in_flight.append(activity_id)
            return activity

        for activity_id in sorted(records):
            build(activity_id)
        return sorted(in_flight)
