"""Load engine: sketch accuracy, seeded drivers, and the knee (PR 10).

The harness's whole value is determinism: the same seed must produce the
same arrival stream, the same admission decisions, and the same report —
else the fig. 22 ratios would be noise.  These tests pin that down at
small scale, plus the headline comparison itself: an admission-gated
control plane keeps its goodput and p99 past the knee where the ungated
one collapses.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.config import RuntimeConfig
from repro.core import ActivityManager
from repro.load import (
    CapacityModel,
    ClosedLoopDriver,
    OpenLoopDriver,
    QuantileSketch,
    TrafficMix,
    ZipfPopularity,
    run_open_loop_activities,
    run_population_hold,
)
from repro.util.clock import SimulatedClock
from repro.util.rng import SeededRng


class TestQuantileSketch:
    def test_quantiles_within_relative_error(self):
        sketch = QuantileSketch(growth=1.02)
        for i in range(1, 100001):
            sketch.add(i / 1000.0)  # uniform 0.001 .. 100.0
        for q, expect in ((0.5, 50.0), (0.95, 95.0), (0.99, 99.0)):
            assert sketch.quantile(q) == pytest.approx(expect, rel=0.03)
        assert sketch.min == pytest.approx(0.001)
        assert sketch.max == pytest.approx(100.0)
        assert sketch.count == 100000

    def test_memory_is_bounded_by_buckets_not_count(self):
        sketch = QuantileSketch()
        for i in range(200000):
            sketch.add((i % 1000) / 100.0 + 0.001)
        # 200k samples, but storage is one counter per geometric bucket.
        assert sketch.describe()["buckets"] < 600

    def test_merge_equals_single_stream(self):
        whole, left, right = QuantileSketch(), QuantileSketch(), QuantileSketch()
        rng = SeededRng(5)
        for index in range(5000):
            value = rng.uniform(0.001, 10.0)
            whole.add(value)
            (left if index % 2 else right).add(value)
        left.merge(right)
        assert left.count == whole.count
        assert left.quantile(0.99) == whole.quantile(0.99)
        assert left.max == whole.max

    def test_rejects_bad_input(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.add(-1.0)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)
        with pytest.raises(ValueError):
            sketch.merge(QuantileSketch(growth=1.5))


class TestZipfPopularity:
    def test_skew_concentrates_mass(self):
        zipf = ZipfPopularity(1000, skew=0.99)
        assert zipf.mass(10) > 0.3  # top 1% of keys > 30% of traffic
        uniform = ZipfPopularity(1000, skew=0.0)
        assert uniform.mass(10) == pytest.approx(0.01)

    def test_draws_are_seeded_and_in_range(self):
        zipf = ZipfPopularity(100, skew=1.0)
        first = [zipf.draw(SeededRng(9).fork("k")) for _ in range(1)]
        second = [zipf.draw(SeededRng(9).fork("k")) for _ in range(1)]
        assert first == second
        rng = SeededRng(3)
        draws = [zipf.draw(rng) for _ in range(2000)]
        assert all(0 <= d < 100 for d in draws)
        assert draws.count(0) > draws.count(99)  # rank 0 is hottest


class TestDrivers:
    def test_open_loop_stream_is_replayable(self):
        def run():
            clock = SimulatedClock()
            log = []
            driver = OpenLoopDriver(
                clock,
                SeededRng(11).fork("arrivals"),
                rate=50.0,
                issue=lambda kind, index, now: log.append((kind, index, round(now, 9))),
                duration=2.0,
            )
            driver.start()
            clock.run_until_idle()
            return log

        first, second = run(), run()
        assert first == second
        assert len(first) > 50  # ~100 expected at rate 50 over 2s
        assert {kind for kind, _, _ in first} <= {"activity", "transaction", "query"}

    def test_open_loop_respects_max_ops(self):
        clock = SimulatedClock()
        log = []
        driver = OpenLoopDriver(
            clock,
            SeededRng(1),
            rate=1000.0,
            issue=lambda kind, index, now: log.append(index),
            max_ops=7,
        )
        driver.start()
        clock.run_until_idle()
        assert log == list(range(7))

    def test_closed_loop_population_self_limits(self):
        clock = SimulatedClock()
        live = [0]
        peak = [0]

        def issue(kind, client, now, done):
            live[0] += 1
            peak[0] = max(peak[0], live[0])

            def finish():
                live[0] -= 1
                done()

            clock.call_after(0.01, finish)  # 10ms "service"

        driver = ClosedLoopDriver(
            clock, SeededRng(2), clients=5, issue=issue, think=0.05, duration=3.0
        )
        driver.start()
        clock.run_until_idle()
        # A closed loop can never exceed its population, no matter how
        # long the run — that is the defining property.
        assert peak[0] <= 5
        assert driver.issued > 50

    def test_traffic_mix_validates_and_normalizes(self):
        with pytest.raises(ValueError):
            TrafficMix({})
        with pytest.raises(ValueError):
            TrafficMix({"a": -1.0})
        mix = TrafficMix({"a": 3.0, "b": 1.0})
        assert mix.describe() == {"a": 0.75, "b": 0.25}


class TestCapacityModel:
    def test_schedules_like_k_deterministic_servers(self):
        station = CapacityModel(workers=2, service_time=1.0)
        assert station.capacity == 2.0
        # Three simultaneous arrivals: two start now, one queues.
        assert station.schedule(0.0) == 1.0
        assert station.schedule(0.0) == 1.0
        assert station.schedule(0.0) == 2.0
        assert station.backlog(0.0) == 1.0


class TestKnee:
    def test_admission_keeps_goodput_and_p99_past_the_knee(self):
        """The fig. 22 story at miniature scale: past saturation the
        gated run holds goodput near capacity with bounded p99; the
        ungated run's queue grows without bound and goodput collapses."""

        def run(max_live):
            config = RuntimeConfig(max_live=max_live) if max_live else RuntimeConfig()
            manager = ActivityManager(clock=SimulatedClock(), config=config)
            return run_open_loop_activities(
                manager,
                rate=400.0,  # 2x the station's 200/s capacity
                duration=5.0,
                workers=2,
                service_time=0.01,
                deadline=0.5,
                rng=SeededRng(7),
            ).report()

        gated, ungated = run(50), run(None)
        assert gated["shed"] > 0
        assert ungated["shed"] == 0
        assert ungated["peak_live"] > 50  # the unbounded queue, visible
        # Goodput: gated sustains ~capacity, ungated collapses.
        assert gated["goodput_ops_s"] > 0.9 * 200.0
        assert gated["goodput_ops_s"] > 3.0 * ungated["goodput_ops_s"]
        # Tail: bounded by max_live/capacity vs growing with the backlog.
        assert gated["latency"]["p99"] < 0.5
        assert ungated["latency"]["p99"] > 2.0

    def test_knee_run_is_deterministic(self):
        def run():
            manager = ActivityManager(
                clock=SimulatedClock(), config=RuntimeConfig(max_live=50)
            )
            report = run_open_loop_activities(
                manager,
                rate=400.0,
                duration=2.0,
                workers=2,
                service_time=0.01,
                deadline=0.5,
                rng=SeededRng(7),
            ).report()
            # Memory fields are measured, not simulated; drop them.
            report.pop("peak_rss_bytes")
            report.pop("peak_blocks")
            return report

        assert run() == run()


class TestPopulationHold:
    def test_holds_target_population_and_sheds_at_ceiling(self):
        manager = ActivityManager(
            clock=SimulatedClock(), config=RuntimeConfig(max_live=3000)
        )
        result = run_population_hold(manager, 3000, probe_extra=8)
        assert result["live_peak"] == 3000
        assert result["shed_at_ceiling"] == 8
        assert manager.admission.live == 0  # fully drained
        assert result["blocks_per_activity"] < 200  # bounded per-activity heap

    def test_ungated_hold_admits_the_probes(self):
        manager = ActivityManager(clock=SimulatedClock())
        result = run_population_hold(manager, 100, probe_extra=4)
        assert result["live_peak"] == 100
        assert result["shed_at_ceiling"] == 0


class TestCliSmoke:
    def test_module_entrypoint_reports_taxonomy(self, tmp_path):
        out = tmp_path / "report.json"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.load",
                "--clients",
                "4",
                "--duration",
                "1",
                "--max-live",
                "2",
                "--service-time",
                "0.005",
                "--report",
                str(out),
            ],
            capture_output=True,
            text=True,
            timeout=60,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        report = json.loads(out.read_text())
        assert report["client_errors"] == []
        assert report["ok"] > 0
        assert report["max_live"] == 2
        assert report["admission"]["max_live"] == 2
        assert report["attempted"] == report["ok"] + report["deadline_miss"] + (
            report["shed"] + report["overload"] + report["error"]
        )
        assert report["latency"]["p99"] >= report["latency"]["p50"] > 0
