"""Unit tests for the ActivityCoordinator broadcast engine (fig. 5)."""

import pytest

from repro.core import (
    ActionError,
    ActivityCoordinator,
    AtMostOnceDelivery,
    BroadcastSignalSet,
    FunctionAction,
    Outcome,
    RecordingAction,
    SequenceSignalSet,
)


@pytest.fixture
def coordinator():
    return ActivityCoordinator("act-1")


class TestRegistration:
    def test_actions_register_by_set_name(self, coordinator):
        a1 = RecordingAction("a1")
        record = coordinator.add_action("set-x", a1)
        assert record.signal_set_name == "set-x"
        assert coordinator.actions_for("set-x") == [record]
        assert coordinator.actions_for("other") == []

    def test_action_count(self, coordinator):
        coordinator.add_action("a", RecordingAction())
        coordinator.add_action("a", RecordingAction())
        coordinator.add_action("b", RecordingAction())
        assert coordinator.action_count == 3

    def test_remove_action(self, coordinator):
        record = coordinator.add_action("a", RecordingAction())
        coordinator.remove_action(record)
        assert coordinator.actions_for("a") == []

    def test_remove_actions_for(self, coordinator):
        coordinator.add_action("a", RecordingAction())
        coordinator.add_action("a", RecordingAction())
        assert coordinator.remove_actions_for("a") == 2

    def test_registration_order_preserved(self, coordinator):
        order = []
        for name in ("first", "second", "third"):
            coordinator.add_action(
                "set", FunctionAction(lambda s, n=name: order.append(n), name=name)
            )
        coordinator.process_signal_set(BroadcastSignalSet("go", signal_set_name="set"))
        assert order == ["first", "second", "third"]


class TestBroadcast:
    def test_every_action_gets_every_signal(self, coordinator):
        a1, a2 = RecordingAction("a1"), RecordingAction("a2")
        coordinator.add_action("seq", a1)
        coordinator.add_action("seq", a2)
        coordinator.process_signal_set(SequenceSignalSet("seq", ["s1", "s2"]))
        assert a1.signal_names == ["s1", "s2"]
        assert a2.signal_names == ["s1", "s2"]

    def test_unique_delivery_ids_per_transmission(self, coordinator):
        a1, a2 = RecordingAction("a1"), RecordingAction("a2")
        coordinator.add_action("seq", a1)
        coordinator.add_action("seq", a2)
        coordinator.process_signal_set(SequenceSignalSet("seq", ["s1", "s2"]))
        ids = [s.delivery_id for s in a1.received + a2.received]
        assert len(set(ids)) == 4
        assert all(i is not None for i in ids)

    def test_outcome_returned(self, coordinator):
        coordinator.add_action("b", RecordingAction())
        outcome = coordinator.process_signal_set(
            BroadcastSignalSet("go", signal_set_name="b")
        )
        assert outcome.is_done

    def test_no_registered_actions_still_completes(self, coordinator):
        outcome = coordinator.process_signal_set(
            BroadcastSignalSet("go", signal_set_name="empty")
        )
        assert outcome.is_done and outcome.data == []

    def test_action_error_becomes_error_outcome(self, coordinator):
        def explode(signal):
            raise ActionError("cannot")

        coordinator.add_action("b", FunctionAction(explode))
        outcome = coordinator.process_signal_set(
            BroadcastSignalSet("go", signal_set_name="b")
        )
        assert outcome.is_error

    def test_unexpected_exception_becomes_error_outcome(self, coordinator):
        def explode(signal):
            raise ValueError("bug in action")

        coordinator.add_action("b", FunctionAction(explode))
        outcome = coordinator.process_signal_set(
            BroadcastSignalSet("go", signal_set_name="b")
        )
        assert outcome.is_error

    def test_plain_return_value_wrapped(self, coordinator):
        coordinator.add_action("b", FunctionAction(lambda s: "data"))
        outcome = coordinator.process_signal_set(
            BroadcastSignalSet("go", signal_set_name="b")
        )
        assert outcome.is_done


class TestInterruption:
    """set_response returning True abandons the current broadcast."""

    class PivotingSet(SequenceSignalSet):
        def __init__(self):
            super().__init__("pivot", ["first", "second"])
            self.pivoted = False

        def on_response(self, signal_name, response):
            if signal_name == "first" and response.name == "pivot-now":
                self.pivoted = True
                return True
            return False

    def test_abandons_remaining_actions(self, coordinator):
        order = []
        coordinator.add_action(
            "pivot",
            FunctionAction(
                lambda s: (order.append(("a1", s.signal_name)), Outcome.of("pivot-now"))[-1],
                name="a1",
            ),
        )
        coordinator.add_action(
            "pivot",
            FunctionAction(lambda s: order.append(("a2", s.signal_name)), name="a2"),
        )
        signal_set = self.PivotingSet()
        coordinator.process_signal_set(signal_set)
        assert signal_set.pivoted
        # a2 never saw "first" (abandoned) but did see "second".
        assert ("a2", "first") not in order
        assert ("a2", "second") in order


class TestEventTrace:
    def test_fig5_shape(self, coordinator):
        """get_signal → transmit/set_response per action → get_outcome."""
        coordinator.add_action("b", RecordingAction("a1"))
        coordinator.add_action("b", RecordingAction("a2"))
        coordinator.process_signal_set(BroadcastSignalSet("go", signal_set_name="b"))
        kinds = coordinator.event_log.kinds()
        # Two add_action events, then the protocol.
        assert kinds[2:] == [
            "get_signal",
            "transmit",
            "set_response",
            "transmit",
            "set_response",
            "get_outcome",
        ]

    def test_trace_carries_signal_and_action(self, coordinator):
        coordinator.add_action("b", RecordingAction("a1"))
        coordinator.process_signal_set(BroadcastSignalSet("go", signal_set_name="b"))
        transmits = coordinator.event_log.of_kind("transmit")
        assert transmits[0].detail["signal"] == "go"
        assert transmits[0].detail["action"] == "a1"


class TestDeliveryIntegration:
    def test_unreachable_action_becomes_unreachable_outcome(self):
        from repro.exceptions import CommunicationError

        coordinator = ActivityCoordinator("act", delivery=AtMostOnceDelivery())

        class Gone:
            name = "gone"

            def process_signal(self, signal):
                raise CommunicationError("node down")

        coordinator.add_action("b", Gone())
        outcome = coordinator.process_signal_set(
            BroadcastSignalSet("go", signal_set_name="b")
        )
        assert outcome.is_error

    def test_retry_reuses_delivery_id(self):
        from repro.exceptions import CommunicationError

        seen_ids = []

        class FlakyAction:
            name = "flaky"

            def __init__(self):
                self.calls = 0

            def process_signal(self, signal):
                self.calls += 1
                seen_ids.append(signal.delivery_id)
                if self.calls == 1:
                    raise CommunicationError("blip")
                return Outcome.done()

        coordinator = ActivityCoordinator("act")
        coordinator.add_action("b", FlakyAction())
        outcome = coordinator.process_signal_set(
            BroadcastSignalSet("go", signal_set_name="b")
        )
        assert outcome.is_done
        assert len(seen_ids) == 2 and seen_ids[0] == seen_ids[1]
