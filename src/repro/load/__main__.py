"""``python -m repro.load``: closed-loop socket load smoke.

Boots a real :class:`SocketTransport` server in-process — an ORB hosting
one servant whose ``work`` op begins and completes a *gated* activity —
then drives it closed-loop from N client threads over loopback sockets.
Admission rejections travel the wire as typed
:class:`~repro.exceptions.AdmissionRejected` errors and are counted as
shed traffic, so the report shows exactly the taxonomy the CI
``load-smoke`` job asserts on.

    python -m repro.load --clients 32 --duration 30 --max-live 16 \
        --service-time 0.002 --report load-report.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.config import OrbConfig, RuntimeConfig
from repro.core.manager import ActivityManager
from repro.exceptions import AdmissionRejected, OverloadError
from repro.load.collector import LoadCollector
from repro.load.generator import run_closed_loop_threads
from repro.orb.core import Orb, Servant
from repro.orb.reference import ObjectRef
from repro.orb.site import SiteFederation
from repro.orb.socket_transport import SocketTransport
from repro.util.clock import WallClock
from repro.util.rng import SeededRng


class _LoadServant(Servant):
    """One op: begin a gated activity, hold it for the service time."""

    def __init__(self, manager: ActivityManager, service_time: float) -> None:
        self.manager = manager
        self.service_time = service_time

    def work(self) -> str:
        activity = self.manager.begin(name="load-op")
        try:
            if self.service_time > 0.0:
                time.sleep(self.service_time)
        finally:
            activity.complete()
        return "ok"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.load",
        description="Closed-loop socket load smoke against a gated control plane.",
    )
    parser.add_argument("--clients", type=int, default=8, help="virtual client threads")
    parser.add_argument("--duration", type=float, default=5.0, help="run length, wall seconds")
    parser.add_argument("--think", type=float, default=0.0, help="mean think time per client, seconds")
    parser.add_argument("--max-live", type=int, default=None, help="admission cap on live activities (omit = ungated)")
    parser.add_argument("--service-time", type=float, default=0.001, help="servant hold per op, seconds")
    parser.add_argument("--deadline", type=float, default=1.0, help="per-op latency budget for goodput classification")
    parser.add_argument("--seed", type=int, default=22, help="rng seed for think-time streams")
    parser.add_argument("--codec", default="legacy", help="wire codec for both ends")
    parser.add_argument("--report", default=None, help="write the JSON report here (default: stdout)")
    args = parser.parse_args(argv)

    runtime = RuntimeConfig(max_live=args.max_live) if args.max_live else RuntimeConfig()
    manager = ActivityManager(clock=WallClock(), config=runtime)
    orb_config = OrbConfig(codec=args.codec)

    server_transport = SocketTransport("load-server", bind=("127.0.0.1", 0))
    server_orb = Orb(transport=server_transport, config=orb_config)
    SiteFederation(server_transport, server_orb)
    server_transport.set_request_handler(server_orb.dispatch_request)
    server_transport.set_control_handler(
        lambda req: {
            "site": "load-server",
            "domain": "load-server"
            if server_orb.has_node(str(req.get("node")))
            else None,
        }
    )
    server_transport.start()
    server_orb.create_node("load-server.app").activate(
        _LoadServant(manager, args.service_time),
        object_id="load",
        interface="Load",
    )

    client_transport = SocketTransport("load-client")
    client_orb = Orb(transport=client_transport, config=orb_config)
    SiteFederation(client_transport, client_orb)
    client_transport.connect_peer("load-server", server_transport.address)
    client_transport.start()

    collectors = [LoadCollector(f"client-{i}") for i in range(args.clients)]
    ref = ObjectRef("load-server.app", "load", "Load").bind(client_orb)

    def op(client: int, _rng: SeededRng) -> None:
        collector = collectors[client]
        start = time.monotonic()
        collector.started(start)
        try:
            ref.invoke("work")
        except (AdmissionRejected, OverloadError) as exc:
            collector.live -= 1  # never admitted server-side
            collector.rejected(time.monotonic(), exc)
        except Exception:
            collector.failed(time.monotonic())
        else:
            now = time.monotonic()
            collector.finished(now, now - start, args.deadline)

    try:
        errors = run_closed_loop_threads(
            args.clients,
            args.duration,
            op,
            rng=SeededRng(args.seed),
            think=args.think,
        )
    finally:
        client_transport.close()
        server_transport.close()

    merged = LoadCollector("closed-loop-sockets")
    for collector in collectors:
        collector.sample_memory()
        merged.merge(collector)
    report = merged.report()
    report["clients"] = args.clients
    report["think_s"] = args.think
    report["max_live"] = args.max_live
    report["service_time_s"] = args.service_time
    report["codec"] = args.codec
    report["client_errors"] = [e for e in errors if e]
    admission = manager.admission
    if admission is not None:
        report["admission"] = admission.describe()

    text = json.dumps(report, indent=2, sort_keys=True)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    print(text)
    return 1 if report["client_errors"] else 0


if __name__ == "__main__":
    sys.exit(main())
