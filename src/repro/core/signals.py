"""Signal and Outcome value types (§3.2.2).

``Signal`` mirrors the paper's IDL struct::

    struct Signal {
        string signal_name;
        string signal_set_name;
        any    application_specific_data;
    };

plus a ``delivery_id`` stamped by the coordinator on each *logical*
transmission: retries of a lost transmission reuse the id, so idempotent
actions can deduplicate under the at-least-once delivery regime (§3.4).

``Outcome`` is an action's reply to a signal, and also the collated result
of processing a whole SignalSet.

Both are slotted :class:`~repro.util.records.FrozenRecord`\\ s (PR 7):
one signal instance per stamped transmission × N participants used to
cost an instance dict each — on the broadcast hot path that dominated
the per-delivery allocation count.  The field order in ``_fields``
matches the original dataclass declaration order, so the wire encoding
(via :meth:`~repro.orb.marshal.ValueTypeRegistry.register_slotted`) is
byte-identical to every prior release.
"""

from __future__ import annotations

from typing import Any, ClassVar, Optional, Tuple

from repro.orb.marshal import GLOBAL_REGISTRY
from repro.util.records import FrozenRecord

# Well-known outcome names.
OUTCOME_DONE = "repro.activity.done"
OUTCOME_ERROR = "repro.activity.error"
OUTCOME_UNREACHABLE = "repro.activity.unreachable"


@GLOBAL_REGISTRY.register_slotted
class Signal(FrozenRecord):
    """One coordination event sent from a SignalSet to Actions."""

    __slots__ = (
        "signal_name",
        "signal_set_name",
        "application_specific_data",
        "delivery_id",
    )
    _fields: ClassVar[Tuple[str, ...]] = __slots__

    def __init__(
        self,
        signal_name: str,
        signal_set_name: str,
        application_specific_data: Any = None,
        delivery_id: Optional[str] = None,
    ) -> None:
        self._init(
            signal_name=signal_name,
            signal_set_name=signal_set_name,
            application_specific_data=application_specific_data,
            delivery_id=delivery_id,
        )

    @property
    def name(self) -> str:
        return self.signal_name

    def with_delivery_id(self, delivery_id: str) -> "Signal":
        return Signal(
            self.signal_name,
            self.signal_set_name,
            self.application_specific_data,
            delivery_id,
        )

    def with_data(self, data: Any) -> "Signal":
        return Signal(
            self.signal_name, self.signal_set_name, data, self.delivery_id
        )

    def __str__(self) -> str:
        return f"Signal({self.signal_name}@{self.signal_set_name})"


@GLOBAL_REGISTRY.register_slotted
class Outcome(FrozenRecord):
    """An action's (or a whole SignalSet's) result."""

    __slots__ = ("name", "data", "is_error")
    _fields: ClassVar[Tuple[str, ...]] = __slots__

    def __init__(self, name: str, data: Any = None, is_error: bool = False) -> None:
        self._init(name=name, data=data, is_error=is_error)

    @classmethod
    def done(cls, data: Any = None) -> "Outcome":
        return cls(name=OUTCOME_DONE, data=data)

    @classmethod
    def of(cls, name: str, data: Any = None) -> "Outcome":
        return cls(name=name, data=data)

    @classmethod
    def error(cls, data: Any = None, name: str = OUTCOME_ERROR) -> "Outcome":
        return cls(name=name, data=data, is_error=True)

    @classmethod
    def unreachable(cls, data: Any = None) -> "Outcome":
        return cls(name=OUTCOME_UNREACHABLE, data=data, is_error=True)

    @property
    def is_done(self) -> bool:
        return self.name == OUTCOME_DONE and not self.is_error

    def __str__(self) -> str:
        flag = "!" if self.is_error else ""
        return f"Outcome({flag}{self.name})"
