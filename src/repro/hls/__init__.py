"""High-Level Service layer (fig. 13; the J2EE Activity Service, JSR 95).

A *high-level service* (HLS) packages one extended transaction model: it
provides the SignalSets and specifies the protocol its Actions follow.
Applications demarcate through :class:`~repro.core.user_activity.UserActivity`
while the HLS configures each activity behind the scenes via the
ActivityManager — the exact layering of the paper's fig. 13.
"""

from repro.hls.service import (
    HighLevelService,
    HlsActivityService,
    OpenNestedHls,
    TwoPhaseHls,
    WorkflowHls,
)

__all__ = [
    "HighLevelService",
    "HlsActivityService",
    "TwoPhaseHls",
    "OpenNestedHls",
    "WorkflowHls",
]
