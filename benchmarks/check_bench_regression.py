#!/usr/bin/env python
"""CI bench-regression gate.

Compares freshly generated ``results/BENCH_<fig>.json`` files against
the committed ``baselines/BENCH_<fig>.json`` and fails (exit 1) when a
gated metric regressed beyond its allowed tolerance.

Only *machine-independent* metrics are gated:

- **fig16** (hot-path engine): raw calls/s depends on the runner, but
  ``raw_speedup`` (struct engine vs legacy baseline, measured
  back-to-back in one process) and ``sweep_byte_ratio`` (deterministic
  byte counts) are stable across hosts.  A >25% drop in throughput
  speedup fails; byte ratios get a tight 2% tolerance; deterministic
  cache counters must not decrease at all.
- **fig20** (failure detection & recovery): every metric runs under a
  simulated clock with seeded rngs, so detection/readmission/recovery
  latency and campaign goodput are *exactly* reproducible — the
  tolerances are just float headroom.  A detector or recovery change
  that moves them must move the baseline deliberately.
- **fig21** (replicated durability): write amplification, WAL
  catch-up, failover losses and replicated-campaign goodput are all
  deterministic counters or simulated-clock latencies.  Failover must
  lose zero acked appends and the replicated sweep must report zero
  invariant violations — those baselines are 0 and any increase fails.
- **fig22** (load & admission control): the knee sweep and population
  hold run under a simulated clock with seeded arrivals, so goodput
  ratios, retention, bounded p99 and the live-population peak are
  exactly reproducible.  The socket dispatch-loop throughputs in the
  same JSON are machine-dependent and deliberately *not* gated.

Each figure is gated independently; by default every figure with a
committed baseline is checked.

Usage:
    python benchmarks/check_bench_regression.py            # all figures
    python benchmarks/check_bench_regression.py --figure fig16 \
        [--fresh results/BENCH_fig16.json] \
        [--baseline baselines/BENCH_fig16.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))

#: Per-figure gates.  ``floors``: (key, fraction) — fresh must reach
#: ``baseline * fraction`` (higher is better).  ``ceilings``:
#: (key, multiple) — fresh must stay under ``baseline * multiple``
#: (lower is better).  ``counters``: deterministic counts that must not
#: decrease.
GATES = {
    "fig16": {
        "floors": [
            ("raw_speedup", 0.75),       # >25% throughput-speedup drop fails
            ("sweep_byte_ratio", 0.98),  # deterministic: effectively exact
        ],
        "ceilings": [],
        "counters": [
            "raw_decode_hits",
            "raw_encode_cache_hits",
            "sweep_encode_cache_hits",
            "sweep_context_hits",
            "sweep_template_fills",
        ],
    },
    "fig20": {
        "floors": [
            ("goodput_fd_on", 0.99),   # deterministic committed fraction
            ("goodput_fd_off", 0.99),
        ],
        "ceilings": [
            ("detect_s", 1.05),   # crash -> DOWN latch, simulated seconds
            ("readmit_s", 1.05),  # restart -> half-open probe success
            ("recover_s", 1.05),  # reboot -> in-doubt drained
        ],
        "counters": [],
    },
    "fig21": {
        "floors": [
            ("goodput_replicated", 0.99),  # deterministic committed fraction
        ],
        "ceilings": [
            ("write_amp_n3", 1.05),           # backing ops per acked put
            ("replica_readmit_s", 1.05),      # heal -> maintenance readmit
            ("failover_failed_appends", 1.0), # baseline 0: any loss fails
            ("sweep_violations", 1.0),        # baseline 0: any violation fails
        ],
        "counters": [
            "wal_shipped_records",
            "wal_catchup_lag_drained",
            "failover_promotions",
            "sweep_promotions",
        ],
    },
    "fig22": {
        "floors": [
            # All three run under a simulated clock with seeded rngs —
            # exactly reproducible; the slack is just float headroom.
            ("overload_goodput_ratio", 0.90),   # gated/ungated goodput at 4x
            ("gated_goodput_retention", 0.95),  # overload goodput vs knee
            ("gated_goodput_overload", 0.99),   # absolute gated goodput
        ],
        "ceilings": [
            ("gated_p99_s", 1.05),  # bounded by max_live/capacity, not load
        ],
        "counters": [
            "live_peak",    # sustained concurrent live activities (120k)
            "shed_total",   # deterministic shed count across the sweep
        ],
    },
}


def load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def check_figure(figure: str, fresh: dict, baseline: dict) -> list:
    gates = GATES[figure]
    failures = []

    for key, fraction in gates["floors"]:
        if key not in baseline:
            continue
        if key not in fresh:
            failures.append(f"{figure}.{key}: missing from fresh results")
            continue
        floor = baseline[key] * fraction
        status = "ok" if fresh[key] >= floor else "REGRESSED"
        print(
            f"{figure}.{key}: fresh={fresh[key]:.3f} "
            f"baseline={baseline[key]:.3f} floor={floor:.3f} [{status}]"
        )
        if fresh[key] < floor:
            failures.append(
                f"{figure}.{key}: {fresh[key]:.3f} < {floor:.3f} "
                f"(baseline {baseline[key]:.3f}, allowed {fraction:.0%})"
            )

    for key, multiple in gates["ceilings"]:
        if key not in baseline:
            continue
        if key not in fresh:
            failures.append(f"{figure}.{key}: missing from fresh results")
            continue
        ceiling = baseline[key] * multiple
        status = "ok" if fresh[key] <= ceiling else "REGRESSED"
        print(
            f"{figure}.{key}: fresh={fresh[key]:.3f} "
            f"baseline={baseline[key]:.3f} ceiling={ceiling:.3f} [{status}]"
        )
        if fresh[key] > ceiling:
            failures.append(
                f"{figure}.{key}: {fresh[key]:.3f} > {ceiling:.3f} "
                f"(baseline {baseline[key]:.3f}, allowed x{multiple:g})"
            )

    for key in gates["counters"]:
        if key not in baseline:
            continue
        if key not in fresh:
            failures.append(f"{figure}.{key}: missing from fresh results")
            continue
        status = "ok" if fresh[key] >= baseline[key] else "REGRESSED"
        print(
            f"{figure}.{key}: fresh={fresh[key]} "
            f"baseline={baseline[key]} [{status}]"
        )
        if fresh[key] < baseline[key]:
            failures.append(
                f"{figure}.{key}: {fresh[key]} below baseline {baseline[key]}"
            )

    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--figure",
        choices=sorted(GATES),
        help="gate a single figure (default: every figure with a baseline)",
    )
    parser.add_argument(
        "--fresh",
        help="JSON produced by the bench run under test "
        "(single-figure mode only)",
    )
    parser.add_argument(
        "--baseline",
        help="committed baseline JSON (single-figure mode only)",
    )
    args = parser.parse_args(argv)

    if (args.fresh or args.baseline) and not args.figure:
        parser.error("--fresh/--baseline require --figure")

    figures = [args.figure] if args.figure else sorted(GATES)
    failures = []
    checked = 0
    for figure in figures:
        baseline_path = args.baseline or os.path.join(
            HERE, "baselines", f"BENCH_{figure}.json"
        )
        fresh_path = args.fresh or os.path.join(
            HERE, "results", f"BENCH_{figure}.json"
        )
        if not os.path.exists(baseline_path):
            if args.figure:
                print(f"{figure}: no baseline at {baseline_path}",
                      file=sys.stderr)
                return 1
            continue  # figure not yet baselined; nothing to gate
        if not os.path.exists(fresh_path):
            failures.append(f"{figure}: no fresh results at {fresh_path}")
            continue
        failures.extend(check_figure(figure, load(fresh_path),
                                     load(baseline_path)))
        checked += 1

    if failures:
        print("\nBENCH REGRESSION:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    if checked == 0:
        print("bench regression gate: nothing to check", file=sys.stderr)
        return 1
    print(f"\nbench regression gate: all checks passed ({checked} figures)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
