"""Unit tests for id generation and seeded randomness."""

import pytest

from repro.util.idgen import IdGenerator, fresh_uid
from repro.util.rng import SeededRng


class TestIdGenerator:
    def test_sequential_per_namespace(self):
        ids = IdGenerator()
        assert ids.next("tx") == "tx-1"
        assert ids.next("tx") == "tx-2"
        assert ids.next("act") == "act-1"

    def test_reset(self):
        ids = IdGenerator()
        ids.next("a")
        ids.reset()
        assert ids.next("a") == "a-1"

    def test_fresh_uid_unique(self):
        a, b = fresh_uid("t"), fresh_uid("t")
        assert a != b


class TestSeededRng:
    def test_deterministic_for_same_seed(self):
        a = [SeededRng(42).random() for _ in range(5)]
        b = [SeededRng(42).random() for _ in range(5)]
        assert a == b

    def test_different_seeds_differ(self):
        assert SeededRng(1).random() != SeededRng(2).random()

    def test_fork_is_stable(self):
        root = SeededRng(7)
        a = root.fork("transport").random()
        b = SeededRng(7).fork("transport").random()
        assert a == b

    def test_fork_streams_independent(self):
        root = SeededRng(7)
        assert root.fork("x").random() != root.fork("y").random()

    def test_chance_bounds(self):
        rng = SeededRng(0)
        assert not rng.chance(0.0)
        assert rng.chance(1.0)
        with pytest.raises(ValueError):
            rng.chance(1.5)
        with pytest.raises(ValueError):
            rng.chance(-0.1)

    def test_uniform_range(self):
        rng = SeededRng(0)
        for _ in range(100):
            value = rng.uniform(1.0, 2.0)
            assert 1.0 <= value <= 2.0

    def test_expovariate_positive_rate_required(self):
        rng = SeededRng(0)
        with pytest.raises(ValueError):
            rng.expovariate(0)
        assert rng.expovariate(10.0) >= 0.0

    def test_randint_and_choice(self):
        rng = SeededRng(0)
        assert 1 <= rng.randint(1, 3) <= 3
        assert rng.choice(["a"]) == "a"

    def test_shuffle_in_place_deterministic(self):
        items1 = list(range(10))
        items2 = list(range(10))
        SeededRng(3).shuffle(items1)
        SeededRng(3).shuffle(items2)
        assert items1 == items2
        assert sorted(items1) == list(range(10))
