"""Web Services Coordination Framework (§5.2).

The WSCF variant of the Activity Service: activation and registration
services hand out coordination contexts; protocols (atomic completion,
BTP-style business completion) are built *entirely* on the framework —
"the only noticeable difference … is that the former does not assume an
underlying OTS implementation: all coordination services (including
transactions) must be constructed on top of the framework".
"""

from repro.wscf.coordination import (
    ActivationService,
    CoordinationContext,
    RegistrationService,
    WscfCoordinator,
    PROTOCOL_ATOMIC,
    PROTOCOL_BUSINESS,
)

__all__ = [
    "ActivationService",
    "RegistrationService",
    "CoordinationContext",
    "WscfCoordinator",
    "PROTOCOL_ATOMIC",
    "PROTOCOL_BUSINESS",
]
