"""Dispatch-loop seam + asyncio accept loop (PR 7 dispatch layer)."""

import threading

import pytest

from repro.config import OrbConfig
from repro.exceptions import CommunicationError, ConfigurationError
from repro.orb import Orb
from repro.orb.core import Servant
from repro.orb.dispatch import (
    AsyncioDispatchLoop,
    DispatchLoop,
    InlineDispatchLoop,
    build_dispatch_loop,
)
from repro.orb.socket_transport import SocketTransport


class Echo(Servant):
    def echo(self, value):
        return value

    def boom(self):
        raise ValueError("nope")


def build_orb(**config):
    orb = Orb(config=OrbConfig(**config))
    node = orb.create_node("server")
    ref = node.activate(Echo(), "echo")
    return orb, ref


class TestDispatchLoopSeam:
    def test_inline_is_the_default_and_skips_the_seam(self):
        orb, _ = build_orb()
        assert orb.dispatch_loop is None

    def test_inline_loop_runs_on_calling_thread(self):
        seen = []
        loop = InlineDispatchLoop()
        assert loop.dispatch(lambda: seen.append(threading.current_thread()) or 7) == 7
        assert seen == [threading.current_thread()]

    def test_build_dispatch_loop_names(self):
        assert build_dispatch_loop("inline") is None
        loop = build_dispatch_loop("asyncio")
        assert isinstance(loop, AsyncioDispatchLoop)
        loop.close()
        with pytest.raises(ConfigurationError):
            build_dispatch_loop("wat")

    def test_config_validates_loop_name(self):
        with pytest.raises(ConfigurationError):
            OrbConfig(dispatch_loop="wat")


class TestAsyncioDispatchLoop:
    def test_invocations_match_inline(self):
        inline_orb, inline_ref = build_orb()
        aio_orb, aio_ref = build_orb(dispatch_loop="asyncio")
        try:
            for payload in [1, "x", {"k": [1, 2]}, None]:
                assert aio_ref.invoke("echo", payload) == inline_ref.invoke(
                    "echo", payload
                )
            assert aio_orb.dispatch_loop.dispatches == 4
        finally:
            aio_orb.dispatch_loop.close()

    def test_delivery_runs_off_calling_thread(self):
        orb, ref = build_orb(dispatch_loop="asyncio")
        threads = []
        original = orb.transport.deliver

        def recording(source, target, data, dispatch):
            threads.append(threading.current_thread())
            return original(source, target, data, dispatch)

        orb.transport.deliver = recording
        try:
            assert ref.invoke("echo", 1) == 1
            assert threads and threads[0] is not threading.current_thread()
        finally:
            orb.dispatch_loop.close()

    def test_exceptions_propagate(self):
        orb, ref = build_orb(dispatch_loop="asyncio")
        try:
            with pytest.raises(Exception) as excinfo:
                ref.invoke("boom")
            assert "nope" in str(excinfo.value)
        finally:
            orb.dispatch_loop.close()

    def test_concurrent_invocations(self):
        orb, ref = build_orb(dispatch_loop="asyncio")
        results, errors = [], []

        def worker(i):
            try:
                results.append(ref.invoke("echo", i))
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        try:
            workers = [
                threading.Thread(target=worker, args=(i,)) for i in range(16)
            ]
            for w in workers:
                w.start()
            for w in workers:
                w.join(timeout=10)
            assert not errors
            assert sorted(results) == list(range(16))
        finally:
            orb.dispatch_loop.close()

    def test_closed_loop_refuses(self):
        loop = AsyncioDispatchLoop()
        assert loop.dispatch(lambda: 3) == 3
        loop.close()
        with pytest.raises(ConfigurationError):
            loop.dispatch(lambda: 3)

    def test_custom_loop_instance_injected(self):
        class Counting(DispatchLoop):
            name = "counting"

            def __init__(self):
                self.calls = 0

            def dispatch(self, deliver):
                self.calls += 1
                return deliver()

        loop = Counting()
        orb = Orb(dispatch_loop=loop)
        node = orb.create_node("server")
        ref = node.activate(Echo(), "echo")
        assert ref.invoke("echo", 5) == 5
        assert loop.calls == 1


class TestAsyncioAcceptLoop:
    @pytest.mark.parametrize("server_loop", ["threads", "asyncio"])
    def test_request_reply_across_loop_kinds(self, server_loop):
        server = SocketTransport("srv", bind=("127.0.0.1", 0), accept_loop=server_loop)
        server.set_request_handler(lambda node, data: b"reply:" + data)
        server.start()
        client = SocketTransport("cli")
        client.start()
        try:
            client.connect_peer("srv", server.address)
            assert client.request("srv", "a", "b", b"ping") == b"reply:ping"
            # Reuse the pooled connection for a second round.
            assert client.request("srv", "a", "b", b"pong") == b"reply:pong"
        finally:
            client.close()
            server.close()

    def test_typed_error_revival_over_asyncio(self):
        server = SocketTransport("srv", bind=("127.0.0.1", 0), accept_loop="asyncio")

        def handler(node, data):
            raise CommunicationError("synthetic failure")

        server.set_request_handler(handler)
        server.start()
        client = SocketTransport("cli")
        client.start()
        try:
            client.connect_peer("srv", server.address)
            with pytest.raises(CommunicationError, match="synthetic failure"):
                client.request("srv", "a", "b", b"ping")
        finally:
            client.close()
            server.close()

    def test_concurrent_clients_one_event_loop(self):
        server = SocketTransport("srv", bind=("127.0.0.1", 0), accept_loop="asyncio")
        server.set_request_handler(lambda node, data: data.upper())
        server.start()
        clients = [SocketTransport(f"c{i}") for i in range(4)]
        results, errors = [], []

        def worker(client, i):
            try:
                client.start()
                client.connect_peer("srv", server.address)
                results.append(client.request("srv", "a", "b", f"m{i}".encode()))
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        try:
            workers = [
                threading.Thread(target=worker, args=(client, i))
                for i, client in enumerate(clients)
            ]
            for w in workers:
                w.start()
            for w in workers:
                w.join(timeout=10)
            assert not errors
            assert sorted(results) == [b"M0", b"M1", b"M2", b"M3"]
        finally:
            for client in clients:
                client.close()
            server.close()

    def test_invalid_accept_loop_refused(self):
        with pytest.raises(ConfigurationError):
            SocketTransport("srv", accept_loop="wat")

    def test_close_is_clean(self):
        server = SocketTransport("srv", bind=("127.0.0.1", 0), accept_loop="asyncio")
        server.set_request_handler(lambda node, data: data)
        server.start()
        address = server.address
        assert address is not None
        server.close()
        # Closing twice is fine; the port is released.
        server.close()
        probe = SocketTransport("srv2", bind=("127.0.0.1", address[1]),
                                accept_loop="asyncio")
        probe.start()
        probe.close()
