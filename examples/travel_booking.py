"""The paper's running example: a long-running travel booking (figs 1–2).

Run:  python examples/travel_booking.py

An application activity books a taxi (t1), a restaurant table (t2), a
theatre seat (t3) and a hotel room (t4), each as its own short top-level
transaction coordinated by the workflow model (§4.4).  First the
no-failure run of fig. 1; then the fig. 2 run where t4 aborts, t2 is
compensated (tc1), and the booking continues with the cinema instead
(t5', t6').
"""

from repro.apps import TravelScenario
from repro.core import ActivityManager
from repro.models import TaskState, Workflow, WorkflowEngine


def build_workflow(scenario: TravelScenario, hotel_fails: bool) -> Workflow:
    client = "alice"
    booked = {}

    def book(service_name):
        def work(ctx):
            service = scenario.service_by_name(service_name)
            booking = service.reserve(client)
            booked[service_name] = booking
            return booking

        return work

    def unbook(service_name):
        def compensation(ctx):
            service = scenario.service_by_name(service_name)
            return service.release(booked[service_name])

        return compensation

    def hotel_work(ctx):
        if hotel_fails:
            raise RuntimeError("hotel is overbooked")
        return book("hotel")(ctx)

    workflow = Workflow("trip")
    workflow.add_task("t1-taxi", book("taxi"))
    workflow.add_task(
        "t2-restaurant", book("restaurant"), deps=["t1-taxi"],
        compensation=unbook("restaurant"),
    )
    workflow.add_task("t3-theatre", book("theatre"), deps=["t1-taxi"])
    workflow.add_task("t4-hotel", hotel_work, deps=["t2-restaurant", "t3-theatre"])
    workflow.add_task("t5-cinema", lambda ctx: "cinema-tickets", fallback=True)
    workflow.add_task(
        "t6-dinner", lambda ctx: "late-dinner", deps=["t5-cinema"], fallback=True
    )
    # Fig. 2: when t4 aborts, compensate t2 (tc1) and continue with t5', t6'.
    workflow.on_failure(
        "t4-hotel", compensate=["t2-restaurant"], continue_with=["t5-cinema"]
    )
    return workflow


def run(hotel_fails: bool) -> None:
    scenario = TravelScenario(capacity=5)
    manager = ActivityManager()
    engine = WorkflowEngine(manager, tx_factory=scenario.factory)
    workflow = build_workflow(scenario, hotel_fails=hotel_fails)

    label = "fig. 2 (t4 aborts)" if hotel_fails else "fig. 1 (no failure)"
    print(f"--- {label} ---")
    result = engine.run(workflow)
    for name in sorted(result.states):
        print(f"  {name:15s} {result.states[name].value}")
    print(f"  waves: {result.waves}")
    print(f"  availability now: " + ", ".join(
        f"{s.name}={s.available()}" for s in scenario.services))
    if hotel_fails:
        assert result.state("t4-hotel") is TaskState.FAILED
        assert result.state("t2-restaurant") is TaskState.COMPENSATED
        assert result.state("t5-cinema") is TaskState.COMPLETED
        assert result.state("t6-dinner") is TaskState.COMPLETED
        # The restaurant table went back to the pool; the taxi stayed booked.
        assert scenario.restaurant.available() == 5
        assert scenario.taxi.available() == 4
    else:
        assert result.succeeded
        assert scenario.total_available() == 4 * 5 - 4
    print()


def main() -> None:
    run(hotel_fails=False)
    run(hotel_fails=True)


if __name__ == "__main__":
    main()
