"""Shared worker-pool plumbing for the parallel fan-out layers.

Both the activity-service broadcast executor
(:class:`~repro.core.broadcast.ThreadPoolBroadcastExecutor`) and the OTS
parallel participant phases (``TransactionFactory(parallel_participants=N)``)
need the same three things from a thread pool: lazy creation (a config
knob must not spawn threads until first use), detection of re-entrant use
(work submitted *from* a worker must not block on its own pool's slots —
that deadlocks), and idempotent shutdown.  This helper is that shared
core; the fan-out semantics (digestion order, abandonment, timeouts)
stay with the callers.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Optional


class ReentrantWorkerPool:
    """A lazily-created shared :class:`ThreadPoolExecutor` whose worker
    threads are tagged, so callers can detect nested submissions and
    degrade to serial execution instead of deadlocking."""

    def __init__(self, max_workers: int, thread_name_prefix: str = "workers") -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers
        self.thread_name_prefix = thread_name_prefix
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        self._worker_state = threading.local()

    def _ensure(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix=self.thread_name_prefix,
                )
            return self._pool

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        """Submit ``fn(*args)``; the executing thread is tagged as ours."""

        def marked(*call_args: Any) -> Any:
            self._worker_state.active = True
            return fn(*call_args)

        return self._ensure().submit(marked, *args)

    def in_worker(self) -> bool:
        """True when called from one of this pool's worker threads."""
        return getattr(self._worker_state, "active", False)

    def shutdown(self) -> None:
        """Release the worker threads (idempotent); next submit recreates."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)
