"""Figure 12 — the BTP CompleteSignalSet, and cohesion termination.

Regenerated artefact: the confirm trace of fig. 12 (and its cancel
variant), plus the cohesion confirm-set sweep: k of n members confirm,
the rest cancel, in one atomic termination.
"""

import pytest

from repro.core import ActivityManager, CompletionStatus
from repro.models import BtpAtom, BtpCohesion, BtpParticipant, BtpStatus
from repro.models.btp import COMPLETE_SET


def complete_trace(manager):
    return [
        (event.kind, event.detail.get("signal"), event.detail.get("action"),
         event.detail.get("outcome"))
        for event in manager.event_log
        if event.detail.get("signal_set") == COMPLETE_SET
        and event.kind in ("get_signal", "transmit", "set_response", "get_outcome")
    ]


class TestFig12:
    def test_confirm_trace_regenerated(self, benchmark, emit):
        def scenario_run():
            manager = ActivityManager()
            atom = BtpAtom(manager, "atom")
            atom.enroll(BtpParticipant("Action-1"))
            atom.enroll(BtpParticipant("Action-2"))
            atom.prepare()
            atom.confirm()
            return manager

        manager = benchmark.pedantic(scenario_run, rounds=1, iterations=1)
        trace = complete_trace(manager)
        assert trace == [
            ("get_signal", None, None, None),
            ("transmit", "confirm", "Action-1", None),
            ("set_response", "confirm", "Action-1", "confirmed"),
            ("transmit", "confirm", "Action-2", None),
            ("set_response", "confirm", "Action-2", "confirmed"),
            ("get_outcome", None, None, "confirmed"),
        ]
        emit(
            "fig12",
            ["fig 12 — BTP CompleteSignalSet confirm sequence:"]
            + [f"  {step}" for step in trace],
            data={"confirm_protocol_steps": len(trace)},
        )

    def test_cancel_variant_regenerated(self, benchmark, emit):
        """'If the atom is instructed to cancel, the confirm Signal is
        replaced by cancel.'"""

        def scenario_run():
            manager = ActivityManager()
            atom = BtpAtom(manager, "atom")
            atom.enroll(BtpParticipant("Action-1"))
            atom.prepare()
            atom.activity.complete(CompletionStatus.FAIL)
            return manager

        manager = benchmark.pedantic(scenario_run, rounds=1, iterations=1)
        signals = [step[1] for step in complete_trace(manager) if step[0] == "transmit"]
        assert signals == ["cancel"]
        emit("fig12", [f"fig 12 variant — cancel replaces confirm: {signals}"])

    def test_cohesion_confirm_set_sweep(self, benchmark, emit):
        def scenario_run():
            rows = []
            for members, confirmed in ((4, 4), (4, 3), (4, 1), (6, 2)):
                manager = ActivityManager()
                cohesion = BtpCohesion(manager, "c")
                for index in range(members):
                    atom = BtpAtom(manager, f"m{index}")
                    atom.enroll(BtpParticipant(f"m{index}"))
                    cohesion.enroll(atom)
                outcomes = cohesion.confirm([f"m{i}" for i in range(confirmed)])
                confirmed_count = sum(
                    1 for status in outcomes.values() if status is BtpStatus.CONFIRMED
                )
                cancelled_count = sum(
                    1 for status in outcomes.values() if status is BtpStatus.CANCELLED
                )
                rows.append((members, confirmed, confirmed_count, cancelled_count))
            return rows

        rows = benchmark.pedantic(scenario_run, rounds=1, iterations=1)
        for members, chosen, confirmed_count, cancelled_count in rows:
            assert confirmed_count == chosen
            assert cancelled_count == members - chosen
        emit(
            "fig12",
            ["fig 12 — cohesion confirm-set selection:",
             "  members  confirm_set  confirmed  cancelled"]
            + [f"  {m:7d}  {s:11d}  {c:9d}  {x:9d}" for m, s, c, x in rows],
            data={"cohesion_rows": len(rows)},
        )

    @pytest.mark.parametrize("members", [2, 8, 32])
    def test_bench_cohesion_termination(self, benchmark, members):
        def run():
            manager = ActivityManager()
            cohesion = BtpCohesion(manager, "c")
            for index in range(members):
                atom = BtpAtom(manager, f"m{index}")
                atom.enroll(BtpParticipant(f"m{index}"))
                cohesion.enroll(atom)
            cohesion.confirm([f"m{i}" for i in range(members // 2)])

        benchmark(run)
