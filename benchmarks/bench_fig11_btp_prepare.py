"""Figure 11 — the BTP PrepareSignalSet.

Regenerated artefact: the figure's message sequence (user-driven prepare
broadcast, outcome via get_outcome), plus prepare latency vs enrolled
participants and the hold-placement behaviour on real inventory.
"""

import pytest

from repro.apps import TravelScenario
from repro.core import ActivityManager
from repro.models import BtpAtom, BtpParticipant
from repro.models.btp import PREPARE_SET


class TestFig11:
    def test_prepare_trace_regenerated(self, benchmark, emit):
        def scenario_run():
            manager = ActivityManager()
            atom = BtpAtom(manager, "atom")
            atom.enroll(BtpParticipant("Action-1"))
            atom.enroll(BtpParticipant("Action-2"))
            prepared = atom.prepare()
            return manager, prepared

        manager, prepared = benchmark.pedantic(scenario_run, rounds=1, iterations=1)
        assert prepared
        trace = [
            (event.kind, event.detail.get("signal"), event.detail.get("action"),
             event.detail.get("outcome"))
            for event in manager.event_log
            if event.detail.get("signal_set") == PREPARE_SET
            and event.kind in ("get_signal", "transmit", "set_response", "get_outcome")
        ]
        assert trace == [
            ("get_signal", None, None, None),
            ("transmit", "prepare", "Action-1", None),
            ("set_response", "prepare", "Action-1", "prepared"),
            ("transmit", "prepare", "Action-2", None),
            ("set_response", "prepare", "Action-2", "prepared"),
            ("get_outcome", None, None, "prepared"),
        ]
        emit(
            "fig11",
            ["fig 11 — BTP PrepareSignalSet sequence (matches the chart):"]
            + [f"  {step}" for step in trace],
            data={"prepare_protocol_steps": len(trace)},
        )

    def test_prepare_places_holds_not_bookings(self, benchmark, emit):
        """§4.5: 'the taxi is reserved (prepared) and not booked'."""

        def scenario_run():
            scenario = TravelScenario(capacity=3)
            manager = ActivityManager()
            atom = BtpAtom(manager, "taxi")
            holds = {}
            atom.enroll(
                BtpParticipant(
                    "taxi",
                    on_prepare=lambda: holds.setdefault(
                        "id", scenario.taxi.prepare_booking("client")
                    ) is not None,
                )
            )
            atom.prepare()
            return scenario

        scenario = benchmark.pedantic(scenario_run, rounds=1, iterations=1)
        assert scenario.taxi.holds_outstanding == 1
        assert scenario.taxi.booking_count() == 0
        assert scenario.taxi.available() == 2
        emit(
            "fig11",
            [
                "fig 11 — prepare semantics on inventory: "
                f"holds={scenario.taxi.holds_outstanding} "
                f"bookings={scenario.taxi.booking_count()} "
                f"available={scenario.taxi.available()}",
            ],
            data={
                "holds_after_prepare": scenario.taxi.holds_outstanding,
                "bookings_after_prepare": scenario.taxi.booking_count(),
            },
        )

    @pytest.mark.parametrize("participants", [1, 4, 16, 64])
    def test_bench_prepare_latency(self, benchmark, participants):
        def run():
            manager = ActivityManager()
            atom = BtpAtom(manager, "atom")
            for index in range(participants):
                atom.enroll(BtpParticipant(f"p{index}"))
            atom.prepare()

        benchmark(run)

    def test_bench_prepare_with_refusal(self, benchmark):
        """The cancel path: one refusing participant mid-list."""

        def run():
            manager = ActivityManager()
            atom = BtpAtom(manager, "atom")
            atom.enroll(BtpParticipant("ok-1"))
            atom.enroll(BtpParticipant("refuses", on_prepare=lambda: False))
            atom.enroll(BtpParticipant("ok-2"))
            atom.prepare()

        benchmark(run)
