"""Deterministic identifier generation.

CORBA object keys, transaction ids (``otid_t``) and activity ids (global
activity identifiers) all need to be unique.  For reproducible tests and
benches the generator is a simple namespaced counter rather than a UUID; the
textual form stays stable across runs with the same call sequence.
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict


class IdGenerator:
    """Produces ids of the form ``<prefix><namespace>-<n>``.

    Ids are unique per instance; a ``prefix`` extends that to unique
    across instances — site daemons prefix with site id + boot nonce so
    transaction ids never collide across processes or restarts.
    """

    def __init__(self, prefix: str = "") -> None:
        self._counters: Dict[str, itertools.count] = {}
        self._lock = threading.Lock()
        self._prefix = prefix

    def next(self, namespace: str = "id") -> str:
        with self._lock:
            counter = self._counters.setdefault(namespace, itertools.count(1))
            return f"{self._prefix}{namespace}-{next(counter)}"

    def reset(self) -> None:
        """Forget all counters (tests only)."""
        with self._lock:
            self._counters.clear()


_GLOBAL = IdGenerator()


def fresh_uid(namespace: str = "uid") -> str:
    """Return a fresh process-wide unique id in ``namespace``."""
    return _GLOBAL.next(namespace)


def reset_global_ids() -> None:
    """Reset the process-wide generator (tests only)."""
    _GLOBAL.reset()
