"""Unit tests for object stores and the write-ahead log."""

import os

import pytest

from repro.persistence import FileStore, MemoryStore, WriteAheadLog
from repro.persistence.object_store import StoreError


class TestMemoryStore:
    def test_put_get(self):
        store = MemoryStore()
        store.put("k", {"a": 1})
        assert store.get("k") == {"a": 1}

    def test_get_missing(self):
        with pytest.raises(StoreError):
            MemoryStore().get("ghost")

    def test_overwrite(self):
        store = MemoryStore()
        store.put("k", 1)
        store.put("k", 2)
        assert store.get("k") == 2

    def test_remove(self):
        store = MemoryStore()
        store.put("k", 1)
        store.remove("k")
        assert not store.contains("k")
        with pytest.raises(StoreError):
            store.remove("k")

    def test_keys_and_len(self):
        store = MemoryStore()
        store.put("b", 1)
        store.put("a", 2)
        assert set(store.keys()) == {"a", "b"}
        assert len(store) == 2

    def test_get_or_default(self):
        store = MemoryStore()
        assert store.get_or("missing", 42) == 42
        store.put("k", 1)
        assert store.get_or("k", 42) == 1

    def test_values_are_isolated_copies(self):
        store = MemoryStore()
        original = {"list": [1]}
        store.put("k", original)
        original["list"].append(2)
        assert store.get("k") == {"list": [1]}
        fetched = store.get("k")
        fetched["list"].append(3)
        assert store.get("k") == {"list": [1]}

    def test_only_marshallable_values(self):
        store = MemoryStore()
        with pytest.raises(Exception):
            store.put("k", object())

    def test_items_iteration(self):
        store = MemoryStore()
        store.put("a", 1)
        assert dict(store.items()) == {"a": 1}

    def test_read_write_counters(self):
        store = MemoryStore()
        store.put("k", 1)
        store.get("k")
        assert store.writes == 1 and store.reads == 1


class TestFileStore:
    def test_roundtrip(self, tmp_path):
        store = FileStore(str(tmp_path / "store"))
        store.put("k", [1, "two", {"three": 3}])
        assert store.get("k") == [1, "two", {"three": 3}]

    def test_survives_reopen(self, tmp_path):
        root = str(tmp_path / "store")
        FileStore(root).put("k", "persisted")
        assert FileStore(root).get("k") == "persisted"

    def test_remove_and_keys(self, tmp_path):
        store = FileStore(str(tmp_path / "store"))
        store.put("a", 1)
        store.put("b", 2)
        assert store.keys() == ("a", "b")
        store.remove("a")
        assert store.keys() == ("b",)
        with pytest.raises(StoreError):
            store.get("a")

    def test_path_traversal_sanitised(self, tmp_path):
        store = FileStore(str(tmp_path / "store"))
        store.put("../evil", 1)
        assert store.get("../evil") == 1
        assert not (tmp_path / "evil.cdr").exists()

    def test_partial_write_never_tears_an_object(self, tmp_path):
        """Regression: a crash mid-put must not corrupt the entry.

        ``put`` stages into a tmp file and publishes with an atomic
        rename; simulate a crash after a *partial* tmp write (the torn
        bytes a power cut leaves) and verify the published entry still
        reads back the old value — the torn tmp is never visible.
        """
        root = str(tmp_path / "store")
        store = FileStore(root)
        store.put("k", {"stable": True})
        # crash mid-put: a half-written tmp file next to the entry
        data = store._marshaller.encode({"stable": False})
        with open(store._path("k") + ".tmp", "wb") as handle:
            handle.write(data[: len(data) // 2])
        assert store.get("k") == {"stable": True}
        reopened = FileStore(root)
        assert reopened.get("k") == {"stable": True}
        assert reopened.keys() == ("k",)
        # the next put over the same key replaces the torn tmp cleanly
        reopened.put("k", {"stable": "new"})
        assert reopened.get("k") == {"stable": "new"}

    def test_put_fsyncs_directory_entry(self, tmp_path, monkeypatch):
        """The rename is published durably: put/put_many/remove fsync
        the directory so the entry itself survives power loss."""
        import repro.persistence.object_store as mod

        store = FileStore(str(tmp_path / "store"))
        synced = []
        real_fsync = mod.os.fsync
        monkeypatch.setattr(
            mod.os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))[1]
        )
        store.put("k", 1)
        assert len(synced) == 2  # file contents + directory entry
        synced.clear()
        store.put_many({"a": 1, "b": 2})
        assert len(synced) == 3  # two staged files + one directory sync
        synced.clear()
        store.remove("k")
        assert len(synced) == 1  # directory sync after the unlink


class TestWriteAheadLog:
    def test_append_assigns_lsns(self):
        wal = WriteAheadLog()
        r1 = wal.append("a", x=1)
        r2 = wal.append("b", y=2)
        assert (r1.lsn, r2.lsn) == (1, 2)
        assert [r.kind for r in wal.records()] == ["a", "b"]

    def test_payloads_roundtrip(self):
        wal = WriteAheadLog()
        wal.append("decision", tid="tx-1", keys=["a", "b"])
        record = wal.records()[0]
        assert record.payload == {"tid": "tx-1", "keys": ["a", "b"]}

    def test_of_kind(self):
        wal = WriteAheadLog()
        wal.append("a")
        wal.append("b")
        wal.append("a")
        assert len(wal.of_kind("a")) == 2

    def test_volatile_records_lost_on_crash(self):
        wal = WriteAheadLog()
        wal.append("durable")
        wal.append_volatile("volatile")
        wal.crash()
        assert [r.kind for r in wal.records()] == ["durable"]

    def test_force_makes_volatile_durable(self):
        wal = WriteAheadLog()
        wal.append_volatile("a")
        wal.append_volatile("b")
        assert len(wal) == 0
        wal.force()
        assert len(wal) == 2

    def test_force_counts_group_commits(self):
        wal = WriteAheadLog()
        wal.append_volatile("a")
        wal.append_volatile("b")
        wal.force()
        assert wal.forces == 1

    def test_reopen_after_crash_preserves_durable(self):
        from repro.persistence import MemoryStore

        store = MemoryStore()
        wal = WriteAheadLog(store, "log")
        wal.append("kept", n=1)
        wal.append_volatile("lost")
        wal.crash()
        reopened = wal.reopen()
        assert [r.kind for r in reopened.records()] == ["kept"]
        # LSNs continue without reuse.
        record = reopened.append("after")
        assert record.lsn >= 2

    def test_reopen_with_unforced_rejected(self):
        from repro.exceptions import InvalidStateError

        wal = WriteAheadLog()
        wal.append_volatile("pending")
        with pytest.raises(InvalidStateError):
            wal.reopen()

    def test_truncate(self):
        wal = WriteAheadLog()
        for i in range(5):
            wal.append("r", i=i)
        dropped = wal.truncate(up_to_lsn=3)
        assert dropped == 3
        assert [r.lsn for r in wal.records()] == [4, 5]

    def test_iteration(self):
        wal = WriteAheadLog()
        wal.append("a")
        assert [r.kind for r in wal] == ["a"]

    def test_two_logs_share_store_independently(self):
        from repro.persistence import MemoryStore

        store = MemoryStore()
        wal1 = WriteAheadLog(store, "one")
        wal2 = WriteAheadLog(store, "two")
        wal1.append("only-in-one")
        assert len(wal2.records()) == 0


class TestSegmentedStoreConcurrency:
    def test_concurrent_batches_across_rollovers(self, tmp_path):
        """Parallel participant phases write through shared stores from
        worker threads; rollover bookkeeping must not corrupt."""
        import threading

        from repro.persistence import SegmentedFileStore

        store = SegmentedFileStore(str(tmp_path / "seg"), segment_bytes=256)
        errors = []

        def writer(worker):
            try:
                for wave in range(20):
                    store.put_many(
                        {f"w{worker}-k{i}": [worker, wave, i] for i in range(4)}
                    )
            except Exception as exc:  # pragma: no cover - surfaced via assert
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(store.keys()) == 16
        # Segment ids must be strictly increasing (no duplicate rollovers).
        ids = store._segment_ids
        assert ids == sorted(set(ids))
        # A reopen replays everything each writer last wrote.
        reopened = SegmentedFileStore(str(tmp_path / "seg"), segment_bytes=256)
        for worker in range(4):
            for i in range(4):
                assert reopened.get(f"w{worker}-k{i}") == [worker, 19, i]
        assert reopened.torn_frames_dropped == 0


class TestAutoCompaction:
    """Threshold-triggered compaction on the segmented store's write path."""

    def make(self, tmp_path, **kwargs):
        from repro.persistence import SegmentedFileStore

        kwargs.setdefault("segment_bytes", 256)
        kwargs.setdefault("auto_compact_ratio", 0.5)
        kwargs.setdefault("auto_compact_min_records", 16)
        return SegmentedFileStore(str(tmp_path / "seg"), **kwargs)

    def test_overwrites_trigger_compaction(self, tmp_path):
        import os

        store = self.make(tmp_path)
        for wave in range(20):
            store.put_many({f"k{i}": wave for i in range(4)})
        assert store.auto_compactions >= 1
        # Dead weight stays bounded by the threshold after each trigger.
        assert store.dead_record_ratio() < 0.5 + 0.25
        # The live set is intact and a reopen replays the same state.
        assert store.keys() == tuple(sorted(f"k{i}" for i in range(4)))
        from repro.persistence import SegmentedFileStore

        reopened = SegmentedFileStore(str(tmp_path / "seg"), segment_bytes=256)
        for i in range(4):
            assert reopened.get(f"k{i}") == 19
        # Old segments were actually deleted, not just superseded.
        assert len(os.listdir(str(tmp_path / "seg"))) <= 3

    def test_enabled_by_default(self, tmp_path):
        from repro.persistence import SegmentedFileStore

        store = SegmentedFileStore(str(tmp_path / "seg"), segment_bytes=256)
        for wave in range(40):
            store.put_many({f"k{i}": wave for i in range(4)})
        assert store.auto_compactions >= 1
        # Dead frames are reclaimed as we go: disk stays bounded instead
        # of accumulating one segment per ~16 records forever.
        assert len(os.listdir(str(tmp_path / "seg"))) < 6

    def test_opt_out(self, tmp_path):
        from repro.persistence import SegmentedFileStore

        store = SegmentedFileStore(
            str(tmp_path / "seg"), segment_bytes=256, auto_compact_ratio=None
        )
        for wave in range(20):
            store.put_many({f"k{i}": wave for i in range(4)})
        assert store.auto_compactions == 0
        assert store.dead_record_ratio() > 0.9

    def test_min_records_floor(self, tmp_path):
        store = self.make(tmp_path, auto_compact_min_records=1000)
        for wave in range(20):
            store.put("k", wave)
        assert store.auto_compactions == 0

    def test_invalid_ratio_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            self.make(tmp_path, auto_compact_ratio=0.0)
        with pytest.raises(ValueError):
            self.make(tmp_path, auto_compact_ratio=1.5)

    def test_fresh_inserts_do_not_compact(self, tmp_path):
        store = self.make(tmp_path)
        store.put_many({f"k{i}": i for i in range(64)})
        assert store.auto_compactions == 0  # nothing is dead

    def test_ratio_survives_reopen(self, tmp_path):
        from repro.persistence import SegmentedFileStore

        store = SegmentedFileStore(str(tmp_path / "seg"), segment_bytes=4096)
        for wave in range(4):
            store.put_many({f"k{i}": wave for i in range(4)})
        ratio = store.dead_record_ratio()
        assert ratio == pytest.approx(0.75)
        reopened = SegmentedFileStore(str(tmp_path / "seg"), segment_bytes=4096)
        assert reopened.dead_record_ratio() == pytest.approx(ratio)

    def test_delete_heavy_workload_triggers_compaction(self, tmp_path):
        store = self.make(tmp_path)
        store.put_many({f"k{i}": i for i in range(32)})
        for i in range(28):
            store.remove(f"k{i}")
        assert store.auto_compactions >= 1
        assert store.keys() == tuple(sorted(f"k{i}" for i in range(28, 32)))


class TestSegmentedKeysCache:
    """keys() caches its sorted tuple and invalidates on every mutation."""

    def make(self, tmp_path):
        from repro.persistence import SegmentedFileStore

        return SegmentedFileStore(str(tmp_path / "seg"))

    def test_repeated_keys_reuse_cached_tuple(self, tmp_path):
        store = self.make(tmp_path)
        store.put_many({"b": 1, "a": 2, "c": 3})
        first = store.keys()
        assert first == ("a", "b", "c")
        assert store.keys() is first, "no re-sort without mutation"

    def test_put_invalidates(self, tmp_path):
        store = self.make(tmp_path)
        store.put("b", 1)
        before = store.keys()
        store.put("a", 2)
        after = store.keys()
        assert after == ("a", "b")
        assert after is not before

    def test_put_many_and_remove_invalidate(self, tmp_path):
        store = self.make(tmp_path)
        store.put_many({"a": 1, "b": 2})
        assert store.keys() == ("a", "b")
        store.put_many({"c": 3})
        assert store.keys() == ("a", "b", "c")
        store.remove("b")
        assert store.keys() == ("a", "c")

    def test_overwrite_keeps_cache_correct(self, tmp_path):
        store = self.make(tmp_path)
        store.put("a", 1)
        keys = store.keys()
        store.put("a", 2)  # same key set; invalidation is still safe
        assert store.keys() == keys == ("a",)
        assert store.get("a") == 2

    def test_compaction_and_reopen_keep_keys_correct(self, tmp_path):
        from repro.persistence import SegmentedFileStore

        store = self.make(tmp_path)
        for wave in range(3):
            store.put_many({f"k{i}": wave for i in range(4)})
        store.remove("k0")
        assert store.keys() == ("k1", "k2", "k3")
        store.compact()
        assert store.keys() == ("k1", "k2", "k3")
        reopened = SegmentedFileStore(str(tmp_path / "seg"))
        assert reopened.keys() == ("k1", "k2", "k3")

    def test_auto_compaction_path_invalidates(self, tmp_path):
        from repro.persistence import SegmentedFileStore

        store = SegmentedFileStore(
            str(tmp_path / "seg"),
            auto_compact_ratio=0.5,
            auto_compact_min_records=8,
        )
        store.put_many({f"k{i}": 0 for i in range(8)})
        cached = store.keys()
        for wave in range(4):  # drives auto-compaction via dead ratio
            store.put_many({f"k{i}": wave for i in range(8)})
        assert store.auto_compactions >= 1
        assert store.keys() == cached == tuple(f"k{i}" for i in range(8))
