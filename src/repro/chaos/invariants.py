"""Generic invariant checkers evaluated after a chaos campaign quiesces.

Each :class:`InvariantChecker` inspects the quiesced world plus the
workload ledger (the per-operation outcomes the driver recorded) and
returns :class:`InvariantViolation` records — never raises.  A campaign
passes when every checker returns an empty list.

The four stock checkers encode the safety story of the framework under
faults:

``conservation``
    Money is neither created nor destroyed: the committed balances of
    every account sum to the opening total, no matter how many
    transfers crashed mid-2PC, were duplicated by the network, or were
    replayed from the WAL.

``outcomes``
    No lost or duplicated outcome.  Every transfer the driver saw commit
    is applied exactly once on *both* the debit and credit accounts;
    every aborted transfer on neither; an ``unknown`` outcome (the
    client saw a crash or communication error at commit time) must have
    resolved atomically — both sides or neither, never one.

``orphans``
    Quiescence is real: no factory holds a live transaction, no
    federated service holds an unresolved in-doubt subordinate, and no
    cell keeps a prepared-but-undecided intention record or a stuck
    lock.

``wal_replay``
    Recovery converges: crash every domain once more and replay its
    write-ahead log; committed state must come back bit-identical (the
    log is a faithful, idempotent description of the decided history).

``replication``
    (Replicated worlds only.)  No acknowledged write is ever lost while
    any quorum survives: after quiescence every replica set reports a
    healthy quorum and zero lag, and a disk-loss drill — crash each
    domain, wipe its current *primary* media, reboot — must recover
    every committed balance from follower state alone.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

BANK_OP_KINDS = ("transfer_remote", "transfer_local")


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant, with enough context to debug the seed."""

    checker: str
    message: str
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.checker}] {self.message} {self.details or ''}".rstrip()


class InvariantChecker(abc.ABC):
    """One safety property evaluated against a quiesced chaos world."""

    name: str = "invariant"

    @abc.abstractmethod
    def check(self, world: Any, ledger: Sequence[Any]) -> List[InvariantViolation]:
        """Return violations (empty list == invariant holds)."""

    def violation(self, message: str, **details: Any) -> InvariantViolation:
        return InvariantViolation(self.name, message, details)


class ConservationChecker(InvariantChecker):
    """Committed balances sum to the opening total."""

    name = "conservation"

    def check(self, world: Any, ledger: Sequence[Any]) -> List[InvariantViolation]:
        expected = world.expected_total()
        actual = world.total_committed()
        if abs(actual - expected) > 1e-9:
            return [
                self.violation(
                    "bank total drifted",
                    expected=expected,
                    actual=actual,
                    balances=world.committed_balances(),
                )
            ]
        return []


class OutcomeChecker(InvariantChecker):
    """No transfer outcome is lost, duplicated, or half-applied."""

    name = "outcomes"

    def check(self, world: Any, ledger: Sequence[Any]) -> List[InvariantViolation]:
        violations: List[InvariantViolation] = []
        applied = world.applied_operations()  # acct key -> list of op ids
        for account, ops in applied.items():
            for op_id in set(ops):
                if ops.count(op_id) > 1:
                    violations.append(
                        self.violation(
                            "operation applied more than once",
                            account=account,
                            op_id=op_id,
                            count=ops.count(op_id),
                        )
                    )
        for record in ledger:
            if record.kind not in BANK_OP_KINDS:
                continue
            touched = sorted(
                account
                for account, ops in applied.items()
                if record.op_id in ops
            )
            expected = sorted((record.debit, record.credit))
            if record.outcome == "committed":
                if touched != expected:
                    violations.append(
                        self.violation(
                            "committed transfer not applied on both sides",
                            op_id=record.op_id,
                            expected=expected,
                            applied=touched,
                        )
                    )
            elif record.outcome in ("aborted", "skipped"):
                if touched:
                    violations.append(
                        self.violation(
                            "aborted transfer left effects behind",
                            op_id=record.op_id,
                            outcome=record.outcome,
                            applied=touched,
                        )
                    )
            elif record.outcome == "unknown":
                # The client never learned the verdict; atomicity still
                # demands all-or-nothing once the dust settles.
                if touched and touched != expected:
                    violations.append(
                        self.violation(
                            "in-doubt transfer resolved non-atomically",
                            op_id=record.op_id,
                            expected=expected,
                            applied=touched,
                        )
                    )
            else:
                violations.append(
                    self.violation(
                        "ledger outcome unrecognised",
                        op_id=record.op_id,
                        outcome=record.outcome,
                    )
                )
        return violations


class OrphanChecker(InvariantChecker):
    """No live transactions, held in-doubts, or stuck locks remain."""

    name = "orphans"

    def check(self, world: Any, ledger: Sequence[Any]) -> List[InvariantViolation]:
        violations: List[InvariantViolation] = []
        for name, domain in world.domains.items():
            active = [tx.tid for tx in domain.factory.active_transactions()]
            if active:
                violations.append(
                    self.violation(
                        "factory still holds active transactions",
                        domain=name,
                        tids=active,
                    )
                )
            ages = domain.service.in_doubt_ages()
            if ages:
                violations.append(
                    self.violation(
                        "federated service still holds in-doubt subordinates",
                        domain=name,
                        in_doubt=sorted(ages),
                    )
                )
            for key, account in domain.accounts.items():
                in_doubt = account.cell.list_in_doubt()
                if in_doubt:
                    violations.append(
                        self.violation(
                            "cell holds undecided intention records",
                            domain=name,
                            account=key,
                            tids=list(in_doubt),
                        )
                    )
        return violations


class WalReplayChecker(InvariantChecker):
    """Crashing and replaying every WAL reproduces the committed state."""

    name = "wal_replay"

    def check(self, world: Any, ledger: Sequence[Any]) -> List[InvariantViolation]:
        before = world.committed_balances()
        for name in list(world.domains):
            world.crash(name)
            world.restart(name)
        after = world.committed_balances()
        if before != after:
            return [
                self.violation(
                    "WAL replay diverged from pre-crash committed state",
                    before=before,
                    after=after,
                )
            ]
        return []


class ReplicationChecker(InvariantChecker):
    """Acked writes survive losing any single disk; quiescence means
    fully re-replicated.

    No-ops on unreplicated worlds.  Two stages: first audit every
    domain's replication health (quorum intact, no replica lagging or
    awaiting re-sync after quiescence healed everything); then run the
    disk-loss drill — crash the domain, wipe the media its WAL and cell
    store currently call primary, reboot — and demand the committed
    state come back bit-identical, recovered entirely from follower
    copies via the election path.
    """

    name = "replication"

    def check(self, world: Any, ledger: Sequence[Any]) -> List[InvariantViolation]:
        media = getattr(world, "replica_media", None)
        if not media:
            return []
        violations: List[InvariantViolation] = []
        for name, domain in world.domains.items():
            for layer, health in (
                ("wal", domain.wal.health()),
                ("cells", domain.cell_store.health()),
            ):
                if not health["quorum_ok"]:
                    violations.append(
                        self.violation(
                            "quorum lost after quiescence",
                            domain=name, layer=layer, health=health,
                        )
                    )
                if health["under_replicated"]:
                    violations.append(
                        self.violation(
                            "still under-replicated after quiescence",
                            domain=name, layer=layer, health=health,
                        )
                    )
        if violations:
            return violations  # don't drill a world already degraded

        before = world.committed_balances()
        for name in list(world.domains):
            domain = world.domains[name]
            wal_primary = domain.wal.primary_index
            cell_primary = domain.cell_store.primary_index
            world.crash(name)
            media[name]["wal"][wal_primary].wipe()
            media[name]["cells"][cell_primary].wipe()
            error = world.restart(name)
            if error is not None:
                violations.append(
                    self.violation(
                        "recovery failed after wiping the primary disk",
                        domain=name, error=error,
                    )
                )
        after = world.committed_balances()
        if before != after:
            violations.append(
                self.violation(
                    "acked writes lost to a single-disk wipe",
                    before=before, after=after,
                )
            )
        return violations


def default_checkers() -> List[InvariantChecker]:
    """The stock checker suite, in evaluation order.

    ``wal_replay`` and ``replication`` run last (in that order): both
    reboot every domain, so earlier checkers see the world exactly as
    the campaign left it.  ``replication`` is a no-op for unreplicated
    worlds.
    """
    return [
        ConservationChecker(),
        OutcomeChecker(),
        OrphanChecker(),
        WalReplayChecker(),
        ReplicationChecker(),
    ]


def run_checkers(
    world: Any,
    ledger: Sequence[Any],
    checkers: Sequence[InvariantChecker],
) -> List[InvariantViolation]:
    violations: List[InvariantViolation] = []
    for checker in checkers:
        try:
            violations.extend(checker.check(world, ledger))
        except Exception as exc:  # a crash must stay triagable per-seed
            violations.append(
                InvariantViolation(
                    checker.name,
                    f"checker raised {type(exc).__name__}",
                    {"error": str(exc)},
                )
            )
    return violations
