"""Integration: end-to-end crash/recovery across OTS + Activity Service.

Reproduces the §3.4 story: a node crash mid-protocol loses volatile
state; the write-ahead log, object stores and checkpointed activity
structure drive everything back to consistency, with application logic
re-driving in-flight activities.
"""

import pytest

from repro.core import (
    ActivityManager,
    CompletionSignalSet,
    CompletionStatus,
    RecordingAction,
)
from repro.core.predefined import COMPLETION_SET_NAME
from repro.models import TwoPhaseCommitSignalSet
from repro.models.twopc import SET_NAME as TWOPC_SET, TransactionalResourceAction
from repro.ots import (
    RecoverableRegistry,
    RecoveryManager,
    SimulatedCrash,
    TransactionFactory,
    TransactionalCell,
)
from repro.persistence import MemoryStore, WriteAheadLog


class TestOtsThroughActivityService:
    """2PC driven by the *activity service* over real recoverable cells."""

    @pytest.fixture
    def env(self):
        class Env:
            def __init__(self):
                self.stable = MemoryStore()
                self.wal = WriteAheadLog(self.stable, "txlog")
                self.factory = TransactionFactory(wal=self.wal)
                self.registry = RecoverableRegistry()
                self.cell_store = MemoryStore()
                self.manager = ActivityManager()

            def cell(self, key, initial=0):
                return TransactionalCell(
                    key, initial, self.factory,
                    store=self.cell_store, registry=self.registry,
                )

        return Env()

    def test_activity_driven_commit_of_recoverable_cells(self, env):
        a, b = env.cell("a"), env.cell("b")
        tx = env.factory.create()
        a.write(tx, 10)
        b.write(tx, 20)
        activity = env.manager.begin("commit-via-signals")
        for record in tx.resources:
            activity.add_action(
                TWOPC_SET,
                TransactionalResourceAction(record.participant, record.recovery_key),
            )
        activity.register_signal_set(TwoPhaseCommitSignalSet(), completion=True)
        outcome = activity.complete(CompletionStatus.SUCCESS)
        assert outcome.name == "committed"
        assert a.read() == 10 and b.read() == 20

    def test_coordinator_crash_then_recovery_completes_commit(self, env):
        a, b = env.cell("a"), env.cell("b")
        tx = env.factory.create()
        a.write(tx, 1)
        b.write(tx, 2)
        env.factory.failpoints.arm("after_commit_log")
        with pytest.raises(SimulatedCrash):
            tx.commit()
        # "Restart": fresh cells over the same stores, fresh registry.
        registry = RecoverableRegistry()
        TransactionalCell("a", 0, env.factory, store=env.cell_store, registry=registry)
        TransactionalCell("b", 0, env.factory, store=env.cell_store, registry=registry)
        report = RecoveryManager(env.wal.reopen(), registry).recover()
        assert report.recommitted
        assert registry.resolve("a").committed_value == 1
        assert registry.resolve("b").committed_value == 2

    def test_crash_before_decision_presumes_abort(self, env):
        a, b = env.cell("a"), env.cell("b")
        tx = env.factory.create()
        a.write(tx, 1)
        b.write(tx, 2)
        env.factory.failpoints.arm("before_commit_log")
        with pytest.raises(SimulatedCrash):
            tx.commit()
        registry = RecoverableRegistry()
        cell_a = TransactionalCell(
            "a", 0, env.factory, store=env.cell_store, registry=registry
        )
        cell_b = TransactionalCell(
            "b", 0, env.factory, store=env.cell_store, registry=registry
        )
        RecoveryManager(env.wal.reopen(), registry).recover()
        assert cell_a.read() == 0 and cell_b.read() == 0
        assert cell_a.list_in_doubt() == []


class TestActivityStructureRecovery:
    def test_full_stack_restart(self):
        """Checkpoint activities + WAL + cells; crash everything volatile;
        rebuild; re-drive the in-flight activity to completion."""
        stable = MemoryStore()
        activity_store = MemoryStore()

        def build_manager():
            manager = ActivityManager(store=activity_store)
            manager.register_signal_set_factory("completion", CompletionSignalSet)
            manager.register_action_factory(
                "recorder", lambda config: RecordingAction(config.get("name", "r"))
            )
            return manager

        manager = build_manager()
        parent = manager.begin("booking")
        child = manager.begin("payment", parent=parent)
        for activity in (parent, child):
            activity.register_signal_set(
                CompletionSignalSet(), completion=True, factory_name="completion"
            )
            activity.add_action(
                COMPLETION_SET_NAME,
                RecordingAction(),
                factory_name="recorder",
                factory_config={"name": activity.name},
            )
        from repro.core.recovery import ActivityRecoveryService

        ActivityRecoveryService(manager, activity_store).checkpoint_tree(parent)

        # Crash: all in-memory state gone; rebuild from the store.
        manager2 = build_manager()
        in_flight = manager2.recover()
        assert len(in_flight) == 2
        recovered_child = manager2.get(child.activity_id)
        recovered_parent = manager2.get(parent.activity_id)
        assert recovered_child.parent is recovered_parent
        # Application re-drives to completion, children first.
        assert recovered_child.complete(CompletionStatus.SUCCESS).is_done
        assert recovered_parent.complete(CompletionStatus.SUCCESS).is_done

    def test_node_crash_with_durable_activity_servants(self):
        """Exported activities survive node crashes as durable servants;
        remote enlistments made before the crash still work after restart."""
        from repro.core import BroadcastSignalSet
        from repro.orb import Orb

        orb = Orb()
        node = orb.create_node("host")
        manager = ActivityManager(clock=orb.clock)
        manager.install(orb)
        activity = manager.begin("durable")
        ref = manager.export(activity, node)
        recorder = RecordingAction("r")
        remote_node = orb.create_node("remote")
        action_ref = remote_node.activate(
            recorder, interface="Action", durable=True
        )
        ref.invoke("enlist", "events", action_ref)
        node.crash()
        node.restart()
        activity.register_signal_set(
            BroadcastSignalSet("after-restart", signal_set_name="events")
        )
        ref.invoke("signal", "events")
        assert recorder.signal_names == ["after-restart"]
