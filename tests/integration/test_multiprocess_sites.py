"""True fault tolerance: SIGKILL real site daemons mid-2PC and recover.

Each test spawns the two-site bank (`repro.apps.site_apps`) as separate
OS processes via the process harness, drives a federated transfer from a
client transport, and kills a daemon at an armed protocol point — the
same fail-point names the in-process crash tests use, except here the
crash is a real ``SIGKILL`` and recovery must come entirely from the
on-disk WAL of the restarted process.

Store parametrization: the WAL is always disk-backed (the site runtime
insists), but application cell state honours ``cell_store``.  With
``segmented`` cells the books must balance exactly after recovery; with
``memory`` cells the killed site's data is explicitly non-durable — the
protocol must still *converge* (no held in-doubt state, no stuck locks,
the surviving site consistent with the logged decision), which is
precisely the property the WAL owns.
"""

import pytest

from repro.exceptions import CommunicationError
from repro.testing import SiteCluster
from repro.testing.process_harness import wait_until

DESK = "site-a.bank"
BANK = "site-b.bank"


@pytest.fixture
def cluster_factory(tmp_path):
    clusters = []

    def build(cell_store="segmented"):
        specs = {
            "site-a": {
                "app": "repro.apps.site_apps:transfer_desk_site",
                "cell_store": cell_store,
            },
            "site-b": {
                "app": "repro.apps.site_apps:bank_site",
                "cell_store": cell_store,
            },
        }
        cluster = SiteCluster(str(tmp_path / f"run{len(clusters)}"), specs)
        clusters.append(cluster)
        cluster.start()
        return cluster

    yield build
    for cluster in clusters:
        cluster.stop()


def balances(client):
    a = client.ref(DESK, "acct-1", "BankAccount").invoke("balance")
    b = client.ref(BANK, "acct-2", "BankAccount").invoke("balance")
    return a, b


def transfer_expecting_death(client, amount=10.0):
    desk = client.ref(DESK, "desk", "TransferDesk")
    with pytest.raises(CommunicationError):
        desk.invoke("transfer", "acct-1", BANK, "acct-2", amount)


def in_doubt_drained(client, site_id="site-b"):
    return not client.control(site_id, {"op": "resolve"})["outcomes"]


class TestHappyPath:
    def test_federated_transfer_across_processes(self, cluster_factory):
        cluster = cluster_factory()
        client = cluster.client()
        try:
            desk = client.ref(DESK, "desk", "TransferDesk")
            out = desk.invoke("transfer", "acct-1", BANK, "acct-2", 25.0)
            assert out == {"from_balance": 75.0, "to_balance": 125.0}
            assert balances(client) == (75.0, 125.0)
            status = client.control("site-a", {"op": "status"})
            assert status["recovered"] is True
            assert status["stats"]["requests_sent"] > 0
        finally:
            client.close()


class TestCoordinatorSigkill:
    @pytest.mark.parametrize("cell_store", ["segmented", "memory"])
    def test_killed_during_phase_two_recommits_on_restart(
        self, cluster_factory, cell_store
    ):
        """Decision logged, SIGKILL before phase two reaches anyone."""
        cluster = cluster_factory(cell_store)
        client = cluster.client()
        try:
            client.control("site-a", {"op": "arm_kill", "point": "after_commit_log"})
            transfer_expecting_death(client)
            cluster["site-a"].wait_exit()
            assert not cluster["site-a"].alive()

            cluster["site-a"].restart()
            client.wait_ready("site-a")
            # The logged decision replays downward: the surviving
            # participant commits no matter what.
            assert wait_until(
                lambda: client.ref(BANK, "acct-2", "BankAccount").invoke("balance")
                == 110.0
            ), cluster.debug_dump()
            if cell_store == "segmented":
                # Durable cells: the killed site's debit survives too.
                assert balances(client) == (90.0, 110.0)
            else:
                # Memory cells died with the process; protocol state
                # still converged (nothing held, fabric usable).
                assert in_doubt_drained(client)
            desk = client.ref(DESK, "desk", "TransferDesk")
            desk.invoke("transfer", "acct-1", BANK, "acct-2", 5.0)
        finally:
            client.close()

    @pytest.mark.parametrize("cell_store", ["segmented", "memory"])
    def test_killed_during_phase_one_presumes_abort(
        self, cluster_factory, cell_store
    ):
        """Votes collected, SIGKILL before the decision is logged.

        The subordinate on site-b is durably prepared and must NOT
        presume abort on its own; it polls the restarted coordinator's
        recovery servant, which answers from the WAL: no logged decision
        → rolled back.
        """
        cluster = cluster_factory(cell_store)
        client = cluster.client()
        try:
            client.control("site-a", {"op": "arm_kill", "point": "before_commit_log"})
            transfer_expecting_death(client)
            cluster["site-a"].wait_exit()

            # While the coordinator is down the subordinate holds.
            outcomes = client.control("site-b", {"op": "resolve"})["outcomes"]
            assert outcomes and all(v == "held" for v in outcomes.values())

            cluster["site-a"].restart()
            client.wait_ready("site-a")
            assert wait_until(lambda: in_doubt_drained(client)), cluster.debug_dump()
            assert balances(client) == (100.0, 100.0)
            # Locks released: the same accounts transfer cleanly.
            desk = client.ref(DESK, "desk", "TransferDesk")
            out = desk.invoke("transfer", "acct-1", BANK, "acct-2", 10.0)
            assert out == {"from_balance": 90.0, "to_balance": 110.0}
        finally:
            client.close()

    def test_killed_mid_commit_broadcast(self, cluster_factory):
        """Decision logged, SIGKILL after the first participant's commit
        but before the broadcast reaches the rest."""
        cluster = cluster_factory()
        client = cluster.client()
        try:
            client.control(
                "site-a", {"op": "arm_kill", "point": "before_commit_resource_1"}
            )
            transfer_expecting_death(client)
            cluster["site-a"].wait_exit()

            cluster["site-a"].restart()
            client.wait_ready("site-a")
            assert wait_until(
                lambda: balances(client) == (90.0, 110.0)
            ), cluster.debug_dump()
            assert in_doubt_drained(client)
        finally:
            client.close()


class TestOrphanedSubordinate:
    def test_readoption_after_both_sites_restart(self, cluster_factory):
        """Kill coordinator mid-protocol AND the participant; restart the
        participant first.  Its recovery re-exports the subordinate from
        the ``subtx_prepared`` record under the original object id and
        holds; when the coordinator comes back, its WAL replay lands on
        the re-adopted resource and completes the tree."""
        cluster = cluster_factory()
        client = cluster.client()
        try:
            client.control("site-a", {"op": "arm_kill", "point": "after_commit_log"})
            transfer_expecting_death(client)
            cluster["site-a"].wait_exit()
            cluster["site-b"].kill()

            # Participant restarts first: orphaned (superior still down).
            cluster["site-b"].restart()
            client.wait_ready("site-b")
            outcomes = client.control("site-b", {"op": "resolve"})["outcomes"]
            assert outcomes and all(v == "held" for v in outcomes.values())
            assert client.ref(BANK, "acct-2", "BankAccount").invoke("balance") == 100.0

            cluster["site-a"].restart()
            client.wait_ready("site-a")
            assert wait_until(
                lambda: balances(client) == (90.0, 110.0)
            ), cluster.debug_dump()
            assert in_doubt_drained(client)
        finally:
            client.close()
