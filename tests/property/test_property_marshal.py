"""Property-based tests: marshalling is a lossless involution."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.signals import Outcome, Signal
from repro.orb.marshal import Marshaller
from repro.orb.reference import ObjectRef

# Wire-legal scalar values.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=50),
    st.binary(max_size=50),
)

# Recursive wire-legal values (keys restricted to hashables).
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
        st.tuples(children, children),
    ),
    max_leaves=25,
)


def roundtrip(value):
    marshaller = Marshaller()
    return marshaller.decode(marshaller.encode(value))


class TestRoundtrip:
    @given(values)
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_values_roundtrip(self, value):
        assert roundtrip(value) == value

    @given(values)
    @settings(max_examples=50, deadline=None)
    def test_double_roundtrip_stable(self, value):
        once = roundtrip(value)
        twice = roundtrip(once)
        assert once == twice

    @given(st.text(max_size=20), st.text(max_size=20), values)
    @settings(max_examples=100, deadline=None)
    def test_signals_roundtrip(self, name, set_name, data):
        signal = Signal(name, set_name, data)
        assert roundtrip(signal) == signal

    @given(st.text(max_size=20), values, st.booleans())
    @settings(max_examples=100, deadline=None)
    def test_outcomes_roundtrip(self, name, data, is_error):
        outcome = Outcome(name=name, data=data, is_error=is_error)
        assert roundtrip(outcome) == outcome

    @given(st.text(min_size=1, max_size=10), st.text(min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_object_refs_roundtrip(self, node_id, object_id):
        ref = ObjectRef(node_id, object_id, "Iface")
        copy = roundtrip(ref)
        assert copy == ref
        assert copy.interface == "Iface"

    @given(st.lists(values, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_mutation_of_copy_never_aliases(self, items):
        original = {"items": list(items)}
        copy = roundtrip(original)
        copy["items"].append("sentinel")
        assert len(original["items"]) == len(items)

    @given(
        st.dictionaries(
            st.integers(min_value=-(2**63), max_value=2**63 - 1), scalars, max_size=8
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_dict_key_types_preserved(self, mapping):
        assert roundtrip(mapping) == mapping

    @given(st.integers(min_value=2**63, max_value=2**70))
    @settings(max_examples=20, deadline=None)
    def test_out_of_range_integers_raise_marshal_error(self, value):
        from repro.orb.marshal import MarshalError
        import pytest

        with pytest.raises(MarshalError):
            Marshaller().encode(value)

    @given(st.sets(st.integers(min_value=-1000, max_value=1000), max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_sets_roundtrip(self, items):
        assert roundtrip(items) == items
