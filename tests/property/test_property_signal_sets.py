"""Property-based tests on fig. 7 and coordinator invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ActivityCoordinator,
    GuardedSignalSet,
    Outcome,
    RecordingAction,
    SequenceSignalSet,
    SignalSetActive,
    SignalSetInactive,
)
from repro.core.status import SignalSetState

signal_names = st.lists(
    st.text(min_size=1, max_size=8), min_size=0, max_size=6
)


class TestGuardInvariants:
    @given(signal_names)
    @settings(max_examples=100, deadline=None)
    def test_state_never_regresses(self, names):
        """Fig. 7: Waiting → GetSignal → End, never backwards."""
        guard = GuardedSignalSet(SequenceSignalSet("s", names))
        order = {
            SignalSetState.WAITING: 0,
            SignalSetState.GET_SIGNAL: 1,
            SignalSetState.END: 2,
        }
        previous = guard.state
        while True:
            signal, last = guard.get_signal()
            assert order[guard.state] >= order[previous]
            previous = guard.state
            if signal is None:
                break
            guard.set_response(Outcome.done())
            if last:
                guard.finish_broadcast()
                break
        guard.get_outcome()
        assert guard.state is SignalSetState.END

    @given(signal_names)
    @settings(max_examples=100, deadline=None)
    def test_every_driving_call_after_end_raises(self, names):
        guard = GuardedSignalSet(SequenceSignalSet("s", names))
        # Drive to completion.
        while True:
            signal, last = guard.get_signal()
            if signal is None:
                break
            guard.set_response(Outcome.done())
            if last:
                guard.finish_broadcast()
                break
        guard.get_outcome()
        for call in (guard.get_signal, lambda: guard.set_response(Outcome.done())):
            try:
                call()
                raise AssertionError("expected SignalSetInactive")
            except SignalSetInactive:
                pass

    @given(st.lists(st.text(min_size=1, max_size=8), min_size=2, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_get_outcome_mid_protocol_always_rejected(self, names):
        guard = GuardedSignalSet(SequenceSignalSet("s", names))
        guard.get_signal()  # at least one more signal pending
        try:
            guard.get_outcome()
            raise AssertionError("expected SignalSetActive")
        except SignalSetActive:
            pass


class TestCoordinatorInvariants:
    @given(
        signal_names,
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=100, deadline=None)
    def test_every_action_sees_every_signal_in_order(self, names, action_count):
        coordinator = ActivityCoordinator("act")
        actions = [RecordingAction(f"a{i}") for i in range(action_count)]
        for action in actions:
            coordinator.add_action("s", action)
        coordinator.process_signal_set(SequenceSignalSet("s", names))
        for action in actions:
            assert action.signal_names == list(names)

    @given(signal_names, st.integers(min_value=1, max_value=4))
    @settings(max_examples=100, deadline=None)
    def test_delivery_ids_globally_unique(self, names, action_count):
        coordinator = ActivityCoordinator("act")
        actions = [RecordingAction(f"a{i}") for i in range(action_count)]
        for action in actions:
            coordinator.add_action("s", action)
        coordinator.process_signal_set(SequenceSignalSet("s", names))
        ids = [
            signal.delivery_id
            for action in actions
            for signal in action.received
        ]
        assert len(ids) == len(set(ids)) == len(names) * action_count

    @given(signal_names)
    @settings(max_examples=50, deadline=None)
    def test_trace_transmit_count_matches(self, names):
        coordinator = ActivityCoordinator("act")
        coordinator.add_action("s", RecordingAction())
        coordinator.add_action("s", RecordingAction())
        coordinator.process_signal_set(SequenceSignalSet("s", names))
        transmits = coordinator.event_log.of_kind("transmit")
        assert len(transmits) == 2 * len(names)
