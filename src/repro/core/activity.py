"""The Activity object (§3.1, §3.2).

An activity is a unit of (distributed) work that may or may not be
transactional.  It is created, made to run, and completed; its result is
an :class:`~repro.core.signals.Outcome`.  Activities nest, can be
suspended and resumed, carry :class:`PropertyGroup` instances, and own an
:class:`~repro.core.coordinator.ActivityCoordinator` through which
SignalSets drive registered Actions.

Completion-status discipline follows §3.2.1: SUCCESS ↔ FAIL may flip
arbitrarily, FAIL_ONLY latches.  Completing an activity whose children
are still active raises :class:`ActivityPending`.  A timed-out activity
latches to FAIL_ONLY.

Activity instances are valid servants: their public methods (``add_action``,
``set_completion_status``, ``signal_set_completed`` …) can be invoked
remotely on an exported reference, which is how one activity enlists with
another across nodes (as in the paper's workflow and BTP examples).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.coordinator import ActionRecord, ActivityCoordinator, ActionLike
from repro.core.exceptions import (
    ActivityCompleted,
    ActivityPending,
    CompletionStatusLatched,
    InvalidActivityState,
    NoSuchPropertyGroup,
    NoSuchSignalSet,
)
from repro.core.property_group import PropertyGroup
from repro.core.signal_set import SignalSet
from repro.core.signals import Outcome, Signal
from repro.core.status import ActivityStatus, CompletionStatus
from repro.util.events import EventLog


class Activity:
    """One activity: lifecycle + coordination surface.

    Create through :class:`~repro.core.manager.ActivityManager` (which
    wires clock, event log, delivery policy and property groups) rather
    than directly.
    """

    def __init__(
        self,
        activity_id: str,
        name: Optional[str] = None,
        parent: Optional["Activity"] = None,
        manager: Optional[Any] = None,
        event_log: Optional[EventLog] = None,
        delivery: Optional[Any] = None,
        timeout: float = 0.0,
        clock: Optional[Any] = None,
        executor: Optional[Any] = None,
        action_timeout: Optional[float] = None,
        marshal_once: bool = True,
        interposer: Optional[Any] = None,
    ) -> None:
        self.activity_id = activity_id
        self.name = name if name is not None else activity_id
        self.parent = parent
        self.manager = manager
        self.children: List[Activity] = []
        self.status = ActivityStatus.ACTIVE
        self._completion_status = CompletionStatus.SUCCESS
        self.outcome: Optional[Outcome] = None
        self._clock = clock
        self.deadline: Optional[float] = (
            clock.now() + timeout if (clock is not None and timeout > 0) else None
        )
        self.event_log = event_log if event_log is not None else EventLog()
        self.coordinator = ActivityCoordinator(
            activity_id,
            event_log=self.event_log,
            delivery=delivery,
            executor=executor,
            action_timeout=action_timeout,
            marshal_once=marshal_once,
            interposer=interposer,
        )
        self._signal_sets: Dict[str, SignalSet] = {}
        self._completion_signal_set: Optional[str] = None
        self._used_signal_sets: List[SignalSet] = []
        self._property_groups: Dict[str, PropertyGroup] = {}
        # Invocation fast path: last (version vector, wire context) pair
        # built for this activity (see repro.core.context.snapshot_context).
        self._context_snapshot: Optional[Any] = None
        # Registry bookkeeping: position in the manager's begin order
        # (stable iteration under the sharded registry) and the armed
        # expiry timer when the manager polices deadlines via a wheel.
        self.begin_seq: int = 0
        self._expiry_timer: Optional[Any] = None
        if parent is not None:
            parent.children.append(self)

    # -- structure ---------------------------------------------------------

    @property
    def is_top_level(self) -> bool:
        return self.parent is None

    @property
    def depth(self) -> int:
        depth = 0
        node = self
        while node.parent is not None:
            depth += 1
            node = node.parent
        return depth

    @property
    def root(self) -> "Activity":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def active_children(self) -> List["Activity"]:
        return [child for child in self.children if not child.status.is_terminal]

    # -- completion status (§3.2.1) --------------------------------------------

    def get_completion_status(self) -> CompletionStatus:
        return self._completion_status

    def set_completion_status(self, status: CompletionStatus) -> None:
        if not self._completion_status.may_become(status):
            raise CompletionStatusLatched(
                f"activity {self.activity_id} is FailOnly; cannot become {status.value}"
            )
        self._completion_status = status
        self.event_log.record(
            "completion_status", activity=self.activity_id, status=status.name
        )

    # -- lifecycle -----------------------------------------------------------------

    def _check_not_completed(self) -> None:
        if self.status.is_terminal:
            raise ActivityCompleted(f"activity {self.activity_id} already completed")

    def _check_timeout(self) -> None:
        if (
            self.deadline is not None
            and self._clock is not None
            and self._clock.now() > self.deadline
            and self._completion_status is not CompletionStatus.FAIL_ONLY
        ):
            # A timed-out activity can only fail.
            self._completion_status = CompletionStatus.FAIL_ONLY
            self.event_log.record("activity_timeout", activity=self.activity_id)

    def suspend(self) -> None:
        self._check_not_completed()
        if self.status is not ActivityStatus.ACTIVE:
            raise InvalidActivityState(
                f"cannot suspend activity in state {self.status.value}"
            )
        self.status = ActivityStatus.SUSPENDED
        self.event_log.record("activity_suspend", activity=self.activity_id)

    def resume(self) -> None:
        self._check_not_completed()
        if self.status is not ActivityStatus.SUSPENDED:
            raise InvalidActivityState(
                f"cannot resume activity in state {self.status.value}"
            )
        self.status = ActivityStatus.ACTIVE
        self.event_log.record("activity_resume", activity=self.activity_id)

    def complete(self, status: Optional[CompletionStatus] = None) -> Outcome:
        """Run the completion SignalSet and finish this activity.

        ``status`` (if given) is applied first, subject to FAIL_ONLY
        latching.  Active children must complete before their parent.
        """
        self._check_not_completed()
        if self.status is ActivityStatus.SUSPENDED:
            raise InvalidActivityState(
                f"activity {self.activity_id} is suspended; resume before completing"
            )
        self._check_timeout()
        if status is not None:
            self.set_completion_status(status)
        pending = self.active_children()
        if pending:
            raise ActivityPending(
                f"activity {self.activity_id} has {len(pending)} active children"
            )
        self.status = ActivityStatus.COMPLETING
        self.event_log.record(
            "activity_completing",
            activity=self.activity_id,
            completion_status=self._completion_status.name,
        )
        if self._completion_signal_set is not None:
            signal_set = self._signal_sets[self._completion_signal_set]
            outcome = self._process(signal_set)
        else:
            success = self._completion_status is CompletionStatus.SUCCESS
            outcome = Outcome.done() if success else Outcome.error("completed in failure")
        self.outcome = outcome
        self.status = ActivityStatus.COMPLETED
        self.event_log.record(
            "activity_completed",
            activity=self.activity_id,
            outcome=outcome.name,
            error=outcome.is_error,
        )
        if self.manager is not None:
            self.manager.on_activity_completed(self)
        return outcome

    # -- signal sets ---------------------------------------------------------------

    def register_signal_set(
        self,
        signal_set: SignalSet,
        completion: bool = False,
        factory_name: Optional[str] = None,
    ) -> None:
        """Attach a SignalSet instance (optionally as the completion set).

        ``factory_name`` marks the set recoverable: after a crash the
        recovery manager re-instantiates it via the manager's registered
        signal-set factory of that name.
        """
        self._check_not_completed()
        name = signal_set.signal_set_name
        if any(used is signal_set for used in self._used_signal_sets):
            raise NoSuchSignalSet(
                f"signal set instance {name!r} already ran for activity "
                f"{self.activity_id}; sets are not reusable (fig. 7) — "
                "register a fresh instance"
            )
        self._signal_sets[name] = signal_set
        if factory_name is not None:
            setattr(signal_set, "_factory_name", factory_name)
        if completion:
            self._completion_signal_set = name
        self.event_log.record(
            "register_signal_set",
            activity=self.activity_id,
            signal_set=name,
            completion=completion,
        )

    def signal_set(self, name: str) -> SignalSet:
        try:
            return self._signal_sets[name]
        except KeyError:
            raise NoSuchSignalSet(
                f"activity {self.activity_id} has no signal set {name!r}"
            ) from None

    def signal_set_names(self) -> List[str]:
        return sorted(self._signal_sets)

    @property
    def completion_signal_set_name(self) -> Optional[str]:
        return self._completion_signal_set

    def signal(self, signal_set_name: str) -> Outcome:
        """Trigger a registered SignalSet now (signals may be sent at
        arbitrary points during the activity's lifetime, §3.1)."""
        self._check_not_completed()
        signal_set = self.signal_set(signal_set_name)
        return self._process(signal_set)

    def _process(self, signal_set: SignalSet) -> Outcome:
        outcome = self.coordinator.process_signal_set(
            signal_set, completion_status=self._completion_status
        )
        name = signal_set.signal_set_name
        self._signal_sets.pop(name, None)
        self._used_signal_sets.append(signal_set)
        if self._completion_signal_set == name:
            self._completion_signal_set = None
        return outcome

    # -- actions ----------------------------------------------------------------------

    def add_action(
        self,
        signal_set_name: str,
        action: ActionLike,
        factory_name: Optional[str] = None,
        factory_config: Optional[Dict[str, Any]] = None,
    ) -> ActionRecord:
        """Register ``action`` with this activity's coordinator for the
        named SignalSet (local object or remote ObjectRef)."""
        self._check_not_completed()
        return self.coordinator.add_action(
            signal_set_name,
            action,
            factory_name=factory_name,
            factory_config=factory_config,
        )

    def enlist(self, signal_set_name: str, action: ActionLike) -> str:
        """Remote-friendly :meth:`add_action`: returns the action id only
        (an ActionRecord holds live objects and cannot cross the wire)."""
        return self.add_action(signal_set_name, action).action_id

    def remove_action(self, record: ActionRecord) -> None:
        self.coordinator.remove_action(record)

    # -- property groups ------------------------------------------------------------------

    def attach_property_group(self, group: PropertyGroup) -> None:
        self._property_groups[group.name] = group

    def get_property_group(self, name: str) -> PropertyGroup:
        try:
            return self._property_groups[name]
        except KeyError:
            raise NoSuchPropertyGroup(
                f"activity {self.activity_id} has no property group {name!r}"
            ) from None

    def property_group_names(self) -> List[str]:
        return sorted(self._property_groups)

    def property_groups(self) -> List[PropertyGroup]:
        return [self._property_groups[name] for name in sorted(self._property_groups)]

    # -- introspection (dispatchable) ----------------------------------------------------

    def get_status(self) -> ActivityStatus:
        return self.status

    def get_activity_id(self) -> str:
        return self.activity_id

    def get_activity_name(self) -> str:
        return self.name

    def get_outcome(self) -> Optional[Outcome]:
        return self.outcome

    def __repr__(self) -> str:
        return (
            f"Activity({self.activity_id}, {self.status.name}, "
            f"{self._completion_status.name})"
        )
