"""Parallel participant fan-out in 2PC (``parallel_participants`` knob)."""

import threading
import time

import pytest

from repro.exceptions import CommunicationError
from repro.ots import SimulatedCrash, TransactionFactory
from repro.ots.exceptions import HeuristicHazard, TransactionRolledBack
from repro.ots.status import Vote


class Participant:
    """Scriptable two-phase participant with call recording."""

    def __init__(self, vote=Vote.COMMIT, prepare_delay=0.0, commit_error=None):
        self.vote = vote
        self.prepare_delay = prepare_delay
        self.commit_error = commit_error
        self.calls = []
        self._lock = threading.Lock()

    def _record(self, operation):
        with self._lock:
            self.calls.append(operation)

    def prepare(self):
        if self.prepare_delay:
            time.sleep(self.prepare_delay)
        self._record("prepare")
        return self.vote

    def commit(self):
        self._record("commit")
        if self.commit_error is not None:
            raise self.commit_error

    def rollback(self):
        self._record("rollback")

    def forget(self):
        self._record("forget")


def run_commit(factory, participants):
    tx = factory.create()
    for index, participant in enumerate(participants):
        tx.register_resource(participant, recovery_key=f"r{index}")
    tx.commit()
    return tx


class TestParallelCommitPath:
    def test_knob_validation(self):
        with pytest.raises(ValueError):
            TransactionFactory(parallel_participants=0)

    def test_all_commit_matches_serial_log(self):
        outcomes = {}
        for workers in (1, 8):
            factory = TransactionFactory(parallel_participants=workers)
            participants = [Participant() for _ in range(8)]
            run_commit(factory, participants)
            assert factory.committed == 1
            for participant in participants:
                assert participant.calls == ["prepare", "commit"]
            outcomes[workers] = [
                (event.kind, event.detail.get("vote"))
                for event in factory.event_log
                if event.kind in ("tx_vote", "tx_finished")
            ]
        assert outcomes[8] == outcomes[1]

    def test_parallel_prepares_overlap(self):
        factory = TransactionFactory(parallel_participants=8)
        participants = [Participant(prepare_delay=0.05) for _ in range(8)]
        begin = time.perf_counter()
        run_commit(factory, participants)
        elapsed = time.perf_counter() - begin
        # Serial would pay 8 × 50 ms in phase one alone.
        assert elapsed < 0.3

    def test_no_vote_rolls_back_concurrently_prepared(self):
        factory = TransactionFactory(parallel_participants=8)
        participants = [
            Participant(vote=Vote.ROLLBACK if i == 3 else Vote.COMMIT)
            for i in range(8)
        ]
        tx = factory.create()
        for index, participant in enumerate(participants):
            tx.register_resource(participant, recovery_key=f"r{index}")
        with pytest.raises(TransactionRolledBack):
            tx.commit()
        assert factory.rolled_back == 1
        for participant in participants:
            if "prepare" in participant.calls and participant.vote is Vote.COMMIT:
                # Anyone who prepared successfully must be told to undo.
                assert "rollback" in participant.calls
            assert "commit" not in participant.calls

    def test_unreachable_committer_becomes_heuristic_hazard(self):
        factory = TransactionFactory(parallel_participants=4, retry_attempts=2)
        participants = [Participant() for _ in range(3)]
        participants[1].commit_error = CommunicationError("gone", transient=False)
        tx = factory.create()
        for index, participant in enumerate(participants):
            tx.register_resource(participant, recovery_key=f"r{index}")
        with pytest.raises(HeuristicHazard):
            tx.commit()
        assert factory.committed == 1  # decision stands despite the hazard
        assert participants[0].calls == ["prepare", "commit"]
        assert participants[2].calls == ["prepare", "commit"]

    def test_failpoint_fires_before_parallel_prepare(self):
        factory = TransactionFactory(parallel_participants=4)
        participants = [Participant() for _ in range(4)]
        factory.failpoints.arm("before_prepare")
        tx = factory.create()
        for participant in participants:
            tx.register_resource(participant, recovery_key="r")
        with pytest.raises(SimulatedCrash):
            tx.commit()
        for participant in participants:
            assert participant.calls == []

    def test_composes_with_group_commit_window(self):
        factory = TransactionFactory(
            parallel_participants=4, group_commit_window=0.001
        )
        errors = []

        def committer():
            try:
                run_commit(factory, [Participant() for _ in range(4)])
            except Exception as exc:  # pragma: no cover - surfaced via assert
                errors.append(exc)

        threads = [threading.Thread(target=committer) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert factory.committed == 6
        # Both knobs active: every commit logged a decision + completion.
        assert factory.wal.records_forced == 12


class TestParallelCrashFidelity:
    """Parallel phases must keep the serial crash states reachable."""

    def test_prefix_committed_crash_state_reachable(self):
        factory = TransactionFactory(parallel_participants=4)
        participants = [Participant() for _ in range(4)]
        factory.failpoints.arm("before_commit_resource_2")
        tx = factory.create()
        for index, participant in enumerate(participants):
            tx.register_resource(participant, recovery_key=f"r{index}")
        with pytest.raises(SimulatedCrash):
            tx.commit()
        # Resources before the armed index committed; the rest never did.
        assert participants[0].calls == ["prepare", "commit"]
        assert participants[1].calls == ["prepare", "commit"]
        assert participants[2].calls == ["prepare"]
        assert participants[3].calls == ["prepare"]
        # The decision was forced, so recovery can finish phase two.
        kinds = [record.kind for record in factory.wal.records()]
        assert "tx_commit_decision" in kinds
        assert "tx_completed" not in kinds


class TestSharedPoolReuse:
    def test_pool_reused_across_transactions(self):
        factory = TransactionFactory(parallel_participants=4)
        run_commit(factory, [Participant() for _ in range(4)])
        pool = factory.participant_pool()
        run_commit(factory, [Participant() for _ in range(4)])
        assert factory.participant_pool() is pool
        factory.shutdown_participant_pool()
        factory.shutdown_participant_pool()  # idempotent

    def test_nested_commit_from_participant_runs_serially(self):
        """A participant committing another transaction through the same
        factory must not deadlock on the shared pool."""
        factory = TransactionFactory(parallel_participants=2)

        class NestingParticipant(Participant):
            def prepare(self):
                inner = factory.create()
                inner.register_resource(Participant(), recovery_key="i1")
                inner.register_resource(Participant(), recovery_key="i2")
                inner.commit()
                return super().prepare()

        participants = [NestingParticipant(), NestingParticipant()]
        run_commit(factory, participants)
        assert factory.committed == 3


class TestCrashDraining:
    def test_crash_in_prepare_drains_in_flight_prepares(self):
        """A SimulatedCrash from one participant propagates only after
        in-flight sibling prepares finished — recovery must not race
        background workers still mutating stores."""
        factory = TransactionFactory(parallel_participants=4)

        class CrashingParticipant(Participant):
            def prepare(self):
                raise SimulatedCrash("participant died in prepare")

        participants = [
            Participant(prepare_delay=0.05),
            CrashingParticipant(),
            Participant(prepare_delay=0.05),
            Participant(prepare_delay=0.05),
        ]
        tx = factory.create()
        for index, participant in enumerate(participants):
            tx.register_resource(participant, recovery_key=f"r{index}")
        with pytest.raises(SimulatedCrash):
            tx.commit()
        # Every sibling prepare that was dispatched has fully completed.
        for participant in (participants[0], participants[2], participants[3]):
            assert participant.calls == ["prepare"]


class TestBuggyParticipants:
    def test_prepare_returning_none_fails_loudly(self):
        """A prepare() that returns nothing must fail like the serial
        sweep does — never be mistaken for 'not asked' and committed."""

        class ForgetfulParticipant(Participant):
            def prepare(self):
                self._record("prepare")
                return None  # bug: no vote

        for workers in (1, 4):
            factory = TransactionFactory(parallel_participants=workers)
            tx = factory.create()
            tx.register_resource(Participant(), recovery_key="r0")
            tx.register_resource(ForgetfulParticipant(), recovery_key="r1")
            tx.register_resource(Participant(), recovery_key="r2")
            with pytest.raises(AttributeError):
                tx.commit()
            assert factory.committed == 0
