"""Figure 15 (extension) — parallel signal broadcast vs participant count.

Not a figure from the paper: §3.2.2 says the coordinator "transmits the
signal to all registered Actions" but the reference flow is serial, so a
2PC round over N participants pays N × hop-latency per signal.  This
bench injects deterministic per-hop latency through a
:class:`~repro.orb.transport.FaultPlan` (each participant sits behind its
own :class:`~repro.orb.transport.Transport`, request + reply hop) and
measures the wall-clock cost of driving a full two-phase commit
SignalSet with the serial executor vs the thread-pool executor
(:class:`~repro.core.broadcast.ThreadPoolBroadcastExecutor`).

Expected shape: serial latency grows linearly with the participant
count; the pool executor stays near-flat (one hop per signal round), and
both produce identical SignalSet outcomes and identical logical event
traces — determinism is asserted, not assumed.

Quick mode (``BENCH_QUICK=1``) shrinks the sweep for CI smoke runs.
"""

import os
import time

import pytest

from repro.core import (
    ActivityCoordinator,
    SerialBroadcastExecutor,
    ThreadPoolBroadcastExecutor,
)
from repro.models.twopc import TwoPhaseCommitSignalSet, TwoPhaseParticipant
from repro.orb.transport import FaultPlan, SimulatedTransport
from repro.util.clock import WallClock

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")
PARTICIPANTS = [2, 16] if QUICK else [1, 2, 4, 8, 16]
HOP_LATENCY = 0.010  # seconds, per network hop (request and reply)
POOL_WORKERS = 16


class RemoteParticipant:
    """A 2PC participant reached over its own latency-injected transport."""

    def __init__(self, name: str, fault_plan: FaultPlan) -> None:
        self.name = name
        self.inner = TwoPhaseParticipant(name)
        self.transport = SimulatedTransport(WallClock(), fault_plan=fault_plan)

    def process_signal(self, signal):
        reply = {}

        def dispatch(payload: bytes) -> bytes:
            reply["outcome"] = self.inner.process_signal(signal)
            return b"ok"

        self.transport.deliver("coordinator", self.name, b"signal", dispatch)
        return reply["outcome"]


def protocol_trace(coordinator):
    return [
        (event.kind, event.detail.get("signal"), event.detail.get("action"),
         event.detail.get("outcome"))
        for event in coordinator.event_log
        if event.kind in ("get_signal", "transmit", "set_response", "get_outcome")
    ]


def run_twopc(executor, participant_count):
    """Drive one full 2PC over latency-injected participants; return
    (elapsed_seconds, outcome, logical trace)."""
    plan = FaultPlan(latency=HOP_LATENCY)
    coordinator = ActivityCoordinator("fig15", executor=executor)
    for index in range(participant_count):
        coordinator.add_action(
            "repro.2pc", RemoteParticipant(f"p{index}", plan)
        )
    begin = time.perf_counter()
    outcome = coordinator.process_signal_set(TwoPhaseCommitSignalSet())
    elapsed = time.perf_counter() - begin
    return elapsed, outcome, protocol_trace(coordinator)


class TestFig15ParallelBroadcast:
    @pytest.mark.parametrize("mode", ["serial", "pool"])
    def test_bench_twopc_broadcast_16_participants(self, benchmark, mode):
        def run():
            if mode == "serial":
                return run_twopc(SerialBroadcastExecutor(), 16)
            with ThreadPoolBroadcastExecutor(max_workers=POOL_WORKERS) as executor:
                return run_twopc(executor, 16)

        _, outcome, _ = benchmark.pedantic(run, rounds=1 if QUICK else 3, iterations=1)
        assert outcome.name == "committed"

    def test_latency_scaling_series(self, emit):
        rows = []
        for count in PARTICIPANTS:
            serial_elapsed, serial_outcome, serial_trace = run_twopc(
                SerialBroadcastExecutor(), count
            )
            with ThreadPoolBroadcastExecutor(max_workers=POOL_WORKERS) as executor:
                pool_elapsed, pool_outcome, pool_trace = run_twopc(executor, count)
            # Determinism: identical outcomes, identical logical traces.
            assert pool_outcome == serial_outcome
            assert pool_outcome.name == "committed"
            assert pool_trace == serial_trace
            rows.append((count, serial_elapsed, pool_elapsed))

        emit(
            "fig15",
            ["fig 15 — 2PC broadcast latency vs participants "
             f"({HOP_LATENCY * 1000:.0f} ms/hop injected):",
             "  participants  serial_ms  pool_ms  speedup"]
            + [
                f"  {count:12d}  {serial * 1000:9.1f}  {pool * 1000:7.1f}"
                f"  {serial / pool:7.2f}x"
                for count, serial, pool in rows
            ],
            data={
                "max_participants": rows[-1][0],
                "serial_latency_s": rows[-1][1],
                "pool_latency_s": rows[-1][2],
                "pool_speedup": rows[-1][1] / rows[-1][2],
            },
        )

        # Acceptance: ≥ 4x latency reduction at 16 registered actions.
        count, serial_elapsed, pool_elapsed = rows[-1]
        assert count == 16
        assert serial_elapsed / pool_elapsed >= 4.0

    def test_no_vote_pivot_identical_under_parallelism(self):
        """The fault path parallelism stresses hardest: a no-vote pivots
        prepare → rollback identically under both executors."""

        def run(executor):
            plan = FaultPlan(latency=0.001)
            coordinator = ActivityCoordinator("fig15-pivot", executor=executor)
            participants = []
            for index in range(8):
                participant = RemoteParticipant(f"p{index}", plan)
                if index == 5:
                    participant.inner._on_prepare = lambda: False
                participants.append(participant)
                coordinator.add_action("repro.2pc", participant)
            outcome = coordinator.process_signal_set(TwoPhaseCommitSignalSet())
            return outcome, protocol_trace(coordinator)

        serial_outcome, serial_trace = run(SerialBroadcastExecutor())
        with ThreadPoolBroadcastExecutor(max_workers=POOL_WORKERS) as executor:
            pool_outcome, pool_trace = run(executor)
        assert serial_outcome == pool_outcome
        assert pool_outcome.name == "rolled_back"
        serial_responses = [e for e in serial_trace if e[0] == "set_response"]
        pool_responses = [e for e in pool_trace if e[0] == "set_response"]
        assert pool_responses == serial_responses
