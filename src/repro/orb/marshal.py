"""CDR-style marshalling.

CORBA's GIOP encodes request arguments in the Common Data Representation.
We reproduce the *semantics* that matter to the Activity Service:

- arguments and results cross node boundaries **by value** — mutating a
  received structure never mutates the sender's copy;
- object references cross **by reference** — an :class:`ObjectRef` is
  re-bound to the receiving node's ORB on arrival;
- application types (Signals, Outcomes, contexts…) must be explicitly
  registered, mirroring IDL-declared value types.

The encoding itself is a compact tagged binary format so transports can
account for message sizes realistically.
"""

from __future__ import annotations

import struct
from dataclasses import fields, is_dataclass
from enum import Enum
from typing import Any, Callable, Dict, Optional, Tuple, Type

from repro.exceptions import ReproError


class MarshalError(ReproError):
    """A value could not be encoded or decoded."""


# One-byte type tags.
_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_LIST = b"L"
_TAG_TUPLE = b"U"
_TAG_DICT = b"M"
_TAG_SET = b"E"
_TAG_OBJREF = b"O"
_TAG_VALUE = b"V"
_TAG_ENUM = b"G"


class ValueTypeRegistry:
    """Registry of application value types allowed on the wire.

    A value type is registered under its *repository id* (we use the
    qualified class name).  Dataclasses get automatic field-based
    encoders; other classes must provide ``to_parts``/``from_parts``.
    """

    def __init__(self) -> None:
        self._by_name: Dict[str, Tuple[Type, Callable, Callable]] = {}
        self._by_type: Dict[Type, str] = {}
        self._enums: Dict[str, Type[Enum]] = {}

    @staticmethod
    def repository_id(cls: Type) -> str:
        return f"{cls.__module__}.{cls.__qualname__}"

    def register_dataclass(self, cls: Type) -> Type:
        """Register a dataclass; usable as a decorator."""
        if not is_dataclass(cls):
            raise MarshalError(f"{cls!r} is not a dataclass")
        name = self.repository_id(cls)

        def to_parts(value: Any) -> Dict[str, Any]:
            return {f.name: getattr(value, f.name) for f in fields(cls)}

        def from_parts(parts: Dict[str, Any]) -> Any:
            return cls(**parts)

        self._by_name[name] = (cls, to_parts, from_parts)
        self._by_type[cls] = name
        return cls

    def register_custom(
        self,
        cls: Type,
        to_parts: Callable[[Any], Dict[str, Any]],
        from_parts: Callable[[Dict[str, Any]], Any],
    ) -> None:
        name = self.repository_id(cls)
        self._by_name[name] = (cls, to_parts, from_parts)
        self._by_type[cls] = name

    def register_enum(self, cls: Type[Enum]) -> Type[Enum]:
        self._enums[self.repository_id(cls)] = cls
        return cls

    def lookup_type(self, cls: Type) -> Optional[str]:
        return self._by_type.get(cls)

    def lookup_name(self, name: str) -> Tuple[Type, Callable, Callable]:
        try:
            return self._by_name[name]
        except KeyError:
            raise MarshalError(f"unregistered value type: {name}") from None

    def lookup_enum(self, name: str) -> Type[Enum]:
        try:
            return self._enums[name]
        except KeyError:
            raise MarshalError(f"unregistered enum type: {name}") from None

    def is_enum_registered(self, cls: Type) -> bool:
        return self.repository_id(cls) in self._enums


GLOBAL_REGISTRY = ValueTypeRegistry()


class Marshaller:
    """Encodes/decodes values to bytes using a :class:`ValueTypeRegistry`."""

    def __init__(self, registry: Optional[ValueTypeRegistry] = None) -> None:
        self.registry = registry if registry is not None else GLOBAL_REGISTRY

    # -- encoding ---------------------------------------------------------

    def encode(self, value: Any) -> bytes:
        chunks: list[bytes] = []
        self._encode(value, chunks)
        return b"".join(chunks)

    def _encode(self, value: Any, out: list) -> None:
        # Order matters: bool is a subclass of int.
        if value is None:
            out.append(_TAG_NONE)
        elif value is True:
            out.append(_TAG_TRUE)
        elif value is False:
            out.append(_TAG_FALSE)
        elif isinstance(value, int):
            out.append(_TAG_INT)
            try:
                out.append(struct.pack("<q", value))
            except struct.error:
                raise MarshalError(
                    f"integer {value} exceeds the wire format's 64-bit range"
                ) from None
        elif isinstance(value, float):
            out.append(_TAG_FLOAT)
            out.append(struct.pack("<d", value))
        elif isinstance(value, str):
            raw = value.encode("utf-8")
            out.append(_TAG_STR)
            out.append(struct.pack("<I", len(raw)))
            out.append(raw)
        elif isinstance(value, bytes):
            out.append(_TAG_BYTES)
            out.append(struct.pack("<I", len(value)))
            out.append(value)
        elif isinstance(value, list):
            out.append(_TAG_LIST)
            out.append(struct.pack("<I", len(value)))
            for item in value:
                self._encode(item, out)
        elif isinstance(value, tuple):
            out.append(_TAG_TUPLE)
            out.append(struct.pack("<I", len(value)))
            for item in value:
                self._encode(item, out)
        elif isinstance(value, (set, frozenset)):
            out.append(_TAG_SET)
            items = sorted(value, key=repr)
            out.append(struct.pack("<I", len(items)))
            for item in items:
                self._encode(item, out)
        elif isinstance(value, dict):
            out.append(_TAG_DICT)
            out.append(struct.pack("<I", len(value)))
            for key, item in value.items():
                self._encode(key, out)
                self._encode(item, out)
        elif isinstance(value, Enum) and self.registry.is_enum_registered(type(value)):
            out.append(_TAG_ENUM)
            self._encode_str(self.registry.repository_id(type(value)), out)
            self._encode_str(value.name, out)
        elif self._is_objref(value):
            out.append(_TAG_OBJREF)
            self._encode_str(value.node_id, out)
            self._encode_str(value.object_id, out)
            self._encode_str(value.interface, out)
        else:
            name = self.registry.lookup_type(type(value))
            if name is None:
                raise MarshalError(
                    f"cannot marshal value of unregistered type {type(value).__qualname__}"
                )
            _, to_parts, _ = self.registry.lookup_name(name)
            out.append(_TAG_VALUE)
            self._encode_str(name, out)
            self._encode(to_parts(value), out)

    def _encode_str(self, value: str, out: list) -> None:
        raw = value.encode("utf-8")
        out.append(struct.pack("<I", len(raw)))
        out.append(raw)

    @staticmethod
    def _is_objref(value: Any) -> bool:
        from repro.orb.reference import ObjectRef

        return isinstance(value, ObjectRef)

    # -- decoding ---------------------------------------------------------

    def decode(self, data: bytes, orb: Optional[Any] = None) -> Any:
        try:
            value, offset = self._decode(data, 0, orb)
        except (struct.error, IndexError, UnicodeDecodeError) as exc:
            raise MarshalError(f"malformed message: {exc}") from exc
        if offset != len(data):
            raise MarshalError(f"{len(data) - offset} trailing bytes after decode")
        return value

    def _decode(self, data: bytes, offset: int, orb: Optional[Any]) -> Tuple[Any, int]:
        if offset >= len(data):
            raise MarshalError("truncated message")
        tag = data[offset : offset + 1]
        offset += 1
        if tag == _TAG_NONE:
            return None, offset
        if tag == _TAG_TRUE:
            return True, offset
        if tag == _TAG_FALSE:
            return False, offset
        if tag == _TAG_INT:
            (value,) = struct.unpack_from("<q", data, offset)
            return value, offset + 8
        if tag == _TAG_FLOAT:
            (value,) = struct.unpack_from("<d", data, offset)
            return value, offset + 8
        if tag == _TAG_STR:
            text, offset = self._decode_str(data, offset)
            return text, offset
        if tag == _TAG_BYTES:
            (length,) = struct.unpack_from("<I", data, offset)
            offset += 4
            return data[offset : offset + length], offset + length
        if tag in (_TAG_LIST, _TAG_TUPLE, _TAG_SET):
            (length,) = struct.unpack_from("<I", data, offset)
            offset += 4
            items = []
            for _ in range(length):
                item, offset = self._decode(data, offset, orb)
                items.append(item)
            if tag == _TAG_LIST:
                return items, offset
            if tag == _TAG_TUPLE:
                return tuple(items), offset
            return set(items), offset
        if tag == _TAG_DICT:
            (length,) = struct.unpack_from("<I", data, offset)
            offset += 4
            result = {}
            for _ in range(length):
                key, offset = self._decode(data, offset, orb)
                value, offset = self._decode(data, offset, orb)
                result[key] = value
            return result, offset
        if tag == _TAG_ENUM:
            name, offset = self._decode_str(data, offset)
            member, offset = self._decode_str(data, offset)
            enum_cls = self.registry.lookup_enum(name)
            return enum_cls[member], offset
        if tag == _TAG_OBJREF:
            from repro.orb.reference import ObjectRef

            node_id, offset = self._decode_str(data, offset)
            object_id, offset = self._decode_str(data, offset)
            interface, offset = self._decode_str(data, offset)
            ref = ObjectRef(node_id=node_id, object_id=object_id, interface=interface)
            if orb is not None:
                ref.bind(orb)
            return ref, offset
        if tag == _TAG_VALUE:
            name, offset = self._decode_str(data, offset)
            parts, offset = self._decode(data, offset, orb)
            _, __, from_parts = self.registry.lookup_name(name)
            return from_parts(parts), offset
        raise MarshalError(f"unknown tag {tag!r} at offset {offset - 1}")

    def _decode_str(self, data: bytes, offset: int) -> Tuple[str, int]:
        (length,) = struct.unpack_from("<I", data, offset)
        offset += 4
        return data[offset : offset + length].decode("utf-8"), offset + length


def marshal_roundtrip(value: Any, orb: Optional[Any] = None, registry: Optional[ValueTypeRegistry] = None) -> Any:
    """Encode then decode ``value`` — the by-value copy a remote peer sees."""
    marshaller = Marshaller(registry)
    return marshaller.decode(marshaller.encode(value), orb)
