"""The simulated ORB: nodes, servants, and the invocation path.

An :class:`Orb` owns a set of :class:`Node` instances (simulated hosts), a
:class:`~repro.orb.transport.Transport`, a marshaller and an interceptor
chain.  Every invocation on an :class:`ObjectRef` — even one whose caller
and servant share a node — goes through the full path:

    client interceptors → marshal → transport (faults/latency) →
    unmarshal → server interceptors → servant → (reply path mirrored)

so that context propagation and by-value semantics are always exercised,
exactly as they would be over IIOP.

Nodes can *crash*: a crashed node refuses dispatches with
``CommunicationError`` and loses every volatile servant.  ``restart``
brings the node back and runs registered recovery hooks, which is how the
OTS recovery manager and the activity-structure recovery (§3.4 of the
paper) re-install their durable objects.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.exceptions import (
    AdmissionRejected,
    CommunicationError,
    ConfigurationError,
    InvalidStateError,
    ObjectNotExist,
    OverloadError,
    ReproError,
    TimeoutError_,
)
from repro.orb.current import InvocationCurrent
from repro.orb.dispatch import DispatchLoop, build_dispatch_loop
from repro.orb.interceptors import InterceptorChain, RequestInfo
from repro.orb.marshal import (
    DecodeCache,
    EncodeCache,
    MarshalError,
    Marshaller,
    PayloadSlot,
    PayloadTemplate,
    ValueTypeRegistry,
)
from repro.config import OrbConfig
from repro.orb.reference import ObjectRef
from repro.orb.transport import FaultPlan, SimulatedTransport, Transport
from repro.util.clock import Clock, SimulatedClock
from repro.util.events import EventLog
from repro.util.idgen import IdGenerator
from repro.util.rng import SeededRng


class RemoteApplicationError(ReproError):
    """Raised client-side when a servant raised an unregistered exception."""

    def __init__(self, type_name: str, message: str) -> None:
        super().__init__(f"{type_name}: {message}")
        self.type_name = type_name
        self.message = message


class Servant:
    """Optional base class for objects activated on a node.

    Any object can be a servant; only public methods (no leading
    underscore) are dispatchable.  Subclassing :class:`Servant` gives the
    object access to the node it is activated on via ``self._node``.
    """

    _node: Optional["Node"] = None

    def _activated(self, node: "Node") -> None:
        self._node = node


class Node:
    """A simulated host: an object adapter plus crash/restart behaviour."""

    def __init__(self, orb: "Orb", node_id: str) -> None:
        self.orb = orb
        self.node_id = node_id
        self.crashed = False
        self._servants: Dict[str, Any] = {}
        self._volatile: Dict[str, bool] = {}
        self._interfaces: Dict[str, str] = {}
        self._recovery_hooks: List[Callable[["Node"], None]] = []

    # -- object adapter -----------------------------------------------------

    def activate(
        self,
        servant: Any,
        object_id: Optional[str] = None,
        interface: Optional[str] = None,
        durable: bool = False,
    ) -> ObjectRef:
        """Register ``servant`` and return an invocable reference.

        Volatile servants (the default) are lost on crash; durable servants
        survive (modelling a servant whose state lives in stable storage
        and whose activation record is persistent).
        """
        if object_id is None:
            object_id = self.orb.ids.next(f"{self.node_id}-obj")
        if object_id in self._servants:
            raise ConfigurationError(
                f"object id {object_id!r} already active on node {self.node_id}"
            )
        if interface is None:
            interface = type(servant).__name__
        self._servants[object_id] = servant
        self._volatile[object_id] = not durable
        self._interfaces[object_id] = interface
        if isinstance(servant, Servant):
            servant._activated(self)
        return ObjectRef(self.node_id, object_id, interface).bind(self.orb)

    def deactivate(self, object_id: str) -> None:
        if object_id not in self._servants:
            raise ObjectNotExist(f"no object {object_id!r} on node {self.node_id}")
        del self._servants[object_id]
        del self._volatile[object_id]
        del self._interfaces[object_id]

    def servant(self, object_id: str) -> Any:
        try:
            return self._servants[object_id]
        except KeyError:
            raise ObjectNotExist(
                f"no object {object_id!r} on node {self.node_id}"
            ) from None

    def has_object(self, object_id: str) -> bool:
        return object_id in self._servants

    def object_ids(self) -> Tuple[str, ...]:
        return tuple(self._servants)

    def ref_for(self, object_id: str) -> ObjectRef:
        if object_id not in self._servants:
            raise ObjectNotExist(f"no object {object_id!r} on node {self.node_id}")
        return ObjectRef(
            self.node_id, object_id, self._interfaces[object_id]
        ).bind(self.orb)

    # -- failure behaviour ---------------------------------------------------

    def add_recovery_hook(self, hook: Callable[["Node"], None]) -> None:
        """Register a callback run on :meth:`restart` (in order added)."""
        self._recovery_hooks.append(hook)

    def crash(self) -> None:
        """Fail-stop: lose volatile servants and refuse all requests."""
        self.crashed = True
        for object_id in [oid for oid, vol in self._volatile.items() if vol]:
            del self._servants[object_id]
            del self._volatile[object_id]
            del self._interfaces[object_id]

    def restart(self) -> None:
        """Come back up and run recovery hooks."""
        if not self.crashed:
            raise InvalidStateError(f"node {self.node_id} is not crashed")
        self.crashed = False
        for hook in self._recovery_hooks:
            hook(self)

    def __repr__(self) -> str:
        state = "crashed" if self.crashed else "up"
        return f"Node({self.node_id}, {state}, {len(self._servants)} objects)"


class PreparedInvocation:
    """One operation's request payload, marshalled once for many targets.

    Built by :meth:`Orb.prepare_invocation`; the target object id and
    the service contexts are always per-send holes, and the caller may
    plant further :class:`~repro.orb.marshal.PayloadSlot` markers inside
    ``args``/``kwargs`` (e.g. a signal's ``delivery_id``) whose values
    are supplied per invocation.  Filling produces bytes byte-identical
    to the plain ``invoke`` encoding of the same request.
    """

    SLOT_OBJECT_ID = "__object_id__"
    SLOT_CONTEXTS = "__contexts__"

    def __init__(
        self, orb: "Orb", operation: str, args: tuple, kwargs: dict
    ) -> None:
        self.orb = orb
        self.operation = operation
        self.template: PayloadTemplate = orb.marshaller.prepare(
            [
                PayloadSlot(self.SLOT_OBJECT_ID),
                operation,
                list(args),
                kwargs,
                PayloadSlot(self.SLOT_CONTEXTS),
            ]
        )

    def fill(self, object_id: str, contexts: dict, slots: Optional[dict]) -> bytes:
        values = dict(slots) if slots else {}
        values[self.SLOT_OBJECT_ID] = object_id
        values[self.SLOT_CONTEXTS] = contexts
        return self.template.fill(**values)


class Orb:
    """The distribution substrate shared by a simulated deployment.

    Tuning values live in :class:`~repro.config.OrbConfig` (see its
    docstring for defaults); ``marshal_cache_entries=``/``domain_id=``
    keywords remain as a deprecated shim.  ``transport=`` injects a
    custom :class:`~repro.orb.transport.Transport` (e.g. a
    ``SocketTransport`` serving this ORB's nodes to other processes);
    by default the ORB builds an in-process
    :class:`~repro.orb.transport.SimulatedTransport` governed by
    ``fault_plan``.
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        rng: Optional[SeededRng] = None,
        registry: Optional[ValueTypeRegistry] = None,
        fault_plan: Optional[FaultPlan] = None,
        event_log: Optional[EventLog] = None,
        config: Optional[OrbConfig] = None,
        transport: Optional[Transport] = None,
        dispatch_loop: Optional[DispatchLoop] = None,
        **legacy: Any,
    ) -> None:
        self.config = OrbConfig.resolve(config, legacy, "Orb")
        # Federation: the coordination domain this ORB belongs to and the
        # bridge that routes to foreign domains (both set by
        # InterOrbBridge.connect or a site runtime; a standalone ORB has
        # neither).
        self.domain_id = self.config.domain_id
        self.federation: Optional[Any] = None
        self.clock = clock if clock is not None else SimulatedClock()
        self.rng = rng if rng is not None else SeededRng(0)
        self.ids = IdGenerator()
        if transport is not None:
            if fault_plan is not None:
                raise ConfigurationError(
                    "fault_plan= only applies to the default SimulatedTransport; "
                    "configure an injected transport directly"
                )
            self.transport = transport
        else:
            self.transport = SimulatedTransport(
                self.clock, self.rng.fork("transport"), fault_plan
            )
        marshal_cache_entries = self.config.marshal_cache_entries
        self.marshaller = Marshaller(
            registry,
            stats=self.transport.stats.marshal,
            encode_cache=(
                EncodeCache(marshal_cache_entries)
                if marshal_cache_entries > 0
                else None
            ),
            codec=self.config.codec,
            decode_cache=(
                DecodeCache(marshal_cache_entries)
                if marshal_cache_entries > 0
                else None
            ),
        )
        # Delivery scheduling seam (PR 7).  None means inline — invoke
        # calls the transport directly, so the default path pays nothing.
        self.dispatch_loop = (
            dispatch_loop
            if dispatch_loop is not None
            else build_dispatch_loop(self.config.dispatch_loop)
        )
        self.interceptors = InterceptorChain()
        self.current = InvocationCurrent()
        self.event_log = event_log if event_log is not None else EventLog(self.clock)
        self._nodes: Dict[str, Node] = {}
        self._exception_types: Dict[str, Type[BaseException]] = {}
        self._initial_references: Dict[str, ObjectRef] = {}
        self.register_exception(CommunicationError)
        self.register_exception(ObjectNotExist)
        self.register_exception(InvalidStateError)
        self.register_exception(ConfigurationError)
        self.register_exception(TimeoutError_)
        self.register_exception(OverloadError)
        self.register_exception(AdmissionRejected)
        self.register_exception(MarshalError)

    # -- nodes ----------------------------------------------------------------

    def create_node(self, node_id: str) -> Node:
        if node_id in self._nodes:
            raise ConfigurationError(f"node {node_id!r} already exists")
        if self.federation is not None:
            # Cross-domain routing keys on the node id alone (an
            # ObjectRef carries no domain id), so ids must be unique
            # across the whole federation, not just this ORB.
            owner = self.federation.domain_of_node(node_id)
            if owner is not None and owner != self.domain_id:
                raise ConfigurationError(
                    f"node {node_id!r} already exists in federated domain {owner!r}"
                )
        node = Node(self, node_id)
        self._nodes[node_id] = node
        return node

    def node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ConfigurationError(f"unknown node {node_id!r}") from None

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def nodes(self) -> Tuple[Node, ...]:
        return tuple(self._nodes.values())

    # -- exception registry -----------------------------------------------------

    def register_exception(self, exc_type: Type[BaseException]) -> None:
        """Allow ``exc_type`` to cross the wire as a typed exception."""
        name = ValueTypeRegistry.repository_id(exc_type)
        self._exception_types[name] = exc_type

    # -- initial references -------------------------------------------------------

    def register_initial_reference(self, name: str, ref: ObjectRef) -> None:
        self._initial_references[name] = ref

    def resolve_initial_references(self, name: str) -> ObjectRef:
        try:
            return self._initial_references[name]
        except KeyError:
            raise ConfigurationError(f"no initial reference {name!r}") from None

    # -- payload interning ---------------------------------------------------------

    def intern_payload(self, value: Any) -> Any:
        """Opt a large immutable application payload into encode-once
        byte reuse (see :meth:`~repro.orb.marshal.Marshaller.intern_payload`
        for the invalidation contract); returns ``value`` for chaining."""
        return self.marshaller.intern_payload(value)

    def release_payload(self, value: Any) -> bool:
        """Withdraw an interned payload and invalidate its cached bytes."""
        return self.marshaller.release_payload(value)

    # -- invocation --------------------------------------------------------------

    def prepare_invocation(
        self, operation: str, args: tuple = (), kwargs: Optional[dict] = None
    ) -> PreparedInvocation:
        """Marshal-once: pre-encode one operation's request for N targets.

        The returned :class:`PreparedInvocation` is handed back to
        :meth:`invoke` via ``prepared=``; only the target object id, the
        service contexts and any caller-declared slots are encoded per
        send.  ``args`` may contain :class:`PayloadSlot` markers.
        """
        if operation.startswith("_"):
            raise ConfigurationError(f"operation {operation!r} is not dispatchable")
        return PreparedInvocation(self, operation, args, kwargs or {})

    def invoke(
        self,
        ref: ObjectRef,
        operation: str,
        args: tuple,
        kwargs: dict,
        prepared: Optional[PreparedInvocation] = None,
        slots: Optional[dict] = None,
    ) -> Any:
        """The full client-side invocation path for one request.

        With ``prepared`` (a template from :meth:`prepare_invocation`
        for the same operation), the request bytes come from patching
        the per-send fields into the pre-encoded body instead of
        re-marshalling the tree; ``args``/``kwargs`` are then already
        baked into the template and ``slots`` supplies the per-send
        hole values.  The wire bytes are identical either way.
        """
        if operation.startswith("_"):
            raise ConfigurationError(f"operation {operation!r} is not dispatchable")
        source_node = self.current.get_slot("node", "client")
        info = RequestInfo(
            operation=operation,
            target_node=ref.node_id,
            target_object=ref.object_id,
            interface=ref.interface,
        )
        self.interceptors.run_send_request(info)
        if prepared is not None:
            request_bytes = prepared.fill(
                ref.object_id, info.service_contexts, slots
            )
        else:
            request_bytes = self.marshaller.encode(
                [ref.object_id, operation, list(args), kwargs, info.service_contexts]
            )
        try:
            # Federation check first: the common (non-federated) case
            # pays a single None test, not a dict probe per send.
            if self.federation is not None and ref.node_id not in self._nodes:
                # Foreign domain: the bridge carries the bytes across the
                # inter-domain link (and both sides' transports).
                reply_bytes = self.federation.route(
                    self, source_node, ref, request_bytes
                )
            elif self.dispatch_loop is None:
                reply_bytes = self.transport.deliver(
                    source_node,
                    ref.node_id,
                    request_bytes,
                    lambda payload: self._dispatch(ref.node_id, payload),
                )
            else:
                reply_bytes = self.dispatch_loop.dispatch(
                    lambda: self.transport.deliver(
                        source_node,
                        ref.node_id,
                        request_bytes,
                        lambda payload: self._dispatch(ref.node_id, payload),
                    )
                )
        except CommunicationError as exc:
            info.exception = exc
            self.interceptors.run_receive_exception(info)
            raise
        status, payload, reply_contexts = self.marshaller.decode(reply_bytes, self)
        info.reply_contexts = reply_contexts
        if status == "exc":
            exc = self._revive_exception(payload)
            info.exception = exc
            self.interceptors.run_receive_exception(info)
            raise exc
        self.interceptors.run_receive_reply(info)
        return payload

    def dispatch_request(self, node_id: str, request_bytes: bytes) -> bytes:
        """Server-side entry point for transports delivering from outside
        this process (the site daemon hands arriving socket frames here);
        in-process transports reach :meth:`_dispatch` through the closure
        ``invoke`` passes to ``deliver``."""
        return self._dispatch(node_id, request_bytes)

    def _dispatch(self, node_id: str, request_bytes: bytes) -> bytes:
        """Server-side: decode, intercept, run the servant, encode reply."""
        node = self.node(node_id)
        if node.crashed:
            raise CommunicationError(f"node {node_id} is down")
        object_id, operation, args, kwargs, contexts = self.marshaller.decode(
            request_bytes, self
        )
        servant = node.servant(object_id)
        method = getattr(servant, operation, None)
        if method is None or operation.startswith("_") or not callable(method):
            raise ObjectNotExist(
                f"object {object_id!r} has no operation {operation!r}"
            )
        info = RequestInfo(
            operation=operation,
            target_node=node_id,
            target_object=object_id,
            interface=ref_interface(node, object_id),
            service_contexts=contexts,
        )
        with self.current.frame({"node": node_id}):
            self.interceptors.run_receive_request(info)
            try:
                result = method(*args, **kwargs)
            except BaseException as exc:  # marshalled back to the caller
                info.exception = exc
                self.interceptors.run_send_exception(info)
                return self.marshaller.encode(
                    ["exc", self._describe_exception(exc), info.reply_contexts]
                )
            self.interceptors.run_send_reply(info)
            return self.marshaller.encode(["ok", result, info.reply_contexts])

    # -- exception shipping ----------------------------------------------------

    def _describe_exception(self, exc: BaseException) -> list:
        name = ValueTypeRegistry.repository_id(type(exc))
        if name in self._exception_types:
            try:
                encoded_args = self.marshaller.encode(list(exc.args))
                self.marshaller.decode(encoded_args, self)
                return [name, list(exc.args)]
            except MarshalError:
                pass
        return ["", [type(exc).__name__, str(exc)]]

    def _revive_exception(self, payload: list) -> BaseException:
        name, args = payload
        if name and name in self._exception_types:
            exc_type = self._exception_types[name]
            try:
                return exc_type(*args)
            except TypeError:
                return exc_type(*[str(a) for a in args])
        type_name, message = args
        return RemoteApplicationError(type_name, message)


def ref_interface(node: Node, object_id: str) -> str:
    return node._interfaces.get(object_id, "")
