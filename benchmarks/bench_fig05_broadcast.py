"""Figure 5 — the coordinator signalling registered actions.

Regenerated artefact: the fig. 5 interaction (get signal → transmit to
each action → responses collated into the set), plus broadcast cost as
the number of registered actions grows, locally and across the simulated
wire.  Shape: cost grows linearly in the action count; remote actions pay
the marshalling/transport overhead per transmission.
"""

import pytest

from repro.core import (
    ActivityCoordinator,
    ActivityManager,
    BroadcastSignalSet,
    RecordingAction,
)
from repro.orb import Orb

ACTION_COUNTS = [1, 4, 16, 64]


class TestFig5:
    def test_interaction_regenerated(self, benchmark, emit):
        def scenario_run():
            coordinator = ActivityCoordinator("fig5")
            for index in range(4):
                coordinator.add_action("set", RecordingAction(f"action-{index}"))
            coordinator.process_signal_set(
                BroadcastSignalSet("signal", signal_set_name="set")
            )
            return coordinator

        coordinator = benchmark.pedantic(scenario_run, rounds=1, iterations=1)
        kinds = [
            event.kind
            for event in coordinator.event_log
            if event.kind in ("get_signal", "transmit", "set_response", "get_outcome")
        ]
        assert kinds == (
            ["get_signal"] + ["transmit", "set_response"] * 4 + ["get_outcome"]
        )
        emit(
            "fig05",
            ["fig 5 — coordinator/action interaction:"]
            + [f"  {event.brief()}" for event in coordinator.event_log
               if event.kind in ("get_signal", "transmit", "set_response", "get_outcome")],
            data={
                "protocol_steps": len(kinds),
                "transmissions": kinds.count("transmit"),
            },
        )

    @pytest.mark.parametrize("actions", ACTION_COUNTS)
    def test_bench_local_broadcast(self, benchmark, actions):
        coordinator = ActivityCoordinator("bench")
        for index in range(actions):
            coordinator.add_action("set", RecordingAction(f"a{index}"))

        def run():
            coordinator.process_signal_set(
                BroadcastSignalSet("tick", signal_set_name="set")
            )

        benchmark(run)

    @pytest.mark.parametrize("actions", [1, 4, 16])
    def test_bench_remote_broadcast(self, benchmark, actions):
        orb = Orb()
        manager = ActivityManager(clock=orb.clock)
        manager.install(orb)
        activity = manager.begin("remote-bench")
        for index in range(actions):
            node = orb.create_node(f"n{index}")
            ref = node.activate(RecordingAction(f"a{index}"), interface="Action")
            activity.add_action("set", ref)

        def run():
            activity.register_signal_set(
                BroadcastSignalSet("tick", signal_set_name="set")
            )
            activity.signal("set")

        benchmark(run)
