"""Write-ahead log: segmented layout plus group commit.

The OTS coordinator logs its commit decision here before telling resources
to commit (presumed-abort protocol), and the activity recovery manager
logs activity-structure checkpoints.  Records are applied to an underlying
:class:`~repro.persistence.object_store.ObjectStore` so they share the
library's stable-storage model.

Records are append-only with monotonically increasing LSNs.  A log can be
reopened over the same store after a simulated crash; everything appended
(and forced) before the crash is still there.

Two durability engines share one on-store layout:

- :class:`WriteAheadLog` — ``append`` forces immediately (privately),
  ``append_volatile`` + ``force`` batch by hand; safe for concurrent
  appenders but each pays for its own flush;
- :class:`GroupCommitWAL` — concurrent appenders enqueue records and
  block on a *shared* force, so one durable write covers a whole batch
  of transactions (classic group commit).

Layout (format 2, segmented): records live in bounded segments
(``<name>:seg:<n>`` → list of record dicts) plus a small head pointer
(``<name>:head``).  A force rewrites only the active segment — one durable
store write per batch — so force cost is O(batch + segment capacity),
never O(history).  The head is rewritten only when a segment opens or the
log truncates, and carries just the segment roster and an LSN watermark.
Logs written by the retired format 1 (one store key per record plus a meta
record listing every LSN) are migrated on open; ``records``, ``truncate``
and ``reopen`` behave identically over either origin.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.exceptions import InvalidStateError
from repro.persistence.object_store import MemoryStore, ObjectStore

DEFAULT_SEGMENT_SIZE = 64
DEFAULT_GROUP_COMMIT_WINDOW = 0.002


class ShippedGapError(InvalidStateError):
    """A shipped batch does not extend this log contiguously.

    Raised by :meth:`WriteAheadLog.apply_shipped` when a follower log's
    durable tail and the incoming batch leave a hole in the LSN
    sequence; the replication layer reacts by re-syncing the follower
    from the primary instead of appending a log with missing history.
    """


@dataclass(frozen=True)
class LogRecord:
    """One durable log entry."""

    lsn: int
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)


class WriteAheadLog:
    """Append-only durable record list over an object store.

    Writes are forced (durable) by default.  ``append_volatile`` +
    ``force`` exist so benchmarks can measure the cost of group forcing,
    and so crash tests can demonstrate loss of unforced records.

    A batch forced together is atomic: it lands in a single store write,
    so a crash mid-force leaves either the whole batch durable or none of
    it — never a torn prefix interleaved with later records.

    The log is safe for concurrent appenders, but each ``append`` here
    forces privately (the caller holds the log for its own flush);
    :class:`GroupCommitWAL` is the engine that makes concurrent appends
    share forces.
    """

    _META_KEY = "wal:meta"  # format-1 meta key; read only to migrate
    _HEAD_KEY = "head"

    def __init__(
        self,
        store: Optional[ObjectStore] = None,
        name: str = "wal",
        segment_size: int = DEFAULT_SEGMENT_SIZE,
    ) -> None:
        if segment_size < 1:
            raise ValueError("segment_size must be at least 1")
        self._store = store if store is not None else MemoryStore()
        self._name = name
        self._segment_size = segment_size
        # Reentrant so GroupCommitWAL's condition can share it while its
        # methods call back into the base operations.
        self._lock = threading.RLock()
        self._volatile: List[LogRecord] = []
        self.forces = 0
        self.records_forced = 0
        self._roster: List[int] = []  # segment ids, oldest first
        self._segments: Dict[int, List[Dict[str, Any]]] = {}
        self._next_seg = 1
        self._next_lsn = 1
        self._durable_upto = 0  # highest LSN known durable
        self._open()

    # -- keys ----------------------------------------------------------------

    def _head_key(self) -> str:
        return f"{self._name}:{self._HEAD_KEY}"

    def _seg_key(self, seg_id: int) -> str:
        return f"{self._name}:seg:{seg_id:08d}"

    def _format1_meta_key(self) -> str:
        return f"{self._name}:{self._META_KEY}"

    def _format1_record_key(self, lsn: int) -> str:
        return f"{self._name}:rec:{lsn:012d}"

    # -- opening -------------------------------------------------------------

    def _open(self) -> None:
        head = self._store.get_or(self._head_key())
        if head is None and self._store.contains(self._format1_meta_key()):
            self._migrate_format1()
            head = self._store.get_or(self._head_key())
        if head is None:
            return  # brand-new log
        watermark = head["next_lsn"]
        for seg_id in head["segments"]:
            # A segment listed in the head but never written (crash between
            # the head write and the first batch landing in it) is empty.
            records = self._store.get_or(self._seg_key(seg_id), [])
            if records:
                self._roster.append(seg_id)
                self._segments[seg_id] = list(records)
        self._next_seg = head["next_seg"]
        max_lsn = 0
        for seg_id in self._roster:
            for raw in self._segments[seg_id]:
                max_lsn = max(max_lsn, raw["lsn"])
        self._next_lsn = max(watermark, max_lsn + 1)
        self._durable_upto = max_lsn

    def _migrate_format1(self) -> None:
        """Rewrite a format-1 log (per-record keys) into segments."""
        meta = self._store.get(self._format1_meta_key())
        raws = []
        for lsn in meta["lsns"]:
            key = self._format1_record_key(lsn)
            if self._store.contains(key):
                raws.append(self._store.get(key))
        seg_id = 0
        batch: Dict[str, Any] = {}
        roster: List[int] = []
        for start in range(0, len(raws), self._segment_size):
            seg_id += 1
            roster.append(seg_id)
            batch[self._seg_key(seg_id)] = raws[start : start + self._segment_size]
        max_lsn = max((raw["lsn"] for raw in raws), default=0)
        batch[self._head_key()] = {
            "format": 2,
            "next_lsn": max(meta["next_lsn"], max_lsn + 1),
            "segments": roster,
            "next_seg": seg_id + 1,
        }
        self._store.put_many(batch)
        for lsn in meta["lsns"]:
            key = self._format1_record_key(lsn)
            if self._store.contains(key):
                self._store.remove(key)
        self._store.remove(self._format1_meta_key())

    def _write_head(self) -> None:
        self._store.put(
            self._head_key(),
            {
                "format": 2,
                "next_lsn": self._next_lsn,
                "segments": list(self._roster),
                "next_seg": self._next_seg,
            },
        )

    # -- appending ----------------------------------------------------------

    def append(self, kind: str, **payload: Any) -> LogRecord:
        """Append and immediately force a record."""
        with self._lock:
            record = self.append_volatile(kind, **payload)
            self.force()
        return record

    def append_volatile(self, kind: str, **payload: Any) -> LogRecord:
        """Append a record that is lost on crash until :meth:`force` runs."""
        with self._lock:
            record = LogRecord(lsn=self._next_lsn, kind=kind, payload=payload)
            self._next_lsn += 1
            self._volatile.append(record)
            return record

    def force(self) -> None:
        """Flush all volatile records to stable storage in one batch write."""
        with self._lock:
            self._force_locked()

    def _force_locked(self) -> None:
        if not self._volatile:
            return
        batch = [
            {"lsn": record.lsn, "kind": record.kind, "payload": record.payload}
            for record in self._volatile
        ]
        self._land_batch_locked(batch)
        self._volatile.clear()

    def _land_batch_locked(self, batch: List[Dict[str, Any]]) -> None:
        """Append ``batch`` (raw record dicts, ascending LSNs) durably."""
        if not self._roster or len(self._segments[self._roster[-1]]) >= self._segment_size:
            seg_id = self._next_seg
            self._next_seg += 1
            self._roster.append(seg_id)
            self._segments[seg_id] = []
            # Head first: if we crash before the segment lands, reopen sees
            # a listed-but-empty segment, not a torn batch.
            self._write_head()
        seg_id = self._roster[-1]
        self._segments[seg_id].extend(batch)
        self._store.put(self._seg_key(seg_id), self._segments[seg_id])
        self._durable_upto = batch[-1]["lsn"]
        self.forces += 1
        self.records_forced += len(batch)

    # -- replication shipping -------------------------------------------------

    def apply_shipped(self, records: List[LogRecord]) -> None:
        """Apply a batch shipped from a replication primary.

        The records keep the primary's LSNs — a follower log never
        assigns its own — and must extend this log contiguously: either
        the log is empty (a fresh follower joins at whatever the primary
        still retains) or the batch starts at ``durable_upto + 1``.
        Anything else raises :class:`ShippedGapError` so the caller can
        fall back to a full re-sync rather than persist a log with a
        hole in its history.  The whole batch lands in one store write,
        mirroring the primary's one-flush-per-force contract.
        """
        with self._lock:
            if not records:
                return
            if self._volatile:
                raise InvalidStateError(
                    "follower log has local volatile records; "
                    "a follower only receives shipped batches"
                )
            for earlier, later in zip(records, records[1:]):
                if later.lsn != earlier.lsn + 1:
                    raise ShippedGapError(
                        f"shipped batch is not contiguous at lsn {earlier.lsn}"
                    )
            start = records[0].lsn
            empty = self._durable_upto == 0 and not self._roster
            expected = start if empty else self._durable_upto + 1
            if start != expected:
                raise ShippedGapError(
                    f"shipped batch starts at lsn {start}, "
                    f"follower expected {expected}"
                )
            batch = [
                {"lsn": record.lsn, "kind": record.kind, "payload": dict(record.payload)}
                for record in records
            ]
            self._land_batch_locked(batch)
            self._next_lsn = max(self._next_lsn, records[-1].lsn + 1)

    # -- reading ------------------------------------------------------------

    def records(self) -> List[LogRecord]:
        """All durable records in LSN order (volatile tail excluded)."""
        with self._lock:
            return self._records_locked()

    def _records_locked(self) -> List[LogRecord]:
        result = []
        for seg_id in self._roster:
            for raw in self._segments[seg_id]:
                result.append(
                    LogRecord(lsn=raw["lsn"], kind=raw["kind"], payload=raw["payload"])
                )
        return result

    def __iter__(self):
        return iter(self.records())

    def __len__(self) -> int:
        return sum(len(self._segments[seg_id]) for seg_id in self._roster)

    def of_kind(self, *kinds: str) -> List[LogRecord]:
        wanted = set(kinds)
        return [record for record in self.records() if record.kind in wanted]

    @property
    def durable_upto(self) -> int:
        """Highest LSN known to be durable (0 when the log is empty)."""
        return self._durable_upto

    # -- truncation ----------------------------------------------------------

    def truncate(self, up_to_lsn: int) -> int:
        """Discard durable records with ``lsn <= up_to_lsn``; return count."""
        with self._lock:
            return self._truncate_locked(up_to_lsn)

    def _truncate_locked(self, up_to_lsn: int) -> int:
        dropped = 0
        kept_roster: List[int] = []
        for seg_id in self._roster:
            records = self._segments[seg_id]
            kept = [raw for raw in records if raw["lsn"] > up_to_lsn]
            dropped += len(records) - len(kept)
            if not kept:
                self._store.remove(self._seg_key(seg_id))
                del self._segments[seg_id]
            else:
                if len(kept) != len(records):
                    self._segments[seg_id] = kept
                    self._store.put(self._seg_key(seg_id), kept)
                kept_roster.append(seg_id)
        self._roster = kept_roster
        self._write_head()
        return dropped

    # -- crash simulation ------------------------------------------------------

    def crash(self) -> None:
        """Drop the volatile tail, as a machine crash would."""
        with self._lock:
            self._volatile.clear()

    def _reopen_kwargs(self) -> Dict[str, Any]:
        return {"segment_size": self._segment_size}

    def reopen(self) -> "WriteAheadLog":
        """Return a fresh log handle over the same store (post-restart)."""
        with self._lock:
            if self._volatile:
                raise InvalidStateError(
                    "reopen with unforced records; crash() first"
                )
            return type(self)(self._store, self._name, **self._reopen_kwargs())

    @property
    def store(self) -> ObjectStore:
        return self._store


class GroupCommitWAL(WriteAheadLog):
    """Thread-safe WAL whose ``append`` rides a shared group force.

    Concurrent appenders enqueue records; the first one needing
    durability becomes the *flush leader*, waits up to ``window`` seconds
    for other transactions to join the batch, then forces everything
    enqueued with one durable write.  Followers block until the shared
    force covers their record, then return — each caller still gets the
    ``append``-means-durable contract, but N concurrent commits cost one
    force instead of N.

    ``window=0`` replaces the deliberate wait with a single yield to
    other threads, so batching then only happens under contention heavy
    enough for appenders to enqueue before the leader flushes; a real
    (fsync-speed) store or a nonzero window is what makes sharing
    reliable.

    :meth:`crash` discards the volatile tail; an ``append`` caught
    mid-window by a concurrent crash raises
    :class:`~repro.exceptions.InvalidStateError` rather than return a
    record that was never made durable.
    """

    def __init__(
        self,
        store: Optional[ObjectStore] = None,
        name: str = "wal",
        segment_size: int = DEFAULT_SEGMENT_SIZE,
        window: float = DEFAULT_GROUP_COMMIT_WINDOW,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        super().__init__(store, name, segment_size)
        self.window = float(window)
        self._sleep = sleep
        # Shares the base lock so waiting on the shared force and the
        # base operations serialize against each other.
        self._flushed = threading.Condition(self._lock)
        self._leader_active = False

    def _reopen_kwargs(self) -> Dict[str, Any]:
        kwargs = super()._reopen_kwargs()
        kwargs["window"] = self.window
        kwargs["sleep"] = self._sleep
        return kwargs

    # -- thread-safe overrides ------------------------------------------------

    def append(self, kind: str, **payload: Any) -> LogRecord:
        """Append durably, sharing one force across concurrent appenders."""
        with self._flushed:
            record = super().append_volatile(kind, **payload)
            while self._durable_upto < record.lsn:
                if record not in self._volatile:
                    # A concurrent crash() discarded the volatile tail
                    # (including this record) while we waited; spinning
                    # would livelock and returning would break the
                    # append-means-durable contract.
                    raise InvalidStateError(
                        "record lost to a crash during group commit"
                    )
                if self._leader_active:
                    self._flushed.wait()
                    continue
                self._leader_active = True
                # Let other appenders join the batch: drop the lock while
                # we wait (window=0 still yields once).
                self._flushed.release()
                try:
                    self._sleep(max(0.0, self.window))
                finally:
                    self._flushed.acquire()
                try:
                    super().force()
                finally:
                    self._leader_active = False
                    self._flushed.notify_all()
        return record

    def force(self) -> None:
        with self._flushed:
            super().force()
            self._flushed.notify_all()

    def crash(self) -> None:
        with self._flushed:
            super().crash()
            # Wake any appender parked on the shared force so it can
            # observe its record is gone instead of sleeping forever.
            self._flushed.notify_all()
