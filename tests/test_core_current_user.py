"""Unit tests for ActivityCurrent and the UserActivity facade."""

import pytest

from repro.core import (
    ActivityManager,
    ActivityStatus,
    CompletionStatus,
    InvalidActivityState,
    NoActivity,
    UserActivity,
)


@pytest.fixture
def manager():
    return ActivityManager()


@pytest.fixture
def current(manager):
    return manager.current


@pytest.fixture
def user(manager):
    return UserActivity(manager)


class TestActivityCurrent:
    def test_begin_associates(self, current):
        activity = current.begin("a")
        assert current.current_activity() is activity
        assert current.depth == 1

    def test_begin_nests_under_current(self, current):
        parent = current.begin("p")
        child = current.begin("c")
        assert child.parent is parent
        assert current.depth == 2

    def test_complete_pops(self, current):
        parent = current.begin("p")
        current.begin("c")
        current.complete()
        assert current.current_activity() is parent

    def test_complete_without_activity(self, current):
        with pytest.raises(NoActivity):
            current.complete()

    def test_status_helpers(self, current):
        assert current.get_status() is None
        current.begin()
        assert current.get_status() is ActivityStatus.ACTIVE
        current.set_completion_status(CompletionStatus.FAIL)
        assert current.get_completion_status() is CompletionStatus.FAIL
        current.complete()

    def test_suspend_resume_association(self, current):
        activity = current.begin()
        detached = current.suspend()
        assert detached is activity
        assert current.current_activity() is None
        current.resume(detached)
        assert current.current_activity() is activity

    def test_suspend_empty(self, current):
        assert current.suspend() is None
        current.resume(None)

    def test_resume_completed_rejected(self, current):
        activity = current.begin()
        current.complete()
        with pytest.raises(InvalidActivityState):
            current.resume(activity)

    def test_resume_garbage_rejected(self, current):
        with pytest.raises(InvalidActivityState):
            current.resume(42)

    def test_completion_status_applied_at_complete(self, current):
        current.begin()
        outcome = current.complete(CompletionStatus.FAIL)
        assert outcome.is_error


class TestUserActivity:
    def test_begin_complete_roundtrip(self, user):
        activity = user.begin("shopping")
        assert user.current_activity() is activity
        assert user.get_activity_name() == "shopping"
        assert user.get_activity_id() == activity.activity_id
        outcome = user.complete()
        assert outcome.is_done
        assert user.current_activity() is None

    def test_complete_with_status(self, user):
        user.begin()
        assert user.complete_with_status(CompletionStatus.FAIL).is_error

    def test_status_manipulation(self, user):
        user.begin()
        user.set_completion_status(CompletionStatus.FAIL)
        assert user.get_completion_status() is CompletionStatus.FAIL
        assert user.get_status() is ActivityStatus.ACTIVE
        user.complete()

    def test_requires_activity(self, user):
        with pytest.raises(NoActivity):
            user.get_activity_name()
        with pytest.raises(NoActivity):
            user.complete()

    def test_nested_demarcation(self, user):
        outer = user.begin("outer")
        inner = user.begin("inner")
        assert inner.parent is outer
        user.complete()
        user.complete()
        assert outer.status.is_terminal

    def test_suspend_resume(self, user):
        activity = user.begin("bg")
        token = user.suspend()
        assert user.current_activity() is None
        user.resume(token)
        assert user.current_activity() is activity
        user.complete()

    def test_shares_manager_current(self, manager, user):
        """UserActivity and ActivityCurrent views agree (fig. 13 layering)."""
        activity = user.begin()
        assert manager.current.current_activity() is activity
        manager.current.complete()
        assert user.current_activity() is None
