"""WSCF activation/registration services and protocol coordination.

The shape follows the HP submission the paper cites [21] (the lineage of
WS-Coordination): an *activation service* creates a
:class:`CoordinationContext` of a given coordination type; participants
*register* for a named protocol of that context through a *registration
service*; the coordinator terminates the context by driving the
protocol's SignalSet over the registered participants.

There is deliberately **no OTS underneath**: the atomic protocol here is
the :class:`~repro.models.twopc.TwoPhaseCommitSignalSet` running directly
on the Activity Service — transactions constructed on top of the
framework, per §5.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.core.action import Action
from repro.core.activity import Activity
from repro.core.broadcast import BroadcastExecutor
from repro.core.manager import ActivityManager
from repro.core.signals import Outcome
from repro.core.status import CompletionStatus
from repro.exceptions import ReproError
from repro.models.btp import (
    COMPLETE_SET as BTP_COMPLETE_SET,
    PREPARE_SET as BTP_PREPARE_SET,
    BtpCompleteSignalSet,
    BtpPrepareSignalSet,
)
from repro.models.twopc import SET_NAME as TWOPC_SET
from repro.models.twopc import TwoPhaseCommitSignalSet
from repro.orb.core import Servant
from repro.orb.marshal import GLOBAL_REGISTRY
from repro.orb.reference import ObjectRef

PROTOCOL_ATOMIC = "wscf:atomic-outcome"
PROTOCOL_BUSINESS = "wscf:business-outcome"


class WscfError(ReproError):
    """Coordination framework misuse."""


@GLOBAL_REGISTRY.register_dataclass
@dataclass(frozen=True)
class CoordinationContext:
    """The token a coordinator hands to prospective participants.

    ``domain_id`` names the coordination domain that issued the context
    (None outside a federation): a participant in another domain can
    tell it is registering across an inter-ORB bridge — which is what
    lets a federated registration service interpose a local subordinate
    instead of enrolling every participant with the remote coordinator.
    """

    context_id: str
    coordination_type: str
    domain_id: Optional[str] = None


class WscfCoordinator:
    """Owns the activities and signal sets behind issued contexts.

    ``executor`` selects the broadcast engine used when a context is
    terminated (or prepared): the default drives registered participants
    serially; a :class:`~repro.core.broadcast.ThreadPoolBroadcastExecutor`
    contacts them concurrently, which is what makes an atomic-outcome
    context with many participants terminate in one hop latency instead
    of N.  When a ``manager`` is supplied it wins — its own executor
    configuration governs every activity it begins.
    """

    def __init__(
        self,
        manager: Optional[ActivityManager] = None,
        executor: Optional[BroadcastExecutor] = None,
        action_timeout: Optional[float] = None,
    ) -> None:
        if manager is None:
            manager = ActivityManager(
                executor=executor, action_timeout=action_timeout
            )
        self.manager = manager
        self._contexts: Dict[str, CoordinationContext] = {}
        self._activities: Dict[str, Activity] = {}
        self._terminated: Dict[str, Outcome] = {}

    # -- activation ------------------------------------------------------------

    def create_context(self, coordination_type: str) -> CoordinationContext:
        if coordination_type not in (PROTOCOL_ATOMIC, PROTOCOL_BUSINESS):
            raise WscfError(f"unknown coordination type {coordination_type!r}")
        activity = self.manager.begin(name=f"wscf:{coordination_type}")
        orb = self.manager.orb
        context = CoordinationContext(
            context_id=activity.activity_id,
            coordination_type=coordination_type,
            domain_id=orb.domain_id if orb is not None else None,
        )
        self._contexts[context.context_id] = context
        self._activities[context.context_id] = activity
        if coordination_type == PROTOCOL_ATOMIC:
            activity.register_signal_set(TwoPhaseCommitSignalSet(), completion=True)
        else:
            activity.register_signal_set(BtpPrepareSignalSet())
            activity.register_signal_set(BtpCompleteSignalSet(), completion=True)
        return context

    # -- registration -------------------------------------------------------------

    def register(
        self,
        context_id: str,
        participant: Union[Action, ObjectRef],
        protocol: Optional[str] = None,
    ) -> None:
        activity = self._activity(context_id)
        context = self._contexts[context_id]
        if context.coordination_type == PROTOCOL_ATOMIC:
            activity.add_action(TWOPC_SET, participant)
        else:
            activity.add_action(BTP_PREPARE_SET, participant)
            activity.add_action(BTP_COMPLETE_SET, participant)

    # -- termination -----------------------------------------------------------------

    def prepare(self, context_id: str) -> Outcome:
        """Business-outcome contexts: drive the explicit prepare phase."""
        context = self._contexts.get(context_id)
        if context is None or context.coordination_type != PROTOCOL_BUSINESS:
            raise WscfError("prepare applies to business-outcome contexts only")
        return self._activity(context_id).signal(BTP_PREPARE_SET)

    def terminate(self, context_id: str, success: bool = True) -> Outcome:
        activity = self._activity(context_id)
        status = CompletionStatus.SUCCESS if success else CompletionStatus.FAIL
        outcome = activity.complete(status)
        self._terminated[context_id] = outcome
        del self._activities[context_id]
        return outcome

    def outcome_of(self, context_id: str) -> Optional[Outcome]:
        return self._terminated.get(context_id)

    def _activity(self, context_id: str) -> Activity:
        try:
            return self._activities[context_id]
        except KeyError:
            raise WscfError(f"unknown or terminated context {context_id!r}") from None


class ActivationService(Servant):
    """Remote-invocable facade over :meth:`WscfCoordinator.create_context`."""

    def __init__(self, coordinator: WscfCoordinator) -> None:
        self._coordinator = coordinator

    def create_coordination_context(self, coordination_type: str) -> CoordinationContext:
        return self._coordinator.create_context(coordination_type)


class RegistrationService(Servant):
    """Remote-invocable facade over :meth:`WscfCoordinator.register`."""

    def __init__(self, coordinator: WscfCoordinator) -> None:
        self._coordinator = coordinator

    def register_participant(
        self, context_id: str, participant_ref: ObjectRef, protocol: str = ""
    ) -> bool:
        self._coordinator.register(context_id, participant_ref, protocol or None)
        return True
