"""Coordinated Atomic (CA) actions with exception resolution [13].

A CA action is a multi-party unit of work: all participants enter
together, each performs its role, and if one or more raise exceptions the
action performs *exception resolution* — concurrent exceptions are
resolved to a single covering exception through a resolution tree, and
every participant then runs its handler for the resolved exception
(§3.2.3: "a coordinator for a CA action model may be required to send a
Signal informing participants to perform exception resolution").

Mapping onto the framework:

- role work runs inside one activity per CA action;
- when exceptions were raised, the :class:`ResolutionSignalSet` emits a
  single ``resolve`` signal whose data names the resolved exception;
- each participant's Action runs the matching handler and reports
  handled / unhandled;
- the CA action outcome is normal, *exceptional* (all handlers ran) or
  *failed* (some participant could not handle the resolved exception).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.action import Action
from repro.core.activity import Activity
from repro.core.signal_set import SignalSet
from repro.core.signals import Outcome, Signal
from repro.core.status import CompletionStatus
from repro.exceptions import ReproError

RESOLUTION_SET = "ca.resolution"
SIGNAL_RESOLVE = "resolve"
OUTCOME_HANDLED = "handled"
OUTCOME_UNHANDLED = "unhandled"
ROOT_EXCEPTION = "UniversalException"


class CaError(ReproError):
    """CA action definition or execution error."""


class ExceptionResolutionTree:
    """A tree of exception names; concurrent exceptions resolve to their
    lowest common ancestor (the root covers everything)."""

    def __init__(self, root: str = ROOT_EXCEPTION) -> None:
        self.root = root
        self._parent: Dict[str, str] = {}

    def add(self, name: str, parent: Optional[str] = None) -> None:
        parent_name = parent if parent is not None else self.root
        if parent_name != self.root and parent_name not in self._parent:
            raise CaError(f"unknown parent exception {parent_name!r}")
        if name == self.root:
            raise CaError("cannot re-add the root exception")
        self._parent[name] = parent_name

    def knows(self, name: str) -> bool:
        return name == self.root or name in self._parent

    def path_to_root(self, name: str) -> List[str]:
        if not self.knows(name):
            raise CaError(f"unknown exception {name!r}")
        path = [name]
        while path[-1] != self.root:
            path.append(self._parent[path[-1]])
        return path

    def resolve(self, names: Set[str]) -> str:
        """Lowest common ancestor of all raised exceptions."""
        if not names:
            raise CaError("nothing to resolve")
        paths = [self.path_to_root(name) for name in names]
        candidates = set(paths[0])
        for path in paths[1:]:
            candidates &= set(path)
        # The LCA is the candidate deepest in the first path.
        for name in paths[0]:
            if name in candidates:
                return name
        return self.root


class ResolutionSignalSet(SignalSet):
    """Single ``resolve`` signal carrying the resolved exception name."""

    def __init__(self, resolved: str) -> None:
        self.signal_set_name = RESOLUTION_SET
        self.resolved = resolved
        self._sent = False
        self.responses: List[Outcome] = []

    def get_signal(self) -> Tuple[Optional[Signal], bool]:
        if self._sent:
            return None, True
        self._sent = True
        return (
            Signal(
                SIGNAL_RESOLVE,
                self.signal_set_name,
                application_specific_data={"exception": self.resolved},
            ),
            True,
        )

    def set_response(self, response: Outcome) -> bool:
        self.responses.append(response)
        return False

    def get_outcome(self) -> Outcome:
        unhandled = [r for r in self.responses if r.name != OUTCOME_HANDLED]
        if unhandled:
            return Outcome.error(name="ca.unhandled", data=len(unhandled))
        return Outcome.of("ca.exceptional", data=self.resolved)


@dataclass
class CaParticipant:
    """One role in a CA action.

    ``work(ctx)`` may raise :class:`CaRoleException` (or any exception,
    which is treated as its type name).  ``handlers`` maps exception
    names to recovery callables; a handler for an ancestor exception
    covers descendants that resolve to it.
    """

    name: str
    work: Callable[[Dict[str, Any]], Any]
    handlers: Dict[str, Callable[[Dict[str, Any]], Any]] = field(default_factory=dict)


class CaRoleException(Exception):
    """Exception raised by a participant's role, tagged with a tree name."""

    def __init__(self, exception_name: str, message: str = "") -> None:
        super().__init__(message or exception_name)
        self.exception_name = exception_name


class _ParticipantResolutionAction(Action):
    """Runs a participant's handler for the resolved exception."""

    def __init__(self, participant: CaParticipant, context: Dict[str, Any]) -> None:
        self.participant = participant
        self.context = context
        self.name = f"resolve:{participant.name}"
        self.handled_with: Optional[str] = None

    def process_signal(self, signal: Signal) -> Outcome:
        if signal.signal_name != SIGNAL_RESOLVE:
            return Outcome.error(data=f"unexpected signal {signal.signal_name}")
        resolved = (signal.application_specific_data or {}).get("exception")
        handler = self.participant.handlers.get(resolved)
        if handler is None:
            return Outcome.of(OUTCOME_UNHANDLED)
        handler(self.context)
        self.handled_with = resolved
        return Outcome.of(OUTCOME_HANDLED)


@dataclass
class CaOutcome:
    kind: str  # "normal" | "exceptional" | "failed"
    resolved_exception: Optional[str] = None
    raised: Dict[str, str] = field(default_factory=dict)
    outputs: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_normal(self) -> bool:
        return self.kind == "normal"


class CaAction:
    """A coordinated atomic action over the Activity Service."""

    def __init__(
        self,
        manager: Any,
        resolution: Optional[ExceptionResolutionTree] = None,
        name: str = "ca-action",
    ) -> None:
        self.manager = manager
        self.name = name
        self.resolution = (
            resolution if resolution is not None else ExceptionResolutionTree()
        )
        self.participants: List[CaParticipant] = []

    def add_participant(self, participant: CaParticipant) -> None:
        self.participants.append(participant)

    def run(self, context: Optional[Dict[str, Any]] = None) -> CaOutcome:
        if not self.participants:
            raise CaError("CA action has no participants")
        ctx = context if context is not None else {}
        activity: Activity = self.manager.begin(name=f"ca:{self.name}")
        raised: Dict[str, str] = {}
        outputs: Dict[str, Any] = {}
        for participant in self.participants:
            try:
                outputs[participant.name] = participant.work(ctx)
            except CaRoleException as exc:
                raised[participant.name] = exc.exception_name
            except Exception as exc:  # noqa: BLE001 - untagged role failure
                raised[participant.name] = type(exc).__name__
        if not raised:
            activity.complete(CompletionStatus.SUCCESS)
            return CaOutcome(kind="normal", outputs=outputs)
        names = {
            name if self.resolution.knows(name) else self.resolution.root
            for name in raised.values()
        }
        resolved = self.resolution.resolve(names)
        resolution_set = ResolutionSignalSet(resolved)
        for participant in self.participants:
            activity.add_action(
                RESOLUTION_SET, _ParticipantResolutionAction(participant, ctx)
            )
        activity.register_signal_set(resolution_set)
        outcome = activity.signal(RESOLUTION_SET)
        if outcome.is_error:
            activity.complete(CompletionStatus.FAIL_ONLY)
            return CaOutcome(
                kind="failed", resolved_exception=resolved, raised=raised, outputs=outputs
            )
        activity.complete(CompletionStatus.FAIL)
        return CaOutcome(
            kind="exceptional", resolved_exception=resolved, raised=raised, outputs=outputs
        )
