"""Name-server repairs and billing that survive rollback (§2.1(ii)–(iii)).

Run:  python examples/name_server_billing.py

An application transaction looks up a replicated object, discovers a dead
replica, repairs the name server, gets charged for the lookup — and then
*aborts*.  The repair and the charge survive (they must not be undone);
the transactional credit does not.
"""

from repro.apps import BillingMeter, ReplicatedNameServer
from repro.ots import TransactionCurrent, TransactionFactory


def main() -> None:
    factory = TransactionFactory()
    current = TransactionCurrent(factory)
    name_server = ReplicatedNameServer(factory, current=current)
    billing = BillingMeter(factory, current=current)

    name_server.register_object("accounts-db", ["replica-1", "replica-2", "replica-3"])

    # -- inside an application transaction that will abort --------------------
    tx = current.begin(name="app-tx")
    binding = name_server.bind_to_available("accounts-db")
    print(f"bound to {binding}")

    # The replica turns out to be dead: repair the name server.  The repair
    # runs in its own independent top-level transaction.
    name_server.record_unavailable("accounts-db", "replica-1")
    print("recorded replica-1 unavailable (independent transaction)")

    # The provider charges for the lookup (non-recoverable)…
    billing.charge("alice", 0.05, "name-server lookup")
    # …and also applies a promotional credit (transactional: will be undone).
    billing.credit_transactional("alice", 10.0)

    current.rollback()
    print("application transaction rolled back")

    # -- what survived ---------------------------------------------------------
    record = name_server.lookup("accounts-db")
    print(f"available replicas now: {list(record.available)}")
    assert record.available == ("replica-2", "replica-3"), record

    charged = billing.total_charged("alice")
    balance = billing.balance_of("alice")
    print(f"alice's charges: {charged:.2f} (survived rollback)")
    print(f"alice's transactional balance: {balance:.2f} (credit undone)")
    assert charged == 0.05
    assert balance == 0.0

    # A later transaction binds straight to a live replica.
    tx = current.begin(name="retry-tx")
    binding = name_server.bind_to_available("accounts-db")
    current.commit()
    print(f"retry bound to {binding}")
    assert binding == "replica-2"


if __name__ == "__main__":
    main()
