"""Streaming measurement for load runs: latency, taxonomy, memory.

One collector per run (or per worker thread, merged at the end).  Every
counter is O(1) per operation — the latency distribution lives in a
:class:`~repro.load.sketch.QuantileSketch`, not a sample list — so the
measurement layer itself cannot become the memory ceiling the run is
trying to find.

Outcome taxonomy (mirrors the chaos ledger's discipline of classifying
*what the client saw*):

``ok``             completed within its deadline
``deadline_miss``  completed, but too late to count as goodput
``shed``           rejected by admission control (:class:`AdmissionRejected`)
``overload``       shed by a quota/overload gate (:class:`OverloadError`)
``error``          any other failure
"""

from __future__ import annotations

import sys
from typing import Any, Dict, Optional

from repro.exceptions import AdmissionRejected, OverloadError
from repro.load.sketch import QuantileSketch

try:  # POSIX-only; the harness degrades to allocator blocks elsewhere.
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]


def peak_rss_bytes() -> Optional[int]:
    """Process peak RSS in bytes, or None where the OS can't say."""
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes; macOS reports bytes.
    return peak * 1024 if sys.platform != "darwin" else peak


class LoadCollector:
    """Accumulates one load run's evidence; mergeable across threads."""

    def __init__(self, name: str = "load") -> None:
        self.name = name
        self.latency = QuantileSketch()
        self.ok = 0
        self.deadline_miss = 0
        self.shed = 0
        self.overload = 0
        self.error = 0
        self.live = 0
        self.peak_live = 0
        self._start_blocks = sys.getallocatedblocks()
        self.peak_blocks = 0
        self.first_at: Optional[float] = None
        self.last_at: Optional[float] = None

    # -- per-op hooks ------------------------------------------------------

    def started(self, now: float) -> None:
        """An operation was admitted and is now in flight."""
        if self.first_at is None:
            self.first_at = now
        self.live += 1
        if self.live > self.peak_live:
            self.peak_live = self.live

    def finished(self, now: float, latency: float, deadline: Optional[float] = None) -> None:
        """An in-flight operation completed; classify against ``deadline``."""
        self.live -= 1
        self.last_at = now
        self.latency.add(latency)
        if deadline is not None and latency > deadline:
            self.deadline_miss += 1
        else:
            self.ok += 1

    def rejected(self, now: float, exc: BaseException) -> None:
        """An operation never got in: classify the refusal."""
        self.last_at = now
        if isinstance(exc, AdmissionRejected):
            self.shed += 1
        elif isinstance(exc, OverloadError):
            self.overload += 1
        else:
            self.error += 1

    def failed(self, now: float) -> None:
        """An admitted operation died in flight."""
        self.live -= 1
        self.last_at = now
        self.error += 1

    def sample_memory(self) -> None:
        """Record the live-object ceiling (call at suspected peaks)."""
        blocks = sys.getallocatedblocks() - self._start_blocks
        if blocks > self.peak_blocks:
            self.peak_blocks = blocks

    # -- aggregation -------------------------------------------------------

    def merge(self, other: "LoadCollector") -> None:
        self.latency.merge(other.latency)
        self.ok += other.ok
        self.deadline_miss += other.deadline_miss
        self.shed += other.shed
        self.overload += other.overload
        self.error += other.error
        # Per-thread peaks are not globally concurrent, so the honest
        # merged figure is the max, not the sum.
        self.peak_live = max(self.peak_live, other.peak_live)
        self.peak_blocks = max(self.peak_blocks, other.peak_blocks)
        for stamp in (other.first_at,):
            if stamp is not None and (self.first_at is None or stamp < self.first_at):
                self.first_at = stamp
        for stamp in (other.last_at,):
            if stamp is not None and (self.last_at is None or stamp > self.last_at):
                self.last_at = stamp

    @property
    def attempted(self) -> int:
        return self.ok + self.deadline_miss + self.shed + self.overload + self.error

    @property
    def completed(self) -> int:
        return self.ok + self.deadline_miss

    def elapsed(self) -> float:
        if self.first_at is None or self.last_at is None:
            return 0.0
        return max(0.0, self.last_at - self.first_at)

    def goodput(self) -> float:
        """Operations per second that completed within their deadline."""
        window = self.elapsed()
        return self.ok / window if window > 0 else 0.0

    def throughput(self) -> float:
        window = self.elapsed()
        return self.completed / window if window > 0 else 0.0

    def report(self) -> Dict[str, Any]:
        rss = peak_rss_bytes()
        return {
            "name": self.name,
            "attempted": self.attempted,
            "ok": self.ok,
            "deadline_miss": self.deadline_miss,
            "shed": self.shed,
            "overload": self.overload,
            "error": self.error,
            "elapsed_s": self.elapsed(),
            "goodput_ops_s": self.goodput(),
            "throughput_ops_s": self.throughput(),
            "peak_live": self.peak_live,
            "peak_blocks": self.peak_blocks,
            "peak_rss_bytes": rss,
            "latency": self.latency.describe(),
        }
