"""The 2PC model (§4.1): protocol outcomes and the exact fig. 8 trace."""

import pytest

from repro.core import ActivityManager, CompletionStatus
from repro.models import (
    TransactionalResourceAction,
    TwoPhaseCommitSignalSet,
    TwoPhaseParticipant,
)
from repro.models.twopc import (
    SET_NAME,
    SIGNAL_COMMIT,
    SIGNAL_PREPARE,
    SIGNAL_ROLLBACK,
)


@pytest.fixture
def manager():
    return ActivityManager()


def run_2pc(manager, participants, status=CompletionStatus.SUCCESS):
    activity = manager.begin("2pc")
    for participant in participants:
        activity.add_action(SET_NAME, participant)
    activity.register_signal_set(TwoPhaseCommitSignalSet(), completion=True)
    return activity.complete(status), activity


class TestOutcomes:
    def test_all_yes_commits(self, manager):
        participants = [TwoPhaseParticipant(f"p{i}") for i in range(3)]
        outcome, _ = run_2pc(manager, participants)
        assert outcome.name == "committed"
        assert all(p.committed for p in participants)

    def test_one_no_rolls_back_everyone(self, manager):
        p1 = TwoPhaseParticipant("p1")
        p2 = TwoPhaseParticipant("p2", on_prepare=lambda: False)
        p3 = TwoPhaseParticipant("p3")
        outcome, _ = run_2pc(manager, [p1, p2, p3])
        assert outcome.name == "rolled_back"
        assert p1.rolled_back and not p1.committed
        assert not p3.prepared, "prepare broadcast abandoned at the no-vote"
        assert p3.signals_seen == [SIGNAL_ROLLBACK]

    def test_read_only_participants_do_no_phase_two_work(self, manager):
        """Actions register interest in the whole SignalSet (§3.2.3), so a
        read-only voter still *receives* the commit signal — but performs
        no commit work because it never prepared."""
        commit_work = []
        reader = TwoPhaseParticipant(
            "reader", on_prepare=lambda: None,
            on_commit=lambda: commit_work.append("reader"),
        )
        writer = TwoPhaseParticipant(
            "writer", on_commit=lambda: commit_work.append("writer")
        )
        outcome, _ = run_2pc(manager, [reader, writer])
        assert outcome.name == "committed"
        assert reader.signals_seen == [SIGNAL_PREPARE, SIGNAL_COMMIT]
        assert writer.signals_seen == [SIGNAL_PREPARE, SIGNAL_COMMIT]
        assert commit_work == ["writer"], "read-only voter does no commit work"

    def test_all_read_only_skips_phase_two_entirely(self, manager):
        """When nobody voted commit the set ends after prepare: no second
        signal is generated at all."""
        participants = [
            TwoPhaseParticipant(f"r{i}", on_prepare=lambda: None) for i in range(2)
        ]
        outcome, _ = run_2pc(manager, participants)
        assert outcome.name == "committed"
        for participant in participants:
            assert participant.signals_seen == [SIGNAL_PREPARE]

    def test_failing_activity_goes_straight_to_rollback(self, manager):
        participant = TwoPhaseParticipant("p")
        outcome, _ = run_2pc(manager, [participant], status=CompletionStatus.FAIL)
        assert outcome.name == "rolled_back"
        assert participant.signals_seen == [SIGNAL_ROLLBACK]

    def test_action_exception_treated_as_no_vote(self, manager):
        from repro.core import ActionError, FunctionAction

        def explode(signal):
            raise ActionError("prepare failed")

        activity = manager.begin()
        activity.add_action(SET_NAME, FunctionAction(explode, name="broken"))
        activity.add_action(SET_NAME, TwoPhaseParticipant("healthy"))
        activity.register_signal_set(TwoPhaseCommitSignalSet(), completion=True)
        outcome = activity.complete(CompletionStatus.SUCCESS)
        assert outcome.name == "rolled_back"

    def test_no_participants_commits_trivially(self, manager):
        outcome, _ = run_2pc(manager, [])
        assert outcome.name == "committed"

    def test_votes_recorded_in_outcome(self, manager):
        outcome, _ = run_2pc(manager, [TwoPhaseParticipant("p")])
        assert outcome.data == ["vote_commit"]


class TestFig8Trace:
    def test_exact_message_sequence(self, manager):
        """Reproduce fig. 8: prepare to each action, then commit to each."""
        p1, p2 = TwoPhaseParticipant("A1"), TwoPhaseParticipant("A2")
        _, activity = run_2pc(manager, [p1, p2])
        protocol = [
            (event.kind, event.detail.get("signal"), event.detail.get("action"))
            for event in activity.event_log
            if event.kind in ("get_signal", "transmit", "get_outcome")
            and event.detail.get("signal_set") == SET_NAME
        ]
        assert protocol == [
            ("get_signal", None, None),
            ("transmit", "prepare", "A1"),
            ("transmit", "prepare", "A2"),
            ("get_signal", None, None),
            ("transmit", "commit", "A1"),
            ("transmit", "commit", "A2"),
            ("get_outcome", None, None),
        ]

    def test_set_response_follows_each_transmit(self, manager):
        p1, p2 = TwoPhaseParticipant("A1"), TwoPhaseParticipant("A2")
        _, activity = run_2pc(manager, [p1, p2])
        kinds = [
            event.kind
            for event in activity.event_log
            if event.kind in ("transmit", "set_response")
            and event.detail.get("signal_set") == SET_NAME
        ]
        assert kinds == ["transmit", "set_response"] * 4


class TestIdempotency:
    def test_duplicate_commit_signal_harmless(self, manager):
        commits = []
        participant = TwoPhaseParticipant("p", on_commit=lambda: commits.append(1))
        participant.process_signal(
            __import__("repro.core.signals", fromlist=["Signal"]).Signal(
                SIGNAL_PREPARE, SET_NAME
            )
        )
        from repro.core.signals import Signal

        participant.process_signal(Signal(SIGNAL_COMMIT, SET_NAME))
        participant.process_signal(Signal(SIGNAL_COMMIT, SET_NAME))
        assert commits == [1]

    def test_rollback_without_prepare_noop(self, manager):
        from repro.core.signals import Signal

        undone = []
        participant = TwoPhaseParticipant("p", on_rollback=lambda: undone.append(1))
        participant.process_signal(Signal(SIGNAL_ROLLBACK, SET_NAME))
        assert undone == []
        assert participant.rolled_back


class TestOtsResourceAdapter:
    def test_resource_commits_through_signals(self, manager):
        from tests.test_ots_transactions import FakeResource

        resource = FakeResource()
        action = TransactionalResourceAction(resource, "cell")
        outcome, _ = run_2pc(manager, [action])
        assert outcome.name == "committed"
        assert resource.events == ["prepare", "commit"]

    def test_resource_no_vote_rolls_back(self, manager):
        from repro.ots import Vote
        from tests.test_ots_transactions import FakeResource

        good = FakeResource()
        bad = FakeResource(vote=Vote.ROLLBACK)
        outcome, _ = run_2pc(
            manager,
            [TransactionalResourceAction(good, "good"),
             TransactionalResourceAction(bad, "bad")],
        )
        assert outcome.name == "rolled_back"
        assert good.events == ["prepare", "rollback"]

    def test_readonly_resource_vote_mapped(self, manager):
        from repro.ots import Vote
        from tests.test_ots_transactions import FakeResource

        reader = FakeResource(vote=Vote.READONLY)
        writer = FakeResource()
        outcome, _ = run_2pc(
            manager,
            [TransactionalResourceAction(reader, "r"),
             TransactionalResourceAction(writer, "w")],
        )
        assert outcome.name == "committed"
        assert reader.events == ["prepare"]
        assert writer.events == ["prepare", "commit"]
