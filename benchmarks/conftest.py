"""Shared helpers for the figure-reproduction benchmarks.

Each ``bench_figNN_*.py`` regenerates one figure of the paper: message
traces are asserted to match the figure's sequence chart, and scenario
series (sweeps, timelines, resource-holding comparisons) are written to
``benchmarks/results/figNN.txt`` so they survive pytest's output capture.
Timing numbers come from pytest-benchmark itself.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    # Start each session clean so artefacts reflect this run only.
    for entry in os.listdir(RESULTS_DIR):
        if entry.endswith(".txt"):
            os.remove(os.path.join(RESULTS_DIR, entry))
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir):
    """emit(name, lines): record a figure's regenerated series."""

    def _emit(name: str, lines) -> str:
        path = os.path.join(results_dir, f"{name}.txt")
        text = "\n".join(str(line) for line in lines) + "\n"
        mode = "a" if os.path.exists(path) else "w"
        with open(path, mode) as handle:
            handle.write(text)
        print(text)
        return path

    return _emit


@pytest.fixture
def fresh_env():
    """A complete single-process deployment for benchmarks."""

    from repro.core import ActivityManager
    from repro.ots import TransactionCurrent, TransactionFactory

    class Env:
        def __init__(self):
            self.factory = TransactionFactory()
            self.current = TransactionCurrent(self.factory)
            self.manager = ActivityManager()

    return Env()
