"""The fig. 13 HLS layer and the §5.2 WSCF variant."""

import pytest

from repro.core import ActivityServiceError, CompletionStatus
from repro.hls import (
    HlsActivityService,
    OpenNestedHls,
    TwoPhaseHls,
    WorkflowHls,
)
from repro.models import TwoPhaseParticipant, Workflow
from repro.models.open_nested import SET_NAME as ON_SET
from repro.models.twopc import SET_NAME as TWOPC_SET
from repro.wscf import (
    PROTOCOL_ATOMIC,
    PROTOCOL_BUSINESS,
    ActivationService,
    RegistrationService,
    WscfCoordinator,
)
from repro.wscf.coordination import WscfError


class TestHls:
    @pytest.fixture
    def service(self):
        hls = HlsActivityService()
        hls.register_service(TwoPhaseHls())
        hls.register_service(OpenNestedHls())
        return hls

    def test_service_registry(self, service):
        assert service.service_names() == ["atomic", "open-nested"]

    def test_unknown_service_rejected(self, service):
        with pytest.raises(ActivityServiceError):
            service.begin("nonexistent")

    def test_atomic_hls_configures_2pc_completion(self, service):
        activity = service.begin("atomic", name="pay")
        participant = TwoPhaseParticipant("p")
        activity.add_action(TWOPC_SET, participant)
        outcome = service.complete()
        assert outcome.name == "committed"
        assert participant.committed

    def test_atomic_hls_failure_rolls_back(self, service):
        activity = service.begin("atomic")
        participant = TwoPhaseParticipant("p")
        activity.add_action(TWOPC_SET, participant)
        outcome = service.complete(CompletionStatus.FAIL)
        assert outcome.name == "rolled_back"
        assert not participant.committed

    def test_open_nested_hls_configures_completion(self, service):
        activity = service.begin("open-nested")
        assert activity.completion_signal_set_name == ON_SET
        service.complete()

    def test_begin_without_service_is_plain(self, service):
        activity = service.begin(name="plain")
        assert activity.completion_signal_set_name is None
        service.complete()

    def test_nested_demarcation_through_user_activity(self, service):
        outer = service.begin("atomic", name="outer")
        inner = service.begin(name="inner")
        assert inner.parent is outer
        service.complete()
        outer_outcome = service.complete()
        assert outer_outcome.name == "committed"

    def test_recovery_factories_installed(self, service):
        # TwoPhaseHls.install registered a signal-set factory.
        signal_set = service.manager.make_signal_set("hls.atomic.completion")
        assert signal_set.signal_set_name == TWOPC_SET

    def test_workflow_hls_runs_workflows(self):
        hls = HlsActivityService()
        hls.register_service(WorkflowHls())
        workflow = Workflow("two-step")
        workflow.add_task("a", lambda c: 1)
        workflow.add_task("b", lambda c: 2, deps=["a"])
        result = hls._services["workflow"].run(workflow)
        assert result.succeeded

    def test_workflow_hls_requires_install(self):
        hls = WorkflowHls()
        with pytest.raises(ActivityServiceError):
            hls.run(Workflow("w"))


class TestWscf:
    @pytest.fixture
    def coordinator(self):
        return WscfCoordinator()

    def test_atomic_context_lifecycle(self, coordinator):
        context = coordinator.create_context(PROTOCOL_ATOMIC)
        participant = TwoPhaseParticipant("svc")
        coordinator.register(context.context_id, participant)
        outcome = coordinator.terminate(context.context_id, success=True)
        assert outcome.name == "committed"
        assert participant.committed
        assert coordinator.outcome_of(context.context_id) is outcome

    def test_atomic_failure_rolls_back(self, coordinator):
        context = coordinator.create_context(PROTOCOL_ATOMIC)
        participant = TwoPhaseParticipant("svc")
        coordinator.register(context.context_id, participant)
        outcome = coordinator.terminate(context.context_id, success=False)
        assert outcome.name == "rolled_back"

    def test_business_context_two_explicit_phases(self, coordinator):
        from repro.models import BtpParticipant, BtpStatus

        context = coordinator.create_context(PROTOCOL_BUSINESS)
        participant = BtpParticipant("svc")
        coordinator.register(context.context_id, participant)
        prepare_outcome = coordinator.prepare(context.context_id)
        assert not prepare_outcome.is_error
        assert participant.status is BtpStatus.PREPARED
        coordinator.terminate(context.context_id, success=True)
        assert participant.status is BtpStatus.CONFIRMED

    def test_prepare_on_atomic_rejected(self, coordinator):
        context = coordinator.create_context(PROTOCOL_ATOMIC)
        with pytest.raises(WscfError):
            coordinator.prepare(context.context_id)

    def test_unknown_coordination_type_rejected(self, coordinator):
        with pytest.raises(WscfError):
            coordinator.create_context("wscf:bogus")

    def test_terminated_context_unusable(self, coordinator):
        context = coordinator.create_context(PROTOCOL_ATOMIC)
        coordinator.terminate(context.context_id)
        with pytest.raises(WscfError):
            coordinator.register(context.context_id, TwoPhaseParticipant("late"))

    def test_no_ots_underneath(self, coordinator):
        """§5.2: the WSCF atomic protocol runs with no transaction factory,
        no OTS objects — coordination built purely on the framework."""
        context = coordinator.create_context(PROTOCOL_ATOMIC)
        participant = TwoPhaseParticipant("svc")
        coordinator.register(context.context_id, participant)
        outcome = coordinator.terminate(context.context_id)
        assert outcome.name == "committed"

    def test_remote_activation_and_registration(self):
        """Activation/registration services work as ORB servants with
        participant object references."""
        from repro.orb import Orb

        orb = Orb()
        host = orb.create_node("coordinator-host")
        svc_node = orb.create_node("participant-host")
        coordinator = WscfCoordinator()
        activation_ref = host.activate(ActivationService(coordinator))
        registration_ref = host.activate(RegistrationService(coordinator))

        context = activation_ref.invoke(
            "create_coordination_context", PROTOCOL_ATOMIC
        )
        participant = TwoPhaseParticipant("remote-svc")
        participant_ref = svc_node.activate(participant, interface="Action")
        assert registration_ref.invoke(
            "register_participant", context.context_id, participant_ref
        )
        outcome = coordinator.terminate(context.context_id)
        assert outcome.name == "committed"
        assert participant.committed


class TestWscfCrossDomain:
    """Federated WSCF: foreign-context registration auto-interposes."""

    @staticmethod
    def build_federation(interposition=False):
        from repro.core import ActivityManager
        from repro.orb import InterOrbBridge, Orb
        from repro.util.clock import SimulatedClock

        clock = SimulatedClock()
        bridge = InterOrbBridge()
        orb_a, orb_b = Orb(clock=clock), Orb(clock=clock)
        bridge.connect(orb_a, "dA")
        bridge.connect(orb_b, "dB")
        manager_a = ActivityManager(
            clock=clock, federation=bridge, interposition=interposition
        )
        manager_a.install(orb_a)
        manager_b = ActivityManager(clock=clock)
        manager_b.install(orb_b)
        return bridge, WscfCoordinator(manager=manager_a), WscfCoordinator(
            manager=manager_b
        )

    @pytest.mark.parametrize("interposition", [False, True])
    def test_foreign_registration_interposes(self, interposition):
        bridge, wscf_a, wscf_b = self.build_federation(interposition)
        context = wscf_a.create_context(PROTOCOL_ATOMIC)
        assert context.domain_id == "dA"
        participants = [TwoPhaseParticipant(f"p{i}") for i in range(4)]
        for participant in participants:
            wscf_b.register(context, participant)
        subordinate = wscf_b.subordinate_for(context.context_id)
        assert subordinate is not None
        assert subordinate.registration_count == 4
        assert wscf_b.interposed_registrations == 4
        outcome = wscf_a.terminate(context.context_id, success=True)
        assert outcome.name == "committed"
        assert all(p.committed for p in participants)

    def test_cross_bridge_sends_stay_constant_per_signal(self):
        """The regression the satellite pins: broadcast traffic across
        the bridge is O(1) per signal, not O(participants)."""
        costs = {}
        for count in (1, 5):
            bridge, wscf_a, wscf_b = self.build_federation()
            context = wscf_a.create_context(PROTOCOL_ATOMIC)
            participants = [TwoPhaseParticipant(f"p{i}") for i in range(count)]
            for participant in participants:
                wscf_b.register(context, participant)
            bridge.reset_link_stats()
            outcome = wscf_a.terminate(context.context_id, success=True)
            assert outcome.name == "committed"
            assert all(p.committed for p in participants)
            costs[count] = bridge.cross_domain_requests()
        assert costs[1] == costs[5]
        assert costs[1] > 0

    def test_failure_rolls_back_across_domains(self):
        bridge, wscf_a, wscf_b = self.build_federation()
        context = wscf_a.create_context(PROTOCOL_ATOMIC)
        participant = TwoPhaseParticipant("svc")
        wscf_b.register(context, participant)
        outcome = wscf_a.terminate(context.context_id, success=False)
        assert outcome.name == "rolled_back"
        assert not participant.committed

    def test_local_context_token_takes_local_path(self):
        bridge, wscf_a, wscf_b = self.build_federation()
        context = wscf_a.create_context(PROTOCOL_ATOMIC)
        participant = TwoPhaseParticipant("svc")
        wscf_a.register(context, participant)  # full token, same domain
        assert wscf_a.subordinate_for(context.context_id) is None
        assert wscf_a.terminate(context.context_id).name == "committed"
        assert participant.committed

    def test_unpublished_issuer_refused(self):
        bridge, wscf_a, wscf_b = self.build_federation()
        from repro.wscf.coordination import CoordinationContext

        orphan = CoordinationContext("ctx-x", PROTOCOL_ATOMIC, "dC")
        with pytest.raises(WscfError, match="publishes no wscf"):
            wscf_b.register(orphan, TwoPhaseParticipant("svc"))
