"""Slotted record bases for the invocation hot path.

Every per-send object — signals, outcomes, wire contexts, delivery and
registration records — used to be a plain ``@dataclass``.  A dataclass
instance carries a ``__dict__``: one extra allocation per record plus a
hashtable probe per attribute access, which the allocation profiler
(:mod:`repro.util.profiling`) shows dominating the per-delivery garbage
once marshalling is cached.  These bases give the same value semantics
(ordered fields, ``==``/``hash`` over the field tuple, dataclass-style
``repr``) on ``__slots__`` storage:

- :class:`SlottedRecord` — mutable; subclasses declare ``__slots__`` and
  list the same names (in order) in ``_fields``;
- :class:`FrozenRecord` — additionally refuses attribute assignment
  after ``__init__`` (subclass ``__init__`` assigns through
  :meth:`FrozenRecord._init`), mirroring ``@dataclass(frozen=True)``;
  the raised ``AttributeError`` matches what frozen dataclasses raise
  (``FrozenInstanceError`` is an ``AttributeError`` subclass).

The marshal registry's :meth:`~repro.orb.marshal.ValueTypeRegistry.
register_slotted` derives the wire encoding from ``_fields`` exactly as
``register_dataclass`` derives it from dataclass fields — same part
order, same part names — so converting a registered record type leaves
its bytes untouched.
"""

from __future__ import annotations

from typing import Any, ClassVar, Tuple


class SlottedRecord:
    """Mutable record on ``__slots__`` storage with value semantics."""

    __slots__ = ()
    _fields: ClassVar[Tuple[str, ...]] = ()

    def _astuple(self) -> Tuple[Any, ...]:
        return tuple(getattr(self, name) for name in self._fields)

    def __eq__(self, other: object) -> Any:
        if other.__class__ is not self.__class__:
            return NotImplemented
        return self._astuple() == other._astuple()  # type: ignore[attr-defined]

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self._fields
        )
        return f"{type(self).__name__}({parts})"


class FrozenRecord(SlottedRecord):
    """Immutable record: hashable, assignment refused after ``__init__``."""

    __slots__ = ()

    def _init(self, **values: Any) -> None:
        """Assign the field values (bypassing the frozen guard)."""
        for name, value in values.items():
            object.__setattr__(self, name, value)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(
            f"cannot assign to field {name!r} of frozen {type(self).__name__}"
        )

    def __delattr__(self, name: str) -> None:
        raise AttributeError(
            f"cannot delete field {name!r} of frozen {type(self).__name__}"
        )

    def __hash__(self) -> int:
        return hash(self._astuple())
