"""Figure 8 — two-phase commit via Signals, SignalSets and Actions.

Regenerated artefact: the figure's exact message-sequence chart
(get_signal → prepare→A1 → set_response → prepare→A2 → … → commit → …
→ get_outcome), then commit latency swept over the participant count,
locally and with remote participants under wire latency, plus the vote
mix (rollback pivot) variants.
"""

import pytest

from repro.core import ActivityManager, CompletionStatus, IdempotentAction
from repro.models import TwoPhaseCommitSignalSet, TwoPhaseParticipant
from repro.models.twopc import SET_NAME
from repro.orb import FaultPlan, Orb

PARTICIPANT_COUNTS = [1, 2, 8, 32]


def run_protocol(manager, participants, status=CompletionStatus.SUCCESS):
    activity = manager.begin("2pc")
    for participant in participants:
        activity.add_action(SET_NAME, participant)
    activity.register_signal_set(TwoPhaseCommitSignalSet(), completion=True)
    return activity.complete(status), activity


class TestFig8Trace:
    def test_exact_sequence_regenerated(self, benchmark, emit):
        def scenario_run():
            manager = ActivityManager()
            return run_protocol(
                manager,
                [TwoPhaseParticipant("Action-1"), TwoPhaseParticipant("Action-2")],
            )

        outcome, activity = benchmark.pedantic(scenario_run, rounds=1, iterations=1)
        assert outcome.name == "committed"
        trace = [
            (event.kind, event.detail.get("signal"), event.detail.get("action"),
             event.detail.get("outcome"))
            for event in activity.event_log
            if event.detail.get("signal_set") == SET_NAME
            and event.kind in ("get_signal", "transmit", "set_response", "get_outcome")
        ]
        expected = [
            ("get_signal", None, None, None),
            ("transmit", "prepare", "Action-1", None),
            ("set_response", "prepare", "Action-1", "vote_commit"),
            ("transmit", "prepare", "Action-2", None),
            ("set_response", "prepare", "Action-2", "vote_commit"),
            ("get_signal", None, None, None),
            ("transmit", "commit", "Action-1", None),
            ("set_response", "commit", "Action-1", "done"),
            ("transmit", "commit", "Action-2", None),
            ("set_response", "commit", "Action-2", "done"),
            ("get_outcome", None, None, "committed"),
        ]
        assert trace == expected
        emit(
            "fig08",
            ["fig 8 — exact 2PC message sequence (matches the chart):"]
            + [f"  {step}" for step in trace],
            data={"commit_protocol_steps": len(trace)},
        )

    def test_rollback_pivot_regenerated(self, benchmark, emit):
        def scenario_run():
            manager = ActivityManager()
            return run_protocol(
                manager,
                [
                    TwoPhaseParticipant("A1"),
                    TwoPhaseParticipant("A2", on_prepare=lambda: False),
                    TwoPhaseParticipant("A3"),
                ],
            )

        outcome, activity = benchmark.pedantic(scenario_run, rounds=1, iterations=1)
        assert outcome.name == "rolled_back"
        signals = [
            (event.detail["signal"], event.detail["action"])
            for event in activity.event_log
            if event.kind == "transmit" and event.detail.get("signal_set") == SET_NAME
        ]
        # Prepare stops at the no-voter; rollback goes to everyone.
        assert signals == [
            ("prepare", "A1"),
            ("prepare", "A2"),
            ("rollback", "A1"),
            ("rollback", "A2"),
            ("rollback", "A3"),
        ]
        emit(
            "fig08",
            ["fig 8 variant — no-vote pivots prepare → rollback:"]
            + [f"  {signal} -> {action}" for signal, action in signals],
        )

    @pytest.mark.parametrize("participants", PARTICIPANT_COUNTS)
    def test_bench_local_commit(self, benchmark, participants):
        manager = ActivityManager()

        def run():
            run_protocol(
                manager,
                [TwoPhaseParticipant(f"p{i}") for i in range(participants)],
            )

        benchmark(run)

    @pytest.mark.parametrize("participants", [2, 8])
    def test_bench_remote_commit_with_latency(self, benchmark, participants):
        orb = Orb(fault_plan=FaultPlan(latency=0.0005))
        manager = ActivityManager(clock=orb.clock)
        manager.install(orb)
        nodes = [orb.create_node(f"n{i}") for i in range(participants)]

        def run():
            activity = manager.begin()
            for index, node in enumerate(nodes):
                participant = IdempotentAction(TwoPhaseParticipant(f"p{index}"))
                ref = node.activate(participant, interface="Action")
                activity.add_action(SET_NAME, ref)
            activity.register_signal_set(TwoPhaseCommitSignalSet(), completion=True)
            activity.complete(CompletionStatus.SUCCESS)

        benchmark(run)

    def test_simulated_wire_cost_series(self, benchmark, emit):
        """Simulated-time view: messages and simulated latency per commit,
        swept over participants (2 hops per transmission, 2 signals)."""

        def scenario_run():
            rows = []
            for count in PARTICIPANT_COUNTS:
                orb = Orb(fault_plan=FaultPlan(latency=0.001))
                manager = ActivityManager(clock=orb.clock)
                manager.install(orb)
                activity = manager.begin()
                for index in range(count):
                    node = orb.create_node(f"n{index}")
                    ref = node.activate(
                        TwoPhaseParticipant(f"p{index}"), interface="Action"
                    )
                    activity.add_action(SET_NAME, ref)
                activity.register_signal_set(
                    TwoPhaseCommitSignalSet(), completion=True
                )
                before = orb.clock.now()
                activity.complete(CompletionStatus.SUCCESS)
                rows.append(
                    (count, orb.transport.stats.requests_sent,
                     round(orb.clock.now() - before, 6))
                )
            return rows

        rows = benchmark.pedantic(scenario_run, rounds=1, iterations=1)
        # Shape: both messages and simulated latency grow linearly.
        messages = [row[1] for row in rows]
        latencies = [row[2] for row in rows]
        assert messages == sorted(messages) and latencies == sorted(latencies)
        assert messages[-1] == 2 * PARTICIPANT_COUNTS[-1]  # prepare + commit each
        emit(
            "fig08",
            ["fig 8 — commit cost vs participants (simulated wire):",
             "  participants  messages  simulated_seconds"]
            + [f"  {c:12d}  {m:8d}  {s:17.6f}" for c, m, s in rows],
            data={
                "max_participants": rows[-1][0],
                "messages_at_max": rows[-1][1],
                "simulated_latency_at_max_s": rows[-1][2],
            },
        )
