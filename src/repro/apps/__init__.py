"""Application substrates: the paper's §2.1 motivating workloads.

- :mod:`repro.apps.travel` — taxi/restaurant/theatre/hotel booking
  services with bounded inventory (§2.1(iv), figs 1–2);
- :mod:`repro.apps.bulletin_board` — transactional posting with early
  resource release and compensating unpost (§2.1(i), fig. 9);
- :mod:`repro.apps.name_server` — replicated-object name server whose
  updates must survive enclosing-transaction aborts (§2.1(ii));
- :mod:`repro.apps.billing` — usage charging that must not be recovered
  on rollback (§2.1(iii)).

These are full library applications: examples and benchmarks drive them
through the extended-transaction models in :mod:`repro.models`.
"""

from repro.apps.billing import BillingMeter
from repro.apps.bulletin_board import BulletinBoard, Post
from repro.apps.name_server import ReplicaRecord, ReplicatedNameServer
from repro.apps.travel import (
    BookingError,
    HotelService,
    InventoryService,
    RestaurantService,
    TaxiService,
    TheatreService,
    TravelScenario,
)

__all__ = [
    "InventoryService",
    "TaxiService",
    "RestaurantService",
    "TheatreService",
    "HotelService",
    "TravelScenario",
    "BookingError",
    "BulletinBoard",
    "Post",
    "ReplicatedNameServer",
    "ReplicaRecord",
    "BillingMeter",
]
