"""The activity coordinator (fig. 5).

One coordinator is associated with each activity.  Actions register
interest in SignalSets *by name* (§3.2.3 — the concrete signals a set will
produce may not be known in advance).  When the activity triggers a
SignalSet, the coordinator:

1. asks the set for a signal (``get_signal``);
2. transmits it to every action registered for that set, stamping a fresh
   ``delivery_id`` per logical transmission and pushing it through the
   configured delivery policy — *how* concurrently is the pluggable
   :class:`~repro.core.broadcast.BroadcastExecutor`'s choice;
3. reports each action's outcome back to the set (``set_response``),
   always from the coordinator's own thread and in registration order;
   a True reply abandons the current broadcast and fetches a new signal
   immediately;
4. repeats until the set is done, then collates via ``get_outcome``.

Every step is recorded in the event log; the figure-8/11/12 benches
compare these traces with the paper's sequence charts.  The default
(serial) executor records traces byte-identical to the pre-executor
coordinator; the thread-pool executor records the same deterministic
logical sequence while the physical sends overlap.
"""

from __future__ import annotations

from typing import Any, ClassVar, Dict, List, Optional, Tuple, Union

from repro.core.action import Action
from repro.core.broadcast import (
    BroadcastExecutor,
    SerialBroadcastExecutor,
    Transmission,
)
from repro.core.delivery import AtLeastOnceDelivery, DeliveryPolicy
from repro.core.exceptions import ActionError
from repro.core.signal_set import GuardedSignalSet, SignalSet
from repro.core.signals import Outcome, Signal
from repro.core.status import CompletionStatus
from repro.exceptions import CommunicationError
from repro.orb.marshal import PayloadSlot
from repro.orb.reference import ObjectRef
from repro.util.events import EventLog
from repro.util.idgen import IdGenerator
from repro.util.records import SlottedRecord

# Per-send hole in a broadcast's marshal-once template: the stamped
# delivery id is the only part of the signal that differs per action.
_DELIVERY_ID_SLOT = "delivery_id"

ActionLike = Union[Action, ObjectRef]


class ActionRecord(SlottedRecord):
    """One registration of an action with a signal-set name (slotted, PR 7)."""

    __slots__ = (
        "action_id",
        "signal_set_name",
        "action",
        "factory_name",
        "factory_config",
    )
    _fields: ClassVar[Tuple[str, ...]] = __slots__

    def __init__(
        self,
        action_id: str,
        signal_set_name: str,
        action: ActionLike,
        factory_name: Optional[str] = None,
        factory_config: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.action_id = action_id
        self.signal_set_name = signal_set_name
        self.action = action
        # Durable-recovery metadata (optional): how to re-create this action.
        self.factory_name = factory_name
        self.factory_config = factory_config if factory_config is not None else {}

    @property
    def label(self) -> str:
        name = getattr(self.action, "name", None)
        if isinstance(self.action, ObjectRef):
            name = self.action.key()
        return name if name else self.action_id


class ActivityCoordinator:
    """Signal broadcast engine for one activity."""

    def __init__(
        self,
        activity_id: str,
        event_log: Optional[EventLog] = None,
        delivery: Optional[DeliveryPolicy] = None,
        executor: Optional[BroadcastExecutor] = None,
        action_timeout: Optional[float] = None,
        marshal_once: bool = True,
        interposer: Optional[Any] = None,
    ) -> None:
        self.activity_id = activity_id
        self.event_log = event_log if event_log is not None else EventLog()
        self.delivery = delivery if delivery is not None else AtLeastOnceDelivery()
        self.executor = executor if executor is not None else SerialBroadcastExecutor()
        # Per-action outcome wait bound, enforced where the executor can
        # preempt (the thread-pool executor); None waits indefinitely.
        self.action_timeout = action_timeout
        # Invocation fast path: encode each broadcast's request body once
        # per ORB and patch only the delivery id / target per send.
        self.marshal_once = marshal_once
        # Federation: when set (ActivityManager(federation=...,
        # interposition=True)), cross-domain registrations are rerouted
        # through one interposed subordinate per remote domain.
        self.interposer = interposer
        self._ids = IdGenerator()
        self._actions: Dict[str, List[ActionRecord]] = {}

    # -- registration --------------------------------------------------------

    def add_action(
        self,
        signal_set_name: str,
        action: ActionLike,
        factory_name: Optional[str] = None,
        factory_config: Optional[Dict[str, Any]] = None,
    ) -> ActionRecord:
        """Register ``action`` for every signal the named set will produce.

        Under a federation interposer, an action living in a foreign
        domain is registered with that domain's subordinate coordinator
        instead; the returned record is then the (shared) parent-side
        registration of the subordinate itself.
        """
        if self.interposer is not None:
            routed = self.interposer.route(
                self, signal_set_name, action, factory_name, factory_config
            )
            if routed is not None:
                return routed
        return self.register_direct(
            signal_set_name,
            action,
            factory_name=factory_name,
            factory_config=factory_config,
        )

    def register_direct(
        self,
        signal_set_name: str,
        action: ActionLike,
        factory_name: Optional[str] = None,
        factory_config: Optional[Dict[str, Any]] = None,
    ) -> ActionRecord:
        """Register ``action`` with *this* coordinator, bypassing any
        interposition routing (used by the interposer itself to enlist
        a remote domain's subordinate)."""
        record = ActionRecord(
            action_id=self._ids.next("action"),
            signal_set_name=signal_set_name,
            action=action,
            factory_name=factory_name,
            factory_config=dict(factory_config) if factory_config else {},
        )
        self._actions.setdefault(signal_set_name, []).append(record)
        self.event_log.record(
            "add_action",
            activity=self.activity_id,
            signal_set=signal_set_name,
            action=record.label,
        )
        return record

    def remove_action(self, record: ActionRecord) -> None:
        records = self._actions.get(record.signal_set_name, [])
        if record in records:
            records.remove(record)
            if self.interposer is not None:
                # An interposed record is shared by every action of its
                # domain: removing it unenlists the whole domain, and
                # the interposer must drop its cache so a later
                # add_action re-enlists instead of returning the
                # severed record.
                self.interposer.forget_record(record)

    def remove_actions_for(self, signal_set_name: str) -> int:
        removed = len(self._actions.get(signal_set_name, []))
        self._actions.pop(signal_set_name, None)
        return removed

    def actions_for(self, signal_set_name: str) -> List[ActionRecord]:
        return list(self._actions.get(signal_set_name, []))

    @property
    def action_count(self) -> int:
        return sum(len(records) for records in self._actions.values())

    # -- broadcasting -----------------------------------------------------------

    def process_signal_set(
        self,
        signal_set: SignalSet,
        completion_status: Optional[CompletionStatus] = None,
    ) -> Outcome:
        """Drive a whole SignalSet to completion and return its outcome."""
        guard = (
            signal_set
            if isinstance(signal_set, GuardedSignalSet)
            else GuardedSignalSet(signal_set)
        )
        if completion_status is not None:
            guard.set_completion_status(completion_status)
        name = guard.signal_set_name
        log = self.event_log
        log.record("get_signal", activity=self.activity_id, signal_set=name)
        signal, last = guard.get_signal()
        while signal is not None:
            records = self.actions_for(name)
            prepared_map = self._prepare_broadcast(records, signal)
            transmissions = [
                self._transmission(index, record, signal, prepared_map)
                for index, record in enumerate(records)
            ]

            def on_transmit(transmission: Transmission, stamped: Signal) -> None:
                log.record(
                    "transmit",
                    activity=self.activity_id,
                    signal_set=name,
                    signal=stamped.signal_name,
                    action=transmission.label,
                )

            def digest(
                transmission: Transmission, stamped: Signal, outcome: Outcome
            ) -> bool:
                log.record(
                    "set_response",
                    activity=self.activity_id,
                    signal_set=name,
                    signal=stamped.signal_name,
                    action=transmission.label,
                    outcome=outcome.name,
                    error=outcome.is_error,
                )
                return guard.set_response(outcome)

            interrupted = self.executor.broadcast(
                transmissions, on_transmit, digest, timeout=self.action_timeout
            )
            if not interrupted and guard.finish_broadcast():
                break
            log.record("get_signal", activity=self.activity_id, signal_set=name)
            signal, last = guard.get_signal()
        outcome = guard.get_outcome()
        log.record(
            "get_outcome",
            activity=self.activity_id,
            signal_set=name,
            outcome=outcome.name,
            error=outcome.is_error,
        )
        return outcome

    def _prepare_broadcast(
        self, records: List[ActionRecord], signal: Signal
    ) -> Optional[Dict[int, Any]]:
        """Marshal-once: pre-encode this round's request per target ORB.

        All stamped transmissions of one broadcast differ only in their
        delivery id (and target object), so remote sends share one
        :class:`~repro.orb.core.PreparedInvocation` per ORB, built here
        on the calling thread — broadcast workers only read the map.  A
        template that fails to build (unmarshallable payload) maps to
        ``None`` so the send falls back to the plain path and keeps its
        historical error semantics.
        """
        if not self.marshal_once:
            return None
        prepared: Dict[int, Any] = {}
        for record in records:
            action = record.action
            if not isinstance(action, ObjectRef) or not action.is_bound:
                continue
            orb = action.orb
            key = id(orb)
            if key in prepared:
                continue
            try:
                template_signal = signal.with_delivery_id(
                    PayloadSlot(_DELIVERY_ID_SLOT)
                )
                prepared[key] = orb.prepare_invocation(
                    "process_signal", (template_signal,)
                )
            except Exception:  # noqa: BLE001 - fall back to plain marshalling
                prepared[key] = None
        return prepared or None

    def _transmission(
        self,
        index: int,
        record: ActionRecord,
        signal: Signal,
        prepared_map: Optional[Dict[int, Any]] = None,
    ) -> Transmission:
        """Plan one logical transmission of ``signal`` to ``record``.

        Executors call ``stamp`` from the coordinator's thread in
        registration order, so ids are deterministic per executor.  The
        serial executor stamps lazily (an abandoned broadcast consumes no
        ids for its skipped tail — byte-identical to the historical
        loop); the pool executor stamps every transmission at submission,
        so after an abandonment the two executors' id *sequences* may
        diverge, while ids within one run stay unique and ordered.
        """

        def stamp() -> Signal:
            return signal.with_delivery_id(self._ids.next("delivery"))

        def send(stamped: Signal) -> Outcome:
            return self.delivery.deliver(
                lambda s, r=record: self._invoke(r, s, prepared_map), stamped
            )

        return Transmission(index=index, label=record.label, stamp=stamp, send=send)

    def _invoke(
        self,
        record: ActionRecord,
        signal: Signal,
        prepared_map: Optional[Dict[int, Any]] = None,
    ) -> Outcome:
        """One attempt at sending ``signal`` to one action.

        ActionError (and unexpected application failures) become error
        outcomes for the SignalSet to digest; CommunicationError escapes
        so the delivery policy can retry.  Remote sends reuse the
        broadcast's prepared request body when one was built (patching
        the stamped delivery id into the template) — the wire bytes are
        identical to a plain invoke.
        """
        try:
            if isinstance(record.action, ObjectRef):
                prepared = (
                    prepared_map.get(id(record.action.orb))
                    if prepared_map is not None and record.action.is_bound
                    else None
                )
                if prepared is not None:
                    result = record.action.orb.invoke(
                        record.action,
                        "process_signal",
                        (signal,),
                        {},
                        prepared=prepared,
                        slots={_DELIVERY_ID_SLOT: signal.delivery_id},
                    )
                else:
                    result = record.action.invoke("process_signal", signal)
            else:
                result = record.action.process_signal(signal)
        except CommunicationError:
            raise
        except ActionError as exc:
            return Outcome.error(data=str(exc))
        except Exception as exc:  # noqa: BLE001 - action bugs must not kill the protocol
            return Outcome.error(data=f"{type(exc).__name__}: {exc}")
        if not isinstance(result, Outcome):
            return Outcome.done(result)
        return result
