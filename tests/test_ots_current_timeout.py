"""OTS Current (thread association), propagation over the ORB, timeouts."""

import pytest

from repro.orb import Orb
from repro.orb.core import Servant
from repro.ots import (
    InvalidTransaction,
    NoTransaction,
    TransactionCurrent,
    TransactionFactory,
    TransactionRolledBack,
    TransactionStatus,
    TransactionalCell,
    install_transaction_service,
)
from repro.util.clock import SimulatedClock


@pytest.fixture
def factory():
    return TransactionFactory()


@pytest.fixture
def current(factory):
    return TransactionCurrent(factory)


class TestCurrent:
    def test_begin_commit(self, current):
        tx = current.begin()
        assert current.get_transaction() is tx
        assert current.get_status() is TransactionStatus.ACTIVE
        current.commit()
        assert current.get_transaction() is None
        assert current.get_status() is TransactionStatus.NO_TRANSACTION

    def test_begin_nested(self, current):
        top = current.begin()
        child = current.begin()
        assert child.parent is top
        assert current.depth == 2
        current.commit()
        assert current.get_transaction() is top

    def test_commit_without_transaction(self, current):
        with pytest.raises(NoTransaction):
            current.commit()

    def test_rollback_without_transaction(self, current):
        with pytest.raises(NoTransaction):
            current.rollback()

    def test_rollback_only_marks(self, current):
        current.begin()
        current.rollback_only()
        with pytest.raises(TransactionRolledBack):
            current.commit()
        assert current.get_transaction() is None, "association cleared"

    def test_suspend_resume(self, current):
        tx = current.begin()
        suspended = current.suspend()
        assert suspended is tx
        assert current.get_transaction() is None
        current.resume(suspended)
        assert current.get_transaction() is tx
        current.commit()

    def test_suspend_empty_returns_none(self, current):
        assert current.suspend() is None
        current.resume(None)  # tolerated

    def test_resume_completed_rejected(self, current):
        tx = current.begin()
        current.commit()
        with pytest.raises(InvalidTransaction):
            current.resume(tx)

    def test_resume_garbage_rejected(self, current):
        with pytest.raises(InvalidTransaction):
            current.resume("not a transaction")

    def test_get_control(self, current):
        assert current.get_control() is None
        current.begin()
        control = current.get_control()
        assert control.get_coordinator().get_status() is TransactionStatus.ACTIVE
        current.rollback()


class TestPropagation:
    @pytest.fixture
    def deployment(self, factory):
        orb = Orb()
        current = TransactionCurrent(factory)
        install_transaction_service(orb, current)
        node = orb.create_node("server")
        return orb, node, current

    def test_servant_sees_callers_transaction(self, deployment, factory):
        orb, node, current = deployment

        class TxProbe(Servant):
            def observe(self):
                tx = current.get_transaction()
                return tx.tid if tx else None

        ref = node.activate(TxProbe())
        tx = current.begin()
        assert ref.invoke("observe") == tx.tid
        current.commit()
        assert ref.invoke("observe") is None

    def test_association_restored_after_dispatch(self, deployment):
        orb, node, current = deployment

        class Noop(Servant):
            def run(self):
                return True

        ref = node.activate(Noop())
        tx = current.begin()
        ref.invoke("run")
        assert current.get_transaction() is tx
        current.commit()

    def test_association_restored_after_remote_exception(self, deployment):
        orb, node, current = deployment

        class Failing(Servant):
            def run(self):
                raise RuntimeError("server-side failure")

        ref = node.activate(Failing())
        tx = current.begin()
        with pytest.raises(Exception):
            ref.invoke("run")
        assert current.get_transaction() is tx
        current.rollback()

    def test_servant_work_joins_transaction(self, deployment, factory):
        orb, node, current = deployment
        cell = TransactionalCell("remote-cell", 0, factory)

        class Writer(Servant):
            def bump(self):
                tx = current.get_transaction()
                cell.write(tx, cell.read(tx) + 1)
                return cell.read(tx)

        ref = node.activate(Writer())
        current.begin()
        assert ref.invoke("bump") == 1
        assert ref.invoke("bump") == 2
        assert cell.read() == 0, "uncommitted so far"
        current.commit()
        assert cell.read() == 2

    def test_rollback_undoes_remote_work(self, deployment, factory):
        orb, node, current = deployment
        cell = TransactionalCell("remote-cell-2", 0, factory)

        class Writer(Servant):
            def bump(self):
                tx = current.get_transaction()
                cell.write(tx, cell.read(tx) + 1)

        ref = node.activate(Writer())
        current.begin()
        ref.invoke("bump")
        current.rollback()
        assert cell.read() == 0


class TestTimeouts:
    def test_deadline_expiry_via_timer(self):
        clock = SimulatedClock()
        factory = TransactionFactory(clock=clock)
        tx = factory.create(timeout=10.0)
        clock.advance(11.0)
        assert tx.status is TransactionStatus.ROLLED_BACK

    def test_commit_before_deadline_fine(self):
        clock = SimulatedClock()
        factory = TransactionFactory(clock=clock)
        tx = factory.create(timeout=10.0)
        clock.advance(5.0)
        tx.commit()
        assert tx.status is TransactionStatus.COMMITTED

    def test_expire_timeouts_sweep(self):
        clock = SimulatedClock()
        factory = TransactionFactory(clock=clock)
        # Build transactions without registering clock timers by advancing
        # the clock manually past the deadline, then sweeping.
        tx = factory.create(timeout=5.0)
        clock._now = 6.0  # move time without firing timers
        expired = factory.expire_timeouts()
        assert expired == [tx.tid]
        assert tx.status is TransactionStatus.ROLLED_BACK

    def test_commit_after_deadline_rolls_back(self):
        clock = SimulatedClock()
        factory = TransactionFactory(clock=clock)
        tx = factory.create(timeout=5.0)
        clock._now = 6.0
        with pytest.raises(TransactionRolledBack):
            tx.commit()

    def test_no_timeout_never_expires(self):
        clock = SimulatedClock()
        factory = TransactionFactory(clock=clock)
        tx = factory.create()
        clock.advance(10_000)
        assert factory.expire_timeouts() == []
        assert tx.status is TransactionStatus.ACTIVE
