"""Hashed hierarchical timer wheel (control-plane deadline engine).

The Activity Service polices activity and transaction timeouts (§3.4).
The naive implementation sweeps *every* live activity on each
``expire_timeouts`` call, so policing cost grows with the live
population.  This module provides the classic alternative from the
Varghese & Lauck timer-facility design: a **hashed hierarchical timer
wheel** where arming, cancelling and re-arming a timer are O(1)
amortized and an expiry sweep touches only the timers that are actually
due (plus a bounded amount of per-tick cursor work), so expiry cost is
proportional to *expiring* timers, not live ones.

Layout: ``levels`` wheels of ``wheel_size`` slots each.  Level 0 slots
span one ``tick`` of simulated/real seconds, level 1 slots span
``wheel_size`` ticks, level *i* slots span ``wheel_size**i`` ticks;
timers beyond the last level wait in an overflow list.  As the cursor
crosses a higher-level slot boundary that slot's timers *cascade* down
into finer wheels, so every timer is in a level-0 slot by the time it is
due.  Bucketing never costs precision: the current slot is filtered by
exact deadline, so a sub-tick deadline still fires (or is held back, in
``strict`` mode) at exactly the right comparison.

Integration points (see :mod:`repro.util.clock`):

- ``SimulatedClock.attach_wheel(wheel)`` replaces the clock's heapq
  timer path: ``call_at`` routes into the wheel and ``advance`` drives
  ``advance_to`` so timers fire in ``(deadline, schedule order)`` order
  during time travel, exactly like the heap did;
- ``WallClock(wheel=...)`` ticks the wheel lazily on ``now()`` (and on
  an explicit ``tick()``), which is how a wall-clock deployment gets
  timer service without a background thread;
- poll-style owners (:class:`~repro.core.manager.ActivityManager`) keep
  a private wheel and call ``advance_to(now, strict=True)`` from their
  existing sweep entry point, preserving sweep-time semantics.

Timers scheduled *by a firing callback* inside the same advance window
fire within that same ``advance_to`` call, after the already-due timers
of the tick being processed.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Any, Callable, Deque, List, Optional

from repro.exceptions import InvalidStateError

_SCHEDULED = 0
_READY = 1
_FIRED = 2
_CANCELLED = 3


class TimerHandle:
    """One armed timer.  Cancel through :meth:`cancel`; re-arm by
    scheduling a fresh handle (or :meth:`HierarchicalTimerWheel.reschedule`)."""

    __slots__ = ("deadline", "seq", "callback", "payload", "_state", "_wheel")

    def __init__(
        self,
        deadline: float,
        seq: int,
        callback: Optional[Callable[[], None]],
        payload: Any,
        wheel: "HierarchicalTimerWheel",
    ) -> None:
        self.deadline = deadline
        self.seq = seq
        self.callback = callback
        self.payload = payload
        self._state = _SCHEDULED
        self._wheel = wheel

    @property
    def cancelled(self) -> bool:
        return self._state == _CANCELLED

    @property
    def fired(self) -> bool:
        return self._state == _FIRED

    @property
    def active(self) -> bool:
        """True while the timer is armed and has neither fired nor been
        cancelled."""
        return self._state in (_SCHEDULED, _READY)

    def cancel(self) -> bool:
        """Disarm this timer; True if it was still pending."""
        return self._wheel._cancel(self)

    def __repr__(self) -> str:
        state = {0: "scheduled", 1: "ready", 2: "fired", 3: "cancelled"}[self._state]
        return f"TimerHandle(deadline={self.deadline}, seq={self.seq}, {state})"


class HierarchicalTimerWheel:
    """O(1)-amortized timer facility with hierarchical cascading.

    Thread-safe: arming and cancelling may race an ``advance_to`` from
    another thread (the sharded begin/complete paths do exactly that).
    Callbacks are invoked *outside* the wheel's lock, one at a time, in
    ``(deadline, seq)`` order.
    """

    def __init__(
        self,
        tick: float = 1.0,
        wheel_size: int = 64,
        levels: int = 3,
        start: float = 0.0,
    ) -> None:
        if tick <= 0:
            raise ValueError("tick must be positive")
        if wheel_size < 2:
            raise ValueError("wheel_size must be at least 2")
        if levels < 1:
            raise ValueError("levels must be at least 1")
        if start < 0:
            raise ValueError("wheel cannot start before time zero")
        self._tick = tick
        self._size = wheel_size
        self._levels = levels
        self._slots: List[List[List[TimerHandle]]] = [
            [[] for _ in range(wheel_size)] for _ in range(levels)
        ]
        self._overflow: List[TimerHandle] = []
        self._cursor = int(start // tick)
        self._now = float(start)
        self._count = 0
        self._seq = itertools.count()
        self._ready: Deque[TimerHandle] = deque()
        self._lock = threading.RLock()
        # Invoked (fire time) just before each callback runs; a
        # SimulatedClock binds this to keep `now()` in step with the
        # timer being fired.
        self.on_fire_time: Optional[Callable[[float], None]] = None
        self.scheduled = 0
        self.fired = 0
        self.cancelled = 0
        self.cascades = 0

    # -- introspection --------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    @property
    def tick(self) -> float:
        return self._tick

    @property
    def pending(self) -> int:
        """Number of armed (neither fired nor cancelled) timers."""
        return self._count

    def next_deadline(self) -> Optional[float]:
        """Earliest pending deadline (O(pending) scan; None when idle)."""
        with self._lock:
            best: Optional[float] = None
            for handle in self._iter_pending():
                if best is None or handle.deadline < best:
                    best = handle.deadline
            return best

    def _iter_pending(self):
        for handle in self._ready:
            if handle._state == _READY:
                yield handle
        for level in self._slots:
            for slot in level:
                for handle in slot:
                    if handle._state == _SCHEDULED:
                        yield handle
        for handle in self._overflow:
            if handle._state == _SCHEDULED:
                yield handle

    # -- arming ---------------------------------------------------------------

    def schedule_at(
        self,
        when: float,
        callback: Optional[Callable[[], None]] = None,
        payload: Any = None,
    ) -> TimerHandle:
        """Arm a timer for absolute time ``when`` (>= the wheel's now)."""
        with self._lock:
            if when < self._now:
                raise InvalidStateError(
                    f"cannot schedule timer in the past ({when} < {self._now})"
                )
            handle = TimerHandle(when, next(self._seq), callback, payload, self)
            self._place(handle)
            self._count += 1
            self.scheduled += 1
            return handle

    def schedule_after(
        self,
        delay: float,
        callback: Optional[Callable[[], None]] = None,
        payload: Any = None,
    ) -> TimerHandle:
        if delay < 0:
            raise ValueError("cannot schedule a negative delay")
        with self._lock:
            return self.schedule_at(self._now + delay, callback, payload)

    def reschedule(self, handle: TimerHandle, when: float) -> TimerHandle:
        """Cancel ``handle`` and arm a fresh timer with the same callback
        and payload at ``when`` (the re-arm half of cancel/re-arm)."""
        with self._lock:
            handle.cancel()
            return self.schedule_at(when, handle.callback, handle.payload)

    def _cancel(self, handle: TimerHandle) -> bool:
        with self._lock:
            if handle._state not in (_SCHEDULED, _READY):
                return False
            handle._state = _CANCELLED
            self._count -= 1
            self.cancelled += 1
            return True

    def _place(self, handle: TimerHandle) -> None:
        """Slot ``handle`` by distance-to-due; lock held by caller."""
        tick_index = int(handle.deadline // self._tick)
        if tick_index < self._cursor:
            tick_index = self._cursor
        delta = tick_index - self._cursor
        granularity = 1
        for level in range(self._levels):
            if delta < granularity * self._size:
                slot = (tick_index // granularity) % self._size
                self._slots[level][slot].append(handle)
                return
            granularity *= self._size
        self._overflow.append(handle)

    # -- expiry ---------------------------------------------------------------

    def advance_to(self, target: float, strict: bool = False) -> List[TimerHandle]:
        """Move wheel time to ``target``, firing due timers in
        ``(deadline, seq)`` order; return the fired handles.

        ``strict=False`` fires deadlines ``<= target`` (the simulated
        clock's ``call_at`` contract); ``strict=True`` fires only
        deadlines ``< target``, matching the registry sweeps' historical
        ``now > deadline`` comparison — a timer landing exactly on the
        sweep time stays armed for the next sweep.

        Callbacks run outside the lock; a callback that schedules
        another timer due within ``target`` gets it fired in this same
        call, after the already-due timers of the tick being processed.
        """
        fired: List[TimerHandle] = []
        while True:
            with self._lock:
                handle = self._pop_next_due(target, strict)
                if handle is None:
                    if target > self._now:
                        self._now = target
                    break
                handle._state = _FIRED
                self._count -= 1
                self.fired += 1
                if handle.deadline > self._now:
                    self._now = handle.deadline
            if self.on_fire_time is not None:
                self.on_fire_time(handle.deadline)
            if handle.callback is not None:
                handle.callback()
            fired.append(handle)
        return fired

    def _pop_next_due(self, target: float, strict: bool) -> Optional[TimerHandle]:
        target_tick = int(target // self._tick)
        while True:
            while self._ready:
                handle = self._ready.popleft()
                if handle._state == _READY:
                    return handle
            if self._count == 0:
                # Nothing armed anywhere: jump the cursor without
                # walking (and cascading through) the empty ticks.
                if target_tick > self._cursor:
                    self._cursor = target_tick
                return None
            slot = self._slots[0][self._cursor % self._size]
            if slot:
                if self._cursor < target_tick:
                    # Every resident of a passed tick is due, strict or not.
                    due = [h for h in slot if h._state == _SCHEDULED]
                    del slot[:]
                else:
                    due = []
                    keep = []
                    for handle in slot:
                        if handle._state != _SCHEDULED:
                            continue  # drop cancelled residents
                        is_due = (
                            handle.deadline < target
                            if strict
                            else handle.deadline <= target
                        )
                        (due if is_due else keep).append(handle)
                    slot[:] = keep
                if due:
                    due.sort(key=lambda h: (h.deadline, h.seq))
                    for handle in due:
                        handle._state = _READY
                    self._ready.extend(due)
                    continue
            if self._cursor >= target_tick:
                return None
            self._step_cursor()

    def _step_cursor(self) -> None:
        """Advance one tick, cascading higher wheels at their boundaries."""
        self._cursor += 1
        granularity = self._size
        for level in range(1, self._levels):
            if self._cursor % granularity != 0:
                return
            slot_index = (self._cursor // granularity) % self._size
            residents = self._slots[level][slot_index]
            if residents:
                self._slots[level][slot_index] = []
                for handle in residents:
                    if handle._state == _SCHEDULED:
                        self._place(handle)
                        self.cascades += 1
            granularity *= self._size
        if self._overflow and self._cursor % granularity == 0:
            residents = self._overflow
            self._overflow = []
            for handle in residents:
                if handle._state == _SCHEDULED:
                    self._place(handle)
                    self.cascades += 1


class RecurringTimer:
    """A wheel timer that re-arms itself after every firing.

    This is the background-maintenance hook: pass a callback (e.g. a
    :meth:`~repro.persistence.object_store.SegmentedFileStore.compact_if_needed`
    closure) and it runs every ``interval`` wheel-seconds until
    :meth:`cancel`.  Firing happens whenever the owning wheel advances —
    on ``SimulatedClock.advance`` when the wheel is clock-attached, on
    ``WallClock.now()``/``tick()`` lazily, or during a manager's
    ``expire_timeouts`` sweep for poll-style wheels.
    """

    def __init__(
        self,
        wheel: HierarchicalTimerWheel,
        interval: float,
        callback: Callable[[], None],
        start_after: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.wheel = wheel
        self.interval = interval
        self.callback = callback
        self.fires = 0
        self._cancelled = False
        self._handle = wheel.schedule_after(
            interval if start_after is None else start_after, self._fire
        )

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.fires += 1
        try:
            self.callback()
        finally:
            if not self._cancelled:
                self._handle = self.wheel.schedule_after(self.interval, self._fire)

    @property
    def active(self) -> bool:
        return not self._cancelled

    def cancel(self) -> None:
        """Stop the cycle (idempotent)."""
        self._cancelled = True
        self._handle.cancel()
