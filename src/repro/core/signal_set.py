"""SignalSets — the pluggable protocol intelligence (§3.2.3).

The paper's IDL::

    interface SignalSet {
        readonly attribute string signal_set_name;
        Signal  get_signal(inout boolean lastSignal);
        Outcome get_outcome() raises(SignalSetActive);
        boolean set_response(in Outcome response, out boolean nextSignal)
                             raises(SignalSetInactive);
        void set_completion_status(in CompletionStatus cs);
        CompletionStatus get_completion_status();
    };

Pythonic mapping (documented in DESIGN.md):

- ``get_signal()`` returns ``(signal, last)``; ``(None, True)`` means the
  set has nothing (more) to send;
- ``set_response(outcome)`` returns True when the set wants to *abandon*
  the current broadcast and deliver a fresh signal immediately (how 2PC
  pivots from ``prepare`` to ``rollback`` on a no-vote);
- the fig. 7 Waiting → GetSignal → End state machine is enforced by
  :class:`GuardedSignalSet`, which the coordinator wraps around every set.
  Misuse raises the spec exceptions ``SignalSetActive`` /
  ``SignalSetInactive``.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Tuple

from repro.core.exceptions import SignalSetActive, SignalSetInactive
from repro.core.signals import Outcome, Signal
from repro.core.status import CompletionStatus, SignalSetState


class SignalSet(abc.ABC):
    """Protocol driver: produces signals, digests responses."""

    signal_set_name: str = "signal-set"

    @abc.abstractmethod
    def get_signal(self) -> Tuple[Optional[Signal], bool]:
        """Return ``(signal, last)``; ``(None, True)`` ends the set."""

    @abc.abstractmethod
    def get_outcome(self) -> Outcome:
        """Collated result of the whole interaction."""

    def set_response(self, response: Outcome) -> bool:
        """Digest one action's outcome; True requests an immediate new signal."""
        return False

    def set_completion_status(self, status: CompletionStatus) -> None:
        """Tell the set the activity's completion status before it runs."""
        self._completion_status = status

    def get_completion_status(self) -> CompletionStatus:
        return getattr(self, "_completion_status", CompletionStatus.SUCCESS)


class GuardedSignalSet:
    """State-machine enforcement wrapper (fig. 7) around a SignalSet.

    The guard *is* a SignalSet from the coordinator's point of view and
    additionally exposes :attr:`state`.  Transitions:

    - WAITING --get_signal--> GET_SIGNAL (or END when nothing to send);
    - GET_SIGNAL --get_signal/set_response--> GET_SIGNAL;
    - the guard moves to END when the set reports its last signal's
      broadcast is finished, or when ``get_outcome`` is served;
    - any driving call in END raises :class:`SignalSetInactive`;
    - ``get_outcome`` in WAITING/GET_SIGNAL with unfinished signalling
      raises :class:`SignalSetActive`.

    The guard (and the set it wraps) is deliberately single-threaded:
    even under a parallel broadcast executor, only the coordinator's
    collector thread calls ``set_response``/``get_signal``/``get_outcome``
    (see :mod:`repro.core.broadcast`), so no locking is needed here.
    """

    def __init__(self, inner: SignalSet) -> None:
        self.inner = inner
        self.state = SignalSetState.WAITING
        self._last_delivered = False

    @property
    def signal_set_name(self) -> str:
        return self.inner.signal_set_name

    def get_signal(self) -> Tuple[Optional[Signal], bool]:
        if self.state is SignalSetState.END:
            raise SignalSetInactive(
                f"SignalSet {self.signal_set_name!r} already ended; sets are not reusable"
            )
        signal, last = self.inner.get_signal()
        if signal is None:
            self.state = SignalSetState.END
            self._last_delivered = True
            return None, True
        self.state = SignalSetState.GET_SIGNAL
        self._last_delivered = bool(last)
        return signal, bool(last)

    def set_response(self, response: Outcome) -> bool:
        if self.state is SignalSetState.END:
            raise SignalSetInactive(
                f"set_response on ended SignalSet {self.signal_set_name!r}"
            )
        if self.state is SignalSetState.WAITING:
            raise SignalSetInactive(
                f"set_response before any signal from {self.signal_set_name!r}"
            )
        return bool(self.inner.set_response(response))

    def finish_broadcast(self) -> bool:
        """Coordinator hook: current signal fully broadcast.

        Returns True when the set is now finished (last signal done).
        """
        if self._last_delivered and self.state is not SignalSetState.END:
            self.state = SignalSetState.END
            return True
        return self.state is SignalSetState.END

    def get_outcome(self) -> Outcome:
        if self.state is SignalSetState.WAITING:
            # Fig. 7: a set that was never driven has not finished
            # signalling — collating it would silently skip the protocol.
            raise SignalSetActive(
                f"SignalSet {self.signal_set_name!r} has not been driven yet"
            )
        if self.state is SignalSetState.GET_SIGNAL and not self._last_delivered:
            raise SignalSetActive(
                f"SignalSet {self.signal_set_name!r} is still signalling"
            )
        self.state = SignalSetState.END
        return self.inner.get_outcome()

    def set_completion_status(self, status: CompletionStatus) -> None:
        self.inner.set_completion_status(status)

    def get_completion_status(self) -> CompletionStatus:
        return self.inner.get_completion_status()

    def __repr__(self) -> str:
        return f"GuardedSignalSet({self.signal_set_name}, {self.state.name})"


class SequenceSignalSet(SignalSet):
    """Base for protocols that send a fixed sequence of signals.

    Subclasses (or callers) provide the ordered signal names; responses
    are collected per signal.  ``on_response`` may be overridden to steer
    (e.g. abandon the sequence).  The default outcome reports success when
    no action returned an error.
    """

    def __init__(self, signal_set_name: str, signal_names: Sequence[str]) -> None:
        self.signal_set_name = signal_set_name
        self._names: List[str] = list(signal_names)
        self._index = -1
        self.responses: List[Tuple[str, Outcome]] = []

    def current_signal_name(self) -> Optional[str]:
        if 0 <= self._index < len(self._names):
            return self._names[self._index]
        return None

    def make_signal(self, name: str) -> Signal:
        """Hook: build the Signal for ``name`` (override to attach data)."""
        return Signal(signal_name=name, signal_set_name=self.signal_set_name)

    def get_signal(self) -> Tuple[Optional[Signal], bool]:
        self._index += 1
        if self._index >= len(self._names):
            return None, True
        last = self._index == len(self._names) - 1
        return self.make_signal(self._names[self._index]), last

    def set_response(self, response: Outcome) -> bool:
        name = self.current_signal_name() or "?"
        self.responses.append((name, response))
        return self.on_response(name, response)

    def on_response(self, signal_name: str, response: Outcome) -> bool:
        """Hook: return True to abandon the broadcast for a new signal."""
        return False

    def get_outcome(self) -> Outcome:
        errors = [response for _, response in self.responses if response.is_error]
        if errors:
            return Outcome.error(data=[e.name for e in errors])
        return Outcome.done(data=len(self.responses))
