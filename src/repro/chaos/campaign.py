"""The chaos campaign driver: seed in, verdict out, replayable always.

``run_campaign(seed)`` builds a fresh :class:`~repro.chaos.world.ChaosWorld`,
draws a :class:`~repro.chaos.schedule.ChaosSchedule` and a workload from
independent forks of the seed, interleaves them step by step (inject the
step's due fault events, run one workload operation, tick the simulated
clock), then quiesces the world — heal everything, restart the dead,
drive recovery to a fixpoint — and evaluates the invariant checkers.

Everything observable about a run is a pure function of
``(seed, config)``: the event schedule, the op stream, every transport
fault coin-flip (the bridge's rng is a fork of the same seed) and hence
the final trace.  A failing seed from CI replays locally to the
identical trace — ``run_campaign(seed).trace`` — which is the entire
debugging story for chaos findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.util.rng import SeededRng

from repro.chaos.invariants import (
    InvariantChecker,
    InvariantViolation,
    default_checkers,
    run_checkers,
)
from repro.chaos.schedule import ChaosEvent, ChaosProfile, ChaosSchedule
from repro.chaos.workload import OpResult, WorkloadRunner
from repro.chaos.world import ChaosWorld

#: Simulated seconds between workload steps; chosen well under the
#: failure-detector heartbeat interval so detection latency is measured
#: in steps, not quantised away.
STEP_TICK = 0.05


@dataclass
class CampaignConfig:
    """Shape of one campaign run (shared by every seed in a sweep)."""

    steps: int = 40
    domain_names: Sequence[str] = ("A", "B")
    accounts_per_domain: int = 2
    opening_balance: float = 100.0
    profile: ChaosProfile = field(default_factory=ChaosProfile)
    failure_detection: bool = True
    mix: Optional[Dict[str, float]] = None
    quiesce_rounds: int = 12
    # replicas > 1 runs every domain on quorum-replicated WAL/cell
    # stores (see ChaosWorld); pair with a profile that draws
    # replica_loss/disk_wipe events so the redundancy is actually
    # attacked.
    replicas: int = 1
    write_quorum: Optional[int] = None


@dataclass
class CampaignResult:
    """Everything a failing seed needs to be triaged and replayed."""

    seed: int
    ops: List[OpResult]
    trace: List[str]
    violations: List[InvariantViolation]
    quiesced: bool
    world_state: Dict[str, Any]

    @property
    def passed(self) -> bool:
        return self.quiesced and not self.violations

    def outcome_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for op in self.ops:
            counts[op.outcome] = counts.get(op.outcome, 0) + 1
        return counts

    def summary(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "passed": self.passed,
            "quiesced": self.quiesced,
            "ops": len(self.ops),
            "outcomes": self.outcome_counts(),
            "violations": [str(v) for v in self.violations],
        }


def apply_event(world: ChaosWorld, event: ChaosEvent) -> str:
    """Inject one scheduled fault; returns a trace line fragment."""
    kind = event.kind
    if kind == "crash":
        world.crash(event.target[0])
    elif kind == "restart":
        error = world.restart(event.target[0])
        if error is not None:
            return f"{event.describe()} (recovery pending: {error})"
    elif kind == "failpoint":
        domain = world.domain(event.target[0])
        if domain.alive:
            domain.factory.failpoints.arm(event.detail)
    elif kind == "replica_loss":
        note = world.replica_loss(event.target[0], int(event.value))
        if note is None:
            return f"{event.describe()} (skipped: no safe promotion)"
        if note:
            return f"{event.describe()} (primary failed over)"
    elif kind == "replica_heal":
        world.replica_heal(event.target[0], int(event.value))
    elif kind == "disk_wipe":
        if not world.domains[event.target[0]].alive:
            # A wipe while the process is down is indistinguishable from
            # wiping at reboot, and stacking it on an existing stale
            # replica could leave no fresh copy — outside the invariant's
            # "a quorum survives" precondition.  The reboot-election path
            # is covered by the ReplicationChecker's disk-loss drill.
            return f"{event.describe()} (skipped: domain down)"
        if world.disk_wipe(event.target[0], int(event.value)):
            return f"{event.describe()} (primary wiped; promoted a follower)"
    elif kind in ("partition", "heal", "flaky", "clear_faults") and not all(
        world.domains[d].alive for d in event.target
    ):
        # The bridge only resolves links between *connected* domains; a
        # fault window overlapping a crash is left for quiesce to clear.
        return f"{event.describe()} (skipped: endpoint down)"
    elif kind == "partition":
        world.bridge.partition(*event.target)
    elif kind == "heal":
        world.bridge.heal(*event.target)
    elif kind == "flaky":
        plan = world.link_plan(*event.target)
        if event.detail == "drops":
            plan.drop_probability = event.value
        elif event.detail == "duplicates":
            plan.duplicate_probability = event.value
        else:
            plan.latency = event.value
            plan.jitter = event.value / 2.0
    elif kind == "clear_faults":
        plan = world.link_plan(*event.target)
        plan.drop_probability = 0.0
        plan.duplicate_probability = 0.0
        plan.latency = 0.0
        plan.jitter = 0.0
    elif kind == "clock_jump":
        world.clock.advance(event.value)
        for domain in world.domains.values():
            if domain.alive:
                domain.factory.expire_timeouts()
                domain.manager.expire_timeouts()
    return event.describe()


def run_campaign(
    seed: int, config: Optional[CampaignConfig] = None
) -> CampaignResult:
    """Run one seeded chaos campaign end to end and judge it."""
    config = config if config is not None else CampaignConfig()
    root = SeededRng(seed)
    world = ChaosWorld(
        seed=seed,
        domain_names=config.domain_names,
        accounts_per_domain=config.accounts_per_domain,
        opening_balance=config.opening_balance,
        failure_detection=config.failure_detection,
        replicas=config.replicas,
        write_quorum=config.write_quorum,
    )
    schedule = ChaosSchedule.draw(
        root.fork("schedule"), config.steps, config.domain_names, config.profile
    )
    runner = WorkloadRunner(world, root.fork("workload"), mix=config.mix)
    trace: List[str] = []
    for step in range(config.steps):
        for event in schedule.due(step):
            trace.append(f"[{step}] event {apply_event(world, event)}")
        result = runner.run_op(step)
        trace.append(f"[{step}] op {result.describe()}")
        world.clock.advance(STEP_TICK)
    quiesced = world.quiesce(max_rounds=config.quiesce_rounds)
    trace.append(f"[quiesce] quiet={quiesced}")
    violations = evaluate(world, runner.ledger)
    if not quiesced:
        violations = [
            InvariantViolation(
                "quiescence",
                "world failed to quiesce within the round budget",
                {"state": world.describe()},
            )
        ] + violations
    return CampaignResult(
        seed=seed,
        ops=list(runner.ledger),
        trace=trace,
        violations=violations,
        quiesced=quiesced,
        world_state=world.describe(),
    )


def evaluate(
    world: ChaosWorld,
    ledger: Sequence[OpResult],
    checkers: Optional[Sequence[InvariantChecker]] = None,
) -> List[InvariantViolation]:
    return run_checkers(
        world, ledger, checkers if checkers is not None else default_checkers()
    )


def run_sweep(
    seeds: Sequence[int], config: Optional[CampaignConfig] = None
) -> List[CampaignResult]:
    """Run many seeds; the caller decides what to do with failures."""
    return [run_campaign(seed, config) for seed in seeds]
