#!/usr/bin/env python
"""cProfile the fig16 hot-path engine and report the top-20 hot spots.

Runs the same single-thread invocation loop as the fig16 raw-throughput
acceptance test under cProfile (struct codec + caches + fast path) and
writes the top 20 functions by cumulative time to
``results/profile_top20.txt`` — uploaded as a CI artifact so a perf
regression caught by ``check_bench_regression.py`` comes with the
profile that explains it.

Usage:
    PYTHONPATH=src python benchmarks/profile_fastpath.py [calls]
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)

from bench_fig16_invocation_fastpath import run_raw_engine  # noqa: E402


def main() -> int:
    calls = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    run_raw_engine("struct", True, min(100, calls))  # warm import/JIT paths
    profiler = cProfile.Profile()
    profiler.enable()
    rate, _, _ = run_raw_engine("struct", True, calls)
    profiler.disable()

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(20)
    report = (
        f"fig16 hot-path engine profile ({calls} calls, "
        f"{rate:.0f} calls/s under cProfile)\n\n" + buffer.getvalue()
    )

    results = os.path.join(HERE, "results")
    os.makedirs(results, exist_ok=True)
    out_path = os.path.join(results, "profile_top20.txt")
    with open(out_path, "w") as handle:
        handle.write(report)
    print(report)
    print(f"written: {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
