"""Implicit activity association: the Activity Service ``Current``.

Maintains the stack of activities associated with the calling logical
thread.  ``begin`` nests: a new activity's parent is the currently
associated one.  ``suspend``/``resume`` detach and re-attach, as required
for long-running activities (§3.1: "Activities can run over long periods
of time and can thus be suspended and then resumed later").
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.core.activity import Activity
from repro.core.exceptions import InvalidActivityState, NoActivity
from repro.core.signals import Outcome
from repro.core.status import ActivityStatus, CompletionStatus


class ActivityCurrent:
    """Per-deployment implicit activity context."""

    def __init__(self, manager: Any) -> None:
        self.manager = manager
        self._stack: List[Activity] = []

    # -- demarcation ---------------------------------------------------------

    def begin(
        self,
        name: Optional[str] = None,
        timeout: float = 0.0,
        executor: Optional[Any] = None,
    ) -> Activity:
        """Begin a new activity nested in the current one (if any).

        ``executor`` overrides the manager-wide broadcast executor for
        this one activity, as on :meth:`ActivityManager.begin`.
        """
        parent = self._stack[-1] if self._stack else None
        activity = self.manager.begin(
            name=name, parent=parent, timeout=timeout, executor=executor
        )
        self._stack.append(activity)
        return activity

    def complete(self, status: Optional[CompletionStatus] = None) -> Outcome:
        """Complete the current activity and pop the association."""
        activity = self._require_current()
        try:
            return activity.complete(status)
        finally:
            if self._stack and self._stack[-1] is activity:
                self._stack.pop()

    def complete_with_status(self, status: CompletionStatus) -> Outcome:
        return self.complete(status)

    # -- completion status ------------------------------------------------------

    def set_completion_status(self, status: CompletionStatus) -> None:
        self._require_current().set_completion_status(status)

    def get_completion_status(self) -> CompletionStatus:
        return self._require_current().get_completion_status()

    def get_status(self) -> Optional[ActivityStatus]:
        activity = self.current_activity()
        return activity.status if activity is not None else None

    # -- association ---------------------------------------------------------------

    def current_activity(self) -> Optional[Activity]:
        return self._stack[-1] if self._stack else None

    @property
    def depth(self) -> int:
        return len(self._stack)

    def suspend(self) -> Optional[Activity]:
        """Detach and return the whole current activity (None if none).

        Only the *association* is suspended; the activity object keeps
        running state.  Use ``Activity.suspend`` to pause the activity
        itself.
        """
        if not self._stack:
            return None
        return self._stack.pop()

    def resume(self, activity: Optional[Activity]) -> None:
        if activity is None:
            return
        if not isinstance(activity, Activity):
            raise InvalidActivityState(f"cannot resume {activity!r}")
        if activity.status.is_terminal:
            raise InvalidActivityState(
                f"cannot resume completed activity {activity.activity_id}"
            )
        self._stack.append(activity)

    def _require_current(self) -> Activity:
        if not self._stack:
            raise NoActivity("no activity associated with this thread")
        return self._stack[-1]
