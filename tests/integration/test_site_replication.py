"""Site-layer replication wiring.

Three surfaces, bottom up: the ``replication`` config block folding
into :class:`~repro.config.ReplicationConfig` (with the data_dir
interaction validated at config time), a :class:`SiteRuntime` whose WAL
and cell store come up quorum-replicated over per-replica media (and
recover across a reboot of the same data_dir), and the fabric-hosted
follower path — a :class:`RemoteReplicaStore` speaking the ``replica``
control op against a live peer daemon, including serving as a genuine
quorum member of a :class:`ReplicatedStore`.
"""

import threading

import pytest

from repro.config import ConfigValidationError
from repro.orb.site import (
    RemoteReplicaStore,
    SiteClient,
    SiteConfig,
    SiteRuntime,
)
from repro.persistence import (
    MemoryStore,
    ReplicatedStore,
    ReplicatedWAL,
    ReplicationError,
    StoreError,
)


def replicated_config(tmp_path, site_id="site-r", **replication):
    block = {"replicas": 3, "backend": "segmented"}
    block.update(replication)
    return SiteConfig(
        site_id=site_id,
        port=0,
        data_dir=str(tmp_path / site_id),
        replication=block,
    )


class TestReplicationConfigFolding:
    def test_empty_block_means_unreplicated(self, tmp_path):
        config = SiteConfig(site_id="s", data_dir=str(tmp_path))
        assert config.replication_config() is None

    def test_single_copy_block_means_unreplicated(self, tmp_path):
        config = SiteConfig(
            site_id="s", data_dir=str(tmp_path), replication={"replicas": 1}
        )
        assert config.replication_config() is None

    def test_folds_quorum_and_backend(self, tmp_path):
        config = replicated_config(tmp_path, replicas=5, write_quorum=4)
        folded = config.replication_config()
        assert folded is not None
        assert (folded.replicas, folded.effective_quorum()) == (5, 4)
        assert folded.backend == "segmented"

    def test_majority_quorum_by_default(self, tmp_path):
        folded = replicated_config(tmp_path, replicas=5).replication_config()
        assert folded.effective_quorum() == 3

    def test_bad_backend_rejected_at_config_time(self, tmp_path):
        with pytest.raises(ConfigValidationError):
            replicated_config(tmp_path, backend="punchcards")

    def test_unknown_key_rejected_at_config_time(self, tmp_path):
        with pytest.raises(ConfigValidationError):
            replicated_config(tmp_path, read_quorum=2)

    def test_durable_backend_requires_data_dir(self):
        with pytest.raises(ConfigValidationError):
            SiteConfig(site_id="s", replication={"replicas": 3})

    def test_memory_backend_needs_no_data_dir(self):
        config = SiteConfig(
            site_id="s", replication={"replicas": 3, "backend": "memory"}
        )
        assert config.replication_config().backend == "memory"

    def test_survives_json_round_trip(self, tmp_path):
        config = replicated_config(tmp_path, replicas=3, write_quorum=2)
        clone = SiteConfig.from_dict(config.to_dict())
        assert clone.replication_config() == config.replication_config()


class TestReplicatedRuntime:
    @pytest.fixture
    def runtime_factory(self):
        runtimes = []

        def build(config):
            runtime = SiteRuntime(config)
            runtimes.append(runtime)
            return runtime

        yield build
        for runtime in runtimes:
            runtime.stop()
            runtime.transport.close()

    def test_boot_wires_replicated_layers(self, tmp_path, runtime_factory):
        runtime = runtime_factory(replicated_config(tmp_path))
        assert isinstance(runtime.wal, ReplicatedWAL)
        assert isinstance(runtime.cell_store, ReplicatedStore)
        assert len(runtime.wal_media) == 3
        assert len(runtime.cell_media) == 3

    def test_debug_dump_reports_replication_health(self, tmp_path, runtime_factory):
        runtime = runtime_factory(replicated_config(tmp_path, write_quorum=2))
        health = runtime.debug_dump()["replication"]
        assert health["enabled"] is True
        assert health["replicas"] == 3
        assert health["write_quorum"] == 2
        assert health["wal"]["quorum_ok"] is True
        assert health["cells"]["under_replicated"] is False
        # per-replica lag is part of the surface the chaos auditor reads
        for replica in health["cells"]["replicas"].values():
            assert replica["lag"] == 0

    def test_unreplicated_runtime_reports_disabled(self, tmp_path, runtime_factory):
        config = SiteConfig(site_id="solo", data_dir=str(tmp_path / "solo"))
        runtime = runtime_factory(config)
        assert runtime.debug_dump()["replication"] == {"enabled": False}

    def test_reboot_recovers_from_replica_media(self, tmp_path, runtime_factory):
        config = replicated_config(tmp_path)
        first = runtime_factory(config)
        first.wal.append("decision", tid="t1", outcome="commit")
        first.wal.force()
        first.cell_store.put("acct", {"balance": 90})
        first.stop()
        first.transport.close()

        second = runtime_factory(replicated_config(tmp_path))
        assert [(r.kind, r.payload["tid"]) for r in second.wal.records()] == [
            ("decision", "t1")
        ]
        assert second.cell_store.get("acct") == {"balance": 90}
        assert second.debug_dump()["replication"]["wal"]["quorum_ok"] is True

    def test_reboot_recovers_after_primary_disk_wipe(
        self, tmp_path, runtime_factory
    ):
        """Losing the primary's disk between boots must not lose acked
        state: the reboot elects the freshest surviving replica."""
        import shutil

        config = replicated_config(tmp_path)
        first = runtime_factory(config)
        first.cell_store.put("acct", {"balance": 55})
        first.wal.append("decision", tid="t9", outcome="commit")
        first.wal.force()
        replicas = first.cell_store.health()["replicas"]
        primary = next(
            name.rsplit("-", 1)[1]
            for name, entry in replicas.items()
            if entry["primary"]
        )
        first.stop()
        first.transport.close()

        shutil.rmtree(f"{config.data_dir}/replica-{primary}")
        second = runtime_factory(replicated_config(tmp_path))
        assert second.cell_store.get("acct") == {"balance": 55}
        assert [r.payload["tid"] for r in second.wal.records()] == ["t9"]


class TestRemoteReplicaStore:
    @pytest.fixture
    def host_site(self, tmp_path):
        config = SiteConfig(
            site_id="host-site",
            port=0,
            data_dir=str(tmp_path / "host"),
            poll_interval=0.05,
        )
        runtime = SiteRuntime(config)
        runtime.serve_in_background()
        assert runtime.wait_recovered(timeout=10.0)
        deadline = threading.Event()
        for _ in range(200):
            if runtime.transport.address is not None:
                break
            deadline.wait(0.02)
        assert runtime.transport.address is not None
        yield runtime
        runtime.stop()

    @pytest.fixture
    def client(self, host_site):
        client = SiteClient({"host-site": tuple(host_site.transport.address)})
        yield client
        client.close()

    def test_round_trip(self, client):
        store = RemoteReplicaStore(client.transport, "host-site", "domain-a-cells")
        store.put("k", {"nested": [1, 2]})
        store.put_many({"a": 1, "b": "two"})
        assert store.get("k") == {"nested": [1, 2]}
        assert store.contains("a")
        assert not store.contains("ghost")
        assert store.keys() == ("a", "b", "k")
        store.remove("a")
        assert store.keys() == ("b", "k")

    def test_missing_key_is_plain_store_error(self, client):
        store = RemoteReplicaStore(client.transport, "host-site", "domain-a-cells")
        with pytest.raises(StoreError) as excinfo:
            store.get("ghost")
        assert not isinstance(excinfo.value, ReplicationError)
        with pytest.raises(StoreError):
            store.remove("ghost")

    def test_stores_are_isolated_by_name(self, client):
        alpha = RemoteReplicaStore(client.transport, "host-site", "alpha")
        beta = RemoteReplicaStore(client.transport, "host-site", "beta")
        alpha.put("k", 1)
        assert not beta.contains("k")

    def test_hosted_bytes_survive_host_reboot(self, tmp_path, host_site, client):
        store = RemoteReplicaStore(client.transport, "host-site", "domain-a-cells")
        store.put("k", {"balance": 12})
        host_site.stop()
        rebooted = SiteRuntime(
            SiteConfig(
                site_id="host-site",
                port=0,
                data_dir=str(tmp_path / "host"),
                poll_interval=0.05,
            )
        )
        try:
            rebooted.serve_in_background()
            assert rebooted.wait_recovered(timeout=10.0)
            again = SiteClient(
                {"host-site": tuple(rebooted.transport.address)},
                client_id="client-2",
            )
            try:
                fresh = RemoteReplicaStore(
                    again.transport, "host-site", "domain-a-cells"
                )
                assert fresh.get("k") == {"balance": 12}
            finally:
                again.close()
        finally:
            rebooted.stop()

    def test_unreachable_host_raises_replication_error(self, host_site, client):
        store = RemoteReplicaStore(client.transport, "host-site", "domain-a-cells")
        store.put("k", 1)
        host_site.stop()
        with pytest.raises(ReplicationError):
            store.put("k", 2)

    def test_serves_as_quorum_member(self, client):
        """The deployment shape the class exists for: a ReplicatedStore
        whose second copy lives on another daemon across the fabric."""
        remote = RemoteReplicaStore(client.transport, "host-site", "domain-a-quorum")
        replicated = ReplicatedStore(
            [MemoryStore(), remote], write_quorum=2
        )
        replicated.put("acct", {"balance": 7})
        health = replicated.health()
        assert health["quorum_ok"] is True
        assert health["under_replicated"] is False
        # the remote copy really holds the bytes: a fresh client-side
        # view of the hosted store decodes the acked value
        again = RemoteReplicaStore(client.transport, "host-site", "domain-a-quorum")
        assert again.get("acct") == {"balance": 7}
