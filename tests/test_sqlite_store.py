"""Unit tests for the SQLite-backed object store."""

import pytest

from repro.persistence import SqliteStore
from repro.persistence.object_store import StoreError


@pytest.fixture
def store(tmp_path):
    return SqliteStore(str(tmp_path / "objects.db"))


class TestSqliteStoreContract:
    def test_put_get_roundtrip(self, store):
        store.put("k", [1, "two", {"three": 3}])
        assert store.get("k") == [1, "two", {"three": 3}]

    def test_get_missing(self, store):
        with pytest.raises(StoreError):
            store.get("ghost")

    def test_overwrite(self, store):
        store.put("k", 1)
        store.put("k", 2)
        assert store.get("k") == 2

    def test_remove(self, store):
        store.put("k", 1)
        store.remove("k")
        assert not store.contains("k")
        with pytest.raises(StoreError):
            store.remove("k")

    def test_keys_sorted_and_len(self, store):
        store.put("b", 1)
        store.put("a", 2)
        assert store.keys() == ("a", "b")
        assert len(store) == 2

    def test_values_are_isolated_copies(self, store):
        original = {"list": [1]}
        store.put("k", original)
        original["list"].append(2)
        assert store.get("k") == {"list": [1]}

    def test_only_marshallable_values(self, store):
        with pytest.raises(Exception):
            store.put("k", object())

    def test_items_iteration(self, store):
        store.put("a", 1)
        assert dict(store.items()) == {"a": 1}


class TestSqliteStoreDurability:
    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "objects.db")
        first = SqliteStore(path)
        first.put("k", "persisted")
        first.close()
        assert SqliteStore(path).get("k") == "persisted"

    def test_put_many_is_one_transaction(self, tmp_path):
        path = str(tmp_path / "objects.db")
        store = SqliteStore(path)
        store.put_many({"a": 1, "b": 2, "c": 3})
        assert store.writes == 1  # one transaction for the whole batch
        store.close()
        reopened = SqliteStore(path)
        assert reopened.keys() == ("a", "b", "c")

    def test_failed_batch_publishes_nothing(self, store):
        store.put("keep", 1)
        # the unmarshallable value poisons the whole batch before any row
        # is written: all-or-nothing, like one flush
        with pytest.raises(Exception):
            store.put_many({"a": 1, "b": object()})
        assert store.keys() == ("keep",)

    def test_rejects_unknown_synchronous_mode(self, tmp_path):
        with pytest.raises(StoreError):
            SqliteStore(str(tmp_path / "x.db"), synchronous="TURBO")
