"""Thread-association: the OTS ``Current`` object.

``Current`` keeps the stack of transactions associated with the calling
logical thread, giving the implicit begin/commit/rollback API that
application code (and the Activity Service's transactional periods) uses.
``begin`` inside an active transaction starts a *nested* transaction, as
the CORBA OTS does when subtransactions are supported.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ots.coordinator import Control, Transaction
from repro.ots.exceptions import InvalidTransaction, NoTransaction
from repro.ots.factory import TransactionFactory
from repro.ots.status import TransactionStatus


class TransactionCurrent:
    """Per-deployment implicit transaction context."""

    def __init__(self, factory: TransactionFactory) -> None:
        self.factory = factory
        self._stack: List[Transaction] = []

    # -- demarcation -------------------------------------------------------

    def begin(self, timeout: float = 0.0, name: Optional[str] = None) -> Transaction:
        """Start a transaction; nested if one is already associated."""
        if self._stack:
            tx = self._stack[-1].begin_subtransaction(name=name)
        else:
            tx = self.factory.create(timeout=timeout, name=name)
        self._stack.append(tx)
        return tx

    def commit(self, report_heuristics: bool = True) -> None:
        tx = self._require_current()
        try:
            tx.commit(report_heuristics)
        finally:
            self._pop(tx)

    def rollback(self) -> None:
        tx = self._require_current()
        try:
            tx.rollback()
        finally:
            self._pop(tx)

    def rollback_only(self) -> None:
        self._require_current().rollback_only()

    # -- inspection ---------------------------------------------------------

    def get_transaction(self) -> Optional[Transaction]:
        return self._stack[-1] if self._stack else None

    def get_control(self) -> Optional[Control]:
        tx = self.get_transaction()
        return Control(tx) if tx is not None else None

    def get_status(self) -> TransactionStatus:
        tx = self.get_transaction()
        return tx.status if tx is not None else TransactionStatus.NO_TRANSACTION

    @property
    def depth(self) -> int:
        return len(self._stack)

    # -- suspend/resume ---------------------------------------------------------

    def suspend(self) -> Optional[Transaction]:
        """Detach and return the current transaction (None if none)."""
        if not self._stack:
            return None
        return self._stack.pop()

    def resume(self, tx: Optional[Transaction]) -> None:
        """Re-associate a previously suspended transaction."""
        if tx is None:
            return
        if not isinstance(tx, Transaction):
            raise InvalidTransaction(f"cannot resume {tx!r}")
        if tx.status.is_terminal:
            raise InvalidTransaction(f"cannot resume completed transaction {tx.tid}")
        self._stack.append(tx)

    # -- internals ----------------------------------------------------------------

    def _require_current(self) -> Transaction:
        if not self._stack:
            raise NoTransaction("no transaction associated with this thread")
        return self._stack[-1]

    def _pop(self, tx: Transaction) -> None:
        if self._stack and self._stack[-1] is tx:
            self._stack.pop()
