"""Inter-ORB federation: linking coordination domains.

The paper's activity service is explicitly *federated*: one activity tree
may span several coordination domains (separate ORBs, separate
administrative realms), and a parent coordinator talks to one interposed
subordinate per remote domain rather than to every leaf participant.
This module provides the distribution substrate for that topology:

- every :class:`~repro.orb.core.Orb` may carry a ``domain_id``;
- an :class:`InterOrbBridge` connects two or more ORBs and routes
  invocations whose target node lives in a *different* domain;
- each (domain, domain) pair gets its own :class:`DomainLink` with a
  dedicated :class:`~repro.orb.transport.Transport` — so fault plans
  (partitions!), latency injection and :class:`TransportStats` compose
  *per link*, and cross-domain wire bytes are directly measurable.

A routed invocation crosses three transports::

    caller node --[source orb transport]--> fed:<target-domain>   (gateway)
    domain:<a>  --[link transport]-------> domain:<b>             (the wire)
    fed:<source-domain> --[target orb transport]--> target node

Request bytes are produced once by the *source* ORB's marshaller (the
marshal-once templates of the invocation fast path compose unchanged)
and decoded by the *target* ORB's — ObjectRefs crossing the bridge are
re-bound to the receiving ORB, so a reference that travels A→B and is
later invoked in B routes back across the same bridge.

The bridge also hosts, per domain, a *coordination node* (``fed:<d>``)
on which interposed subordinate coordinators are activated, and a small
service registry through which the domains' activity/transaction
services find each other (see :mod:`repro.core.interposition` and
:mod:`repro.ots.interposition`).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.exceptions import (
    CommunicationError,
    ConfigurationError,
    ObjectNotExist,
    OverloadError,
)
from repro.orb.core import Node, Orb
from repro.orb.membership import FailureDetector, FailureDetectorConfig, PeerState
from repro.orb.reference import ObjectRef
from repro.orb.transport import SimulatedTransport, Transport
from repro.util.admission import TokenBucket
from repro.util.clock import Clock
from repro.util.rng import SeededRng


def coordination_node_id(domain_id: str) -> str:
    """The well-known node id hosting a domain's interposed servants."""
    return f"fed:{domain_id}"


class DomainLink:
    """The wire between two domains: one transport, one fault plan.

    ``transport.fault_plan`` governs only this link; partitioning it
    (via :meth:`InterOrbBridge.partition`) severs *every* cross-domain
    invocation between the pair while intra-domain traffic continues —
    the classic federated-deployment failure mode.  Traffic counters are
    the transport's own :class:`~repro.orb.transport.TransportStats`
    (one source of truth; a partitioned request that never crossed is
    not counted as carried).
    """

    def __init__(self, domain_a: str, domain_b: str, transport: Transport) -> None:
        self.domain_a = domain_a
        self.domain_b = domain_b
        self.transport = transport

    @property
    def stats(self):
        return self.transport.stats

    def endpoint(self, domain_id: str) -> str:
        return f"domain:{domain_id}"

    def describe(self) -> Dict[str, Any]:
        return {
            "domains": sorted((self.domain_a, self.domain_b)),
            "requests": self.stats.requests_sent,
            "bytes_sent": self.stats.bytes_sent,
            "transport": self.transport.describe(),
        }


class InterOrbBridge:
    """Connects ORBs into a federation and routes between them.

    One bridge instance models the half-bridges of a federated CORBA
    deployment.  Connect each ORB with :meth:`connect`; from then on an
    invocation through any member ORB whose target node is unknown
    locally is resolved by domain and carried across the corresponding
    :class:`DomainLink`.

    The bridge needs a clock for per-link latency injection; it defaults
    to the first connected ORB's clock (federation tests and benches
    share one :class:`~repro.util.clock.SimulatedClock` across domains so
    cross-domain latency is simulated deterministically).
    """

    def __init__(self, clock: Optional[Clock] = None, rng: Optional[SeededRng] = None) -> None:
        self._clock = clock
        self._rng = rng if rng is not None else SeededRng(0)
        self._orbs: Dict[str, Orb] = {}
        self._links: Dict[FrozenSet[str], DomainLink] = {}
        self._services: Dict[Tuple[str, str], Any] = {}
        self._auto_domain = 0
        self._detector: Optional[FailureDetector] = None
        # Per-source-domain quota buckets (PR 10): empty by default, so
        # routing stays exactly the historical path until a quota is set.
        self._quotas: Dict[str, TokenBucket] = {}
        self._quota_rejections: Dict[str, int] = {}

    # -- membership ----------------------------------------------------------

    def connect(self, orb: Orb, domain_id: Optional[str] = None) -> str:
        """Join ``orb`` to the federation under ``domain_id``.

        An explicit ``domain_id`` argument must agree with any id the
        ORB already carries (a silent rename would orphan pre-minted
        ``fed:<d>`` references); with no argument the ORB's own id is
        used, and an ORB with neither gets one assigned (``domain-N``).
        Re-connecting the same ORB under its existing domain id is
        idempotent.
        """
        if domain_id is not None and orb.domain_id is not None and domain_id != orb.domain_id:
            raise ConfigurationError(
                f"orb already carries domain id {orb.domain_id!r};"
                f" refusing to rename it to {domain_id!r}"
            )
        if domain_id is None:
            domain_id = orb.domain_id
        if domain_id is None:
            domain_id = f"domain-{self._auto_domain}"
            self._auto_domain += 1
        existing = self._orbs.get(domain_id)
        if existing is not None:
            if existing is orb:
                return domain_id
            raise ConfigurationError(f"domain {domain_id!r} already connected")
        if orb.federation is not None and orb.federation is not self:
            raise ConfigurationError("orb already belongs to another federation")
        orb.domain_id = domain_id
        orb.federation = self
        self._orbs[domain_id] = orb
        if self._clock is None:
            self._clock = orb.clock
        return domain_id

    def disconnect(self, domain_id: str) -> None:
        """Remove a domain (its process died); links and their stats
        survive so a replacement ORB reconnected under the same domain id
        — the restarted deployment — keeps the same wire."""
        orb = self._orbs.pop(domain_id, None)
        if orb is None:
            raise ConfigurationError(f"unknown domain {domain_id!r}")
        orb.federation = None
        for key in [k for k in self._services if k[0] == domain_id]:
            del self._services[key]

    def domains(self) -> Tuple[str, ...]:
        return tuple(sorted(self._orbs))

    def orb_for(self, domain_id: str) -> Orb:
        try:
            return self._orbs[domain_id]
        except KeyError:
            raise ConfigurationError(f"unknown domain {domain_id!r}") from None

    def domain_of_node(self, node_id: str) -> Optional[str]:
        """The domain owning ``node_id``, or None when no member has it.

        Node ids must be federation-unique — an :class:`ObjectRef`
        carries no domain id, so routing keys on the node name alone
        (``Orb.create_node`` refuses collisions for federated ORBs, and
        an ambiguity that slipped in anyway is refused here rather than
        silently routed to an arbitrary owner).
        """
        owners = [domain_id for domain_id, orb in self._orbs.items() if node_id in orb._nodes]
        if len(owners) > 1:
            raise ConfigurationError(
                f"node id {node_id!r} is owned by multiple domains"
                f" ({sorted(owners)}); federated node ids must be unique"
            )
        return owners[0] if owners else None

    def coordination_node(self, domain_id: str) -> Node:
        """Get-or-create the domain's well-known coordination node."""
        orb = self.orb_for(domain_id)
        node_id = coordination_node_id(domain_id)
        if node_id in orb._nodes:
            return orb.node(node_id)
        return orb.create_node(node_id)

    # -- service registry ------------------------------------------------------

    def register_service(self, domain_id: str, name: str, service: Any) -> None:
        """Publish a per-domain service object (activity manager, OTS
        federation service) so peers can find it at interposition time."""
        self._services[(domain_id, name)] = service

    def service(self, domain_id: str, name: str) -> Optional[Any]:
        return self._services.get((domain_id, name))

    # -- links -----------------------------------------------------------------

    def link(self, domain_a: str, domain_b: str) -> DomainLink:
        """The (lazily created) link between two member domains."""
        if domain_a == domain_b:
            raise ConfigurationError("a domain does not link to itself")
        self.orb_for(domain_a)
        self.orb_for(domain_b)
        key = frozenset((domain_a, domain_b))
        existing = self._links.get(key)
        if existing is not None:
            return existing
        pair = tuple(sorted(key))
        transport = SimulatedTransport(
            self._clock, self._rng.fork(f"link:{pair[0]}:{pair[1]}")
        )
        created = DomainLink(pair[0], pair[1], transport)
        self._links[key] = created
        return created

    def links(self) -> List[DomainLink]:
        return [self._links[key] for key in sorted(self._links, key=sorted)]

    def set_link_latency(
        self, domain_a: str, domain_b: str, latency: float, jitter: float = 0.0
    ) -> None:
        plan = self.link(domain_a, domain_b).transport.fault_plan
        plan.latency = latency
        plan.jitter = jitter

    def partition(self, domain_a: str, domain_b: str) -> None:
        """Sever the link between two domains (both directions)."""
        link = self.link(domain_a, domain_b)
        link.transport.fault_plan.partition(link.endpoint(domain_a), link.endpoint(domain_b))

    def heal(self, domain_a: str, domain_b: str) -> None:
        link = self.link(domain_a, domain_b)
        link.transport.fault_plan.heal(link.endpoint(domain_a), link.endpoint(domain_b))

    def heal_all(self) -> None:
        for link in self._links.values():
            link.transport.fault_plan.heal_all()

    # -- link liveness (PR 8 membership layer) ---------------------------------

    def enable_failure_detection(
        self, config: Optional[FailureDetectorConfig] = None
    ) -> FailureDetector:
        """Turn on per-link liveness tracking (off by default — fault
        tests that *want* to block on partitions keep historical
        behaviour).  Every routed invocation feeds the detector: a
        delivered round heartbeats the link, a ``CommunicationError``
        counts against it.  A link marked DOWN fast-fails subsequent
        routes with a typed :class:`CommunicationError` instead of
        re-crossing a dead wire, except for one metered half-open probe
        per ``probe_interval``; the first probe that crosses re-admits
        the link.

        Because link heartbeats come only from routed traffic (there is
        no independent probe thread), the default config disables
        phi-silence latching: an idle-but-healthy link must not accrue
        phi into DOWN and spuriously fast-fail the next burst of
        requests.  Silence still reports SUSPECT; only explicit
        delivery failures (``failure_threshold``) quarantine a link.
        Pass an explicit config to override."""
        if self._clock is None:
            raise ConfigurationError(
                "connect an ORB (or pass a clock) before enabling failure"
                " detection"
            )
        if self._detector is None:
            if config is None:
                config = FailureDetectorConfig(phi_latches_down=False)
            self._detector = FailureDetector(self._clock, config)
        return self._detector

    @property
    def failure_detector(self) -> Optional[FailureDetector]:
        return self._detector

    # -- per-source-domain quotas (PR 10 admission layer) -----------------------

    def set_domain_quota(
        self, domain_id: str, rate: float, burst: Optional[float] = None
    ) -> TokenBucket:
        """Cap cross-domain requests *originating from* ``domain_id``.

        ``rate`` requests/second refill a bucket of ``burst`` tokens
        (default: one second's worth); once dry, further routes from
        that source fast-fail with :class:`OverloadError` before
        touching any wire, so one hot domain cannot starve the
        federation.  Refill is clock-derived, hence deterministic under
        a :class:`~repro.util.clock.SimulatedClock`.
        """
        if self._clock is None:
            raise ConfigurationError(
                "connect an ORB (or pass a clock) before setting quotas"
            )
        bucket = TokenBucket(
            rate, burst if burst is not None else rate, clock=self._clock
        )
        self._quotas[domain_id] = bucket
        return bucket

    def clear_domain_quota(self, domain_id: str) -> None:
        self._quotas.pop(domain_id, None)

    def quota_rejections(self) -> Dict[str, int]:
        """Routes refused per source domain since the bridge was built."""
        return dict(self._quota_rejections)

    def _link_key(self, domain_a: str, domain_b: str) -> str:
        pair = sorted((domain_a, domain_b))
        return f"link:{pair[0]}|{pair[1]}"

    def link_state(self, domain_a: str, domain_b: str) -> PeerState:
        if self._detector is None:
            return PeerState.ALIVE
        return self._detector.state(self._link_key(domain_a, domain_b))

    def link_states(self) -> Dict[str, str]:
        if self._detector is None:
            return {}
        return {peer: state.value for peer, state in self._detector.peers().items()}

    # -- traffic accounting ------------------------------------------------------

    def cross_domain_requests(self) -> int:
        """Total inter-domain requests carried, across every link."""
        return sum(link.stats.requests_sent for link in self._links.values())

    def cross_domain_bytes(self) -> int:
        """Bytes carried across every link (requests and replies)."""
        return sum(link.stats.bytes_sent for link in self._links.values())

    def reset_link_stats(self) -> None:
        for link in self._links.values():
            link.transport.stats.reset()

    # -- routing -------------------------------------------------------------------

    def route(
        self, source_orb: Orb, source_node: str, ref: ObjectRef, request_bytes: bytes
    ) -> bytes:
        """Carry one already-marshalled request into the owning domain.

        Called by :meth:`Orb.invoke` when ``ref.node_id`` is not local.
        The request crosses the source domain's transport (caller →
        gateway), the link transport (the measured inter-domain hop) and
        the target domain's transport (gateway → servant node); the
        reply retraces the same path.  Fault plans on all three apply.
        """
        source_domain = source_orb.domain_id
        if source_domain is None or source_domain not in self._orbs:
            raise ConfigurationError(f"orb {source_domain!r} is not connected to this federation")
        target_domain = self.domain_of_node(ref.node_id)
        if target_domain is None:
            raise ObjectNotExist(f"node {ref.node_id!r} is not owned by any federated domain")
        if target_domain == source_domain:
            # The node appeared locally after the ref was minted; deliver
            # in-domain as a plain invocation would have.
            return source_orb.transport.deliver(
                source_node,
                ref.node_id,
                request_bytes,
                lambda payload: source_orb._dispatch(ref.node_id, payload),
            )
        bucket = self._quotas.get(source_domain)
        if bucket is not None and not bucket.try_take():
            self._quota_rejections[source_domain] = (
                self._quota_rejections.get(source_domain, 0) + 1
            )
            raise OverloadError(
                f"domain {source_domain!r} exceeded its cross-domain quota"
                f" ({bucket.rate:g}/s, burst {bucket.burst:g})"
            )
        target_orb = self.orb_for(target_domain)
        link = self.link(source_domain, target_domain)
        detector = self._detector
        link_key = self._link_key(source_domain, target_domain)
        if detector is not None:
            detector.watch(link_key)
            if detector.is_down(link_key) and not detector.should_probe(link_key):
                # Quarantined route: a typed fast-fail instead of
                # blocking through a dead wire's faults again.  The
                # metered half-open probe (one per probe_interval) is
                # the only traffic allowed to re-test the link.
                raise CommunicationError(
                    f"link {source_domain}<->{target_domain} is DOWN"
                    f" (failure detector); failing fast"
                )

        def across_link(payload: bytes) -> bytes:
            return link.transport.deliver(
                link.endpoint(source_domain),
                link.endpoint(target_domain),
                payload,
                into_target,
            )

        def into_target(payload: bytes) -> bytes:
            return target_orb.transport.deliver(
                coordination_node_id(source_domain),
                ref.node_id,
                payload,
                lambda final: target_orb._dispatch(ref.node_id, final),
            )

        try:
            reply = source_orb.transport.deliver(
                source_node,
                coordination_node_id(target_domain),
                request_bytes,
                across_link,
            )
        except CommunicationError:
            if detector is not None:
                detector.failure(link_key)
            raise
        if detector is not None:
            detector.heartbeat(link_key)
        return reply

    def describe(self) -> Dict[str, Any]:
        described: Dict[str, Any] = {
            "domains": list(self.domains()),
            "links": [link.describe() for link in self.links()],
            "link_states": self.link_states(),
        }
        if self._quotas:
            described["quotas"] = {
                domain: bucket.describe()
                for domain, bucket in sorted(self._quotas.items())
            }
            described["quota_rejections"] = self.quota_rejections()
        return described
