"""Invocation fast path: versioned snapshots, encode cache, marshal-once.

Three layers under test:

- :class:`~repro.orb.marshal.PayloadTemplate` — a filled template must be
  byte-identical to a full encode of the substituted tree;
- the interned :class:`~repro.orb.marshal.EncodeCache` — identity-stable
  contexts encode once, invalidation and the LRU bound hold;
- the context snapshot cache — unchanged activities reuse their wire
  context, while *any* property mutation or nesting change invalidates
  it (the stale-snapshot regression tests here fail if version-based
  invalidation is removed).
"""

import pytest

from repro.core import (
    ActivityManager,
    BroadcastSignalSet,
    NestedVisibility,
    Outcome,
    Propagation,
    PropertyGroup,
    PropertyGroupManager,
    context_version,
    received_context,
    snapshot_context,
)
from repro.core.context import ActivityContext
from repro.core.property_group import RemotePropertyGroup
from repro.core.signals import Signal
from repro.orb import EncodeCache, Marshaller, MarshalStats, Orb, PayloadSlot
from repro.orb.core import Servant
from repro.orb.marshal import MarshalError
from repro.orb.reference import ObjectRef


def fresh_context(n: int = 3) -> ActivityContext:
    return ActivityContext(
        activity_id=f"a{n}",
        activity_name="job",
        property_values={"env": {f"k{i}": f"v{i}" for i in range(n)}},
    )


class TestPayloadTemplate:
    def test_fill_is_byte_identical_to_full_encode(self):
        marshaller = Marshaller()
        signal = Signal("go", "set", application_specific_data={"x": [1, 2.5, None]})
        template = marshaller.prepare(
            [
                PayloadSlot("object_id"),
                "process_signal",
                [signal.with_delivery_id(PayloadSlot("delivery_id"))],
                {},
                PayloadSlot("contexts"),
            ]
        )
        for delivery_id, object_id in [("d-1", "obj-1"), ("d-2", "obj-2")]:
            contexts = {"CosActivity": fresh_context()}
            filled = template.fill(
                object_id=object_id, delivery_id=delivery_id, contexts=contexts
            )
            plain = marshaller.encode(
                [
                    object_id,
                    "process_signal",
                    [signal.with_delivery_id(delivery_id)],
                    {},
                    contexts,
                ]
            )
            assert filled == plain
            # The patched tree decodes to the per-send values.
            decoded = marshaller.decode(filled)
            assert decoded[0] == object_id
            assert decoded[2][0].delivery_id == delivery_id

    def test_fill_missing_slot_raises(self):
        marshaller = Marshaller()
        template = marshaller.prepare([PayloadSlot("a"), 1])
        with pytest.raises(MarshalError):
            template.fill()

    def test_slot_outside_template_rejected_by_encode(self):
        with pytest.raises(MarshalError):
            Marshaller().encode([PayloadSlot("a")])

    def test_fill_counts_saved_bytes(self):
        stats = MarshalStats()
        marshaller = Marshaller(stats=stats)
        template = marshaller.prepare(["static" * 100, PayloadSlot("x")])
        assert stats.templates_prepared == 1
        before = stats.bytes_saved
        template.fill(x=1)
        template.fill(x=2)
        assert stats.template_fills == 2
        assert stats.bytes_saved == before + 2 * template.static_bytes


class TestEncodeCache:
    def make(self, max_entries=8):
        stats = MarshalStats()
        cache = EncodeCache(max_entries)
        return Marshaller(stats=stats, encode_cache=cache), stats, cache

    def test_interned_context_encodes_once(self):
        marshaller, stats, cache = self.make()
        context = fresh_context()
        first = marshaller.encode(context)
        second = marshaller.encode(context)
        assert first == second
        assert stats.cache_misses == 1
        assert stats.cache_hits == 1
        assert stats.bytes_saved >= len(first)
        # A plain marshaller decodes the cached bytes identically.
        assert Marshaller().decode(first) == context

    def test_equal_but_distinct_instances_do_not_alias(self):
        marshaller, stats, _ = self.make()
        assert marshaller.encode(fresh_context()) == marshaller.encode(fresh_context())
        assert stats.cache_hits == 0  # identity-keyed, not equality-keyed

    def test_explicit_invalidation(self):
        marshaller, stats, cache = self.make()
        context = fresh_context()
        marshaller.encode(context)
        assert marshaller.invalidate_cached(context) is True
        assert marshaller.invalidate_cached(context) is False
        marshaller.encode(context)
        assert stats.cache_misses == 2

    def test_hard_size_bound_evicts_lru(self):
        marshaller, _, cache = self.make(max_entries=4)
        contexts = [fresh_context(i) for i in range(10)]
        for context in contexts:
            marshaller.encode(context)
        assert len(cache) == 4
        # Oldest entries are gone; re-encoding them misses but works.
        assert cache.get(contexts[0]) is None
        assert cache.get(contexts[-1]) is not None

    def test_non_interned_values_not_cached(self):
        marshaller, stats, cache = self.make()
        signal = Signal("go", "set")
        marshaller.encode(signal)
        marshaller.encode(signal)
        assert len(cache) == 0
        assert stats.cache_hits == 0


class TestContextSnapshotCache:
    @pytest.fixture
    def deployment(self):
        orb = Orb()
        node = orb.create_node("server")
        groups = PropertyGroupManager()
        groups.register_factory(
            "env",
            lambda: PropertyGroup(
                "env", propagation=Propagation.VALUE, initial={"locale": "en"}
            ),
        )
        manager = ActivityManager(clock=orb.clock, property_groups=groups)
        manager.install(orb)
        return orb, node, manager

    def test_unchanged_activity_reuses_snapshot(self, deployment):
        orb, node, manager = deployment

        class Probe(Servant):
            def read_locale(self):
                return received_context(orb).property_values["env"]["locale"]

        ref = node.activate(Probe())
        manager.current.begin("job")
        stats = orb.transport.stats.marshal
        assert ref.invoke("read_locale") == "en"
        assert ref.invoke("read_locale") == "en"
        assert stats.context_misses == 1
        assert stats.context_hits == 1
        # The unchanged context's bytes were reused by the encode cache.
        assert stats.cache_hits >= 1
        manager.current.complete()

    def test_mutation_between_hops_carries_fresh_snapshot(self, deployment):
        """Stale-snapshot regression: if version-based invalidation is
        removed the second hop serves the cached 'en' bytes and fails."""
        orb, node, manager = deployment

        class Probe(Servant):
            def read_locale(self):
                return received_context(orb).property_values["env"]["locale"]

        ref = node.activate(Probe())
        activity = manager.current.begin("job")
        assert ref.invoke("read_locale") == "en"
        activity.get_property_group("env").set_property("locale", "fr")
        assert ref.invoke("read_locale") == "fr"
        stats = orb.transport.stats.marshal
        assert stats.context_misses == 2  # rebuild after the version bump
        manager.current.complete()

    def test_delete_and_update_from_also_invalidate(self, deployment):
        orb, node, manager = deployment

        class Probe(Servant):
            def read_keys(self):
                return sorted(received_context(orb).property_values["env"])

        ref = node.activate(Probe())
        activity = manager.current.begin("job")
        group = activity.get_property_group("env")
        assert ref.invoke("read_keys") == ["locale"]
        group.update_from({"tz": "UTC"})
        assert ref.invoke("read_keys") == ["locale", "tz"]
        group.delete_property("locale")
        assert ref.invoke("read_keys") == ["tz"]
        manager.current.complete()

    def test_nested_push_pop_changes_version_vector(self, deployment):
        """A scoped child overlay and the pop back to the parent must
        each produce the right snapshot — and a parent write made while
        the child is current invalidates the child's cached context."""
        orb, node, manager = deployment

        class Probe(Servant):
            def read_locale(self):
                return received_context(orb).property_values["env"]["locale"]

        ref = node.activate(Probe())
        groups = PropertyGroupManager()
        groups.register_factory(
            "env",
            lambda: PropertyGroup(
                "env",
                visibility=NestedVisibility.SCOPED,
                propagation=Propagation.VALUE,
                initial={"locale": "en"},
            ),
        )
        manager.property_groups = groups
        parent = manager.current.begin("parent")
        assert ref.invoke("read_locale") == "en"
        child = manager.begin("child", parent=parent)
        manager.current.resume(child)
        child.get_property_group("env").set_property("locale", "de")
        assert ref.invoke("read_locale") == "de"
        # Cached child snapshot must not survive a *parent* write either:
        # the scoped view's token folds in the parent version.
        assert ref.invoke("read_locale") == "de"
        parent.get_property_group("env").set_property("region", "EU")
        context = snapshot_context(child)[0]
        assert context.property_values["env"]["region"] == "EU"
        child.complete()
        manager.current.resume(parent)
        assert ref.invoke("read_locale") == "en"
        manager.current.complete()

    def test_remote_proxy_group_disables_caching(self):
        orb = Orb()
        manager = ActivityManager(clock=orb.clock)
        manager.install(orb)
        node = orb.create_node("origin")
        origin = PropertyGroup("shared", propagation=Propagation.REFERENCE)
        ref = node.activate(origin)
        activity = manager.begin("job")
        activity.attach_property_group(RemotePropertyGroup("shared", ref))
        assert context_version(activity) is None
        _, hit, _ = snapshot_context(activity)
        assert hit is False
        _, hit, _ = snapshot_context(activity)
        assert hit is False

    def test_attach_group_invalidates(self, deployment):
        orb, node, manager = deployment
        activity = manager.current.begin("job")
        first = snapshot_context(activity)[0]
        assert snapshot_context(activity)[0] is first
        activity.attach_property_group(
            PropertyGroup("extra", propagation=Propagation.VALUE, initial={"a": 1})
        )
        second, hit, stale = snapshot_context(activity)
        assert hit is False
        assert stale is first
        assert "extra" in second.property_values
        manager.current.complete()


class EchoAction(Servant):
    """Remote action recording each received signal's identity."""

    def __init__(self):
        self.seen = []

    def process_signal(self, signal):
        self.seen.append((signal.signal_name, signal.delivery_id))
        return Outcome.done(signal.delivery_id)


def run_broadcast(fast_path: bool, participants: int = 6):
    """One activity broadcasting to N remote actions; returns the raw
    request bytes seen on the wire, the servants and the orb."""
    orb = Orb(marshal_cache_entries=256 if fast_path else 0)
    node = orb.create_node("server")
    groups = PropertyGroupManager()
    groups.register_factory(
        "env",
        lambda: PropertyGroup(
            "env",
            propagation=Propagation.VALUE,
            initial={f"k{i}": "x" * 32 for i in range(8)},
        ),
    )
    manager = ActivityManager(
        clock=orb.clock, property_groups=groups, fast_path=fast_path
    )
    manager.install(orb)

    wire = []
    original_deliver = orb.transport.deliver

    def recording_deliver(source, target, request_bytes, dispatch):
        wire.append(request_bytes)
        return original_deliver(source, target, request_bytes, dispatch)

    orb.transport.deliver = recording_deliver

    actions = [EchoAction() for _ in range(participants)]
    activity = manager.current.begin("fan-out")
    for action in actions:
        activity.add_action("repro.predefined.broadcast", node.activate(action))
    activity.register_signal_set(BroadcastSignalSet("notify"))
    outcome = activity.signal("repro.predefined.broadcast")
    manager.current.complete()
    return wire, actions, outcome, orb


class TestMarshalOnceBroadcast:
    def test_wire_bytes_identical_fast_vs_slow(self):
        slow_wire, slow_actions, slow_outcome, _ = run_broadcast(False)
        fast_wire, fast_actions, fast_outcome, fast_orb = run_broadcast(True)
        assert fast_wire == slow_wire  # byte-identical requests, in order
        assert fast_outcome == slow_outcome
        assert [a.seen for a in fast_actions] == [a.seen for a in slow_actions]
        # Each action still got its own delivery id through the template.
        ids = [a.seen[0][1] for a in fast_actions]
        assert len(set(ids)) == len(ids)
        stats = fast_orb.transport.stats.marshal
        assert stats.templates_prepared >= 1
        assert stats.template_fills == len(fast_actions)
        assert stats.bytes_saved > 0

    def test_fast_path_encodes_fewer_bytes(self):
        _, _, _, fast_orb = run_broadcast(True, participants=8)
        _, _, _, slow_orb = run_broadcast(False, participants=8)
        fast = fast_orb.transport.stats.marshal
        slow = slow_orb.transport.stats.marshal
        assert slow.bytes_encoded > 2 * fast.bytes_encoded
        # Same bytes crossed the wire either way.
        assert (
            fast_orb.transport.stats.bytes_sent
            == slow_orb.transport.stats.bytes_sent
        )

    def test_unbound_refs_fall_back_to_plain_path(self):
        """A template is only used for bound refs; an unbound ref keeps
        the historical error semantics (no crash at prepare time)."""
        orb = Orb()
        manager = ActivityManager(clock=orb.clock)
        manager.install(orb)
        activity = manager.begin("job")
        activity.add_action(
            "repro.predefined.broadcast",
            ObjectRef("nowhere", "missing"),  # never bound
        )
        activity.register_signal_set(BroadcastSignalSet("notify"))
        outcome = activity.signal("repro.predefined.broadcast")
        assert outcome.is_error
