"""Transaction status and vote enumerations, mirroring CosTransactions."""

from __future__ import annotations

from enum import Enum

from repro.orb.marshal import GLOBAL_REGISTRY


@GLOBAL_REGISTRY.register_enum
class TransactionStatus(Enum):
    """Lifecycle states of a transaction (CosTransactions::Status)."""

    ACTIVE = "StatusActive"
    MARKED_ROLLBACK = "StatusMarkedRollback"
    PREPARING = "StatusPreparing"
    PREPARED = "StatusPrepared"
    COMMITTING = "StatusCommitting"
    COMMITTED = "StatusCommitted"
    ROLLING_BACK = "StatusRollingBack"
    ROLLED_BACK = "StatusRolledBack"
    NO_TRANSACTION = "StatusNoTransaction"
    UNKNOWN = "StatusUnknown"

    @property
    def is_terminal(self) -> bool:
        return self in (TransactionStatus.COMMITTED, TransactionStatus.ROLLED_BACK)

    @property
    def is_active(self) -> bool:
        return self is TransactionStatus.ACTIVE


@GLOBAL_REGISTRY.register_enum
class Vote(Enum):
    """Phase-one replies from resources (CosTransactions::Vote)."""

    COMMIT = "VoteCommit"
    ROLLBACK = "VoteRollback"
    READONLY = "VoteReadOnly"
