"""UserActivity — the application-facing demarcation API (fig. 13).

A thin facade over :class:`~repro.core.current.ActivityCurrent`, shaped
after the J2EE Activity Service's ``UserActivity`` interface (JSR 95): the
application begins and completes activities and manipulates the
completion status, without touching coordinators or signal sets — those
belong to the high-level service (see :mod:`repro.hls`).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.activity import Activity
from repro.core.exceptions import NoActivity
from repro.core.signals import Outcome
from repro.core.status import ActivityStatus, CompletionStatus


class UserActivity:
    """Demarcation facade bound to one ActivityManager."""

    def __init__(self, manager: Any) -> None:
        self.manager = manager

    # -- demarcation ---------------------------------------------------------

    def begin(self, name: Optional[str] = None, timeout: float = 0.0) -> Activity:
        """Begin a (possibly nested) activity on the current thread."""
        return self.manager.current.begin(name=name, timeout=timeout)

    def complete(self) -> Outcome:
        """Complete the current activity with its current completion status."""
        return self.manager.current.complete()

    def complete_with_status(self, status: CompletionStatus) -> Outcome:
        return self.manager.current.complete(status)

    # -- status ---------------------------------------------------------------

    def set_completion_status(self, status: CompletionStatus) -> None:
        self.manager.current.set_completion_status(status)

    def get_completion_status(self) -> CompletionStatus:
        return self.manager.current.get_completion_status()

    def get_status(self) -> Optional[ActivityStatus]:
        return self.manager.current.get_status()

    def get_activity_name(self) -> str:
        activity = self._require()
        return activity.name

    def get_activity_id(self) -> str:
        return self._require().activity_id

    # -- association ---------------------------------------------------------------

    def current_activity(self) -> Optional[Activity]:
        return self.manager.current.current_activity()

    def suspend(self) -> Optional[Activity]:
        return self.manager.current.suspend()

    def resume(self, activity: Optional[Activity]) -> None:
        self.manager.current.resume(activity)

    def _require(self) -> Activity:
        activity = self.manager.current.current_activity()
        if activity is None:
            raise NoActivity("no activity associated with this thread")
        return activity
