"""Activity context propagation over the ORB.

When application code inside an activity invokes a remote object, the
activity's identity and its PropertyGroups travel implicitly as a service
context (§3.3 — visibility "in downstream nodes", propagation by value or
by reference).  A client request interceptor builds the
:class:`ActivityContext`; the server interceptor re-associates the
activity (when the receiving deployment knows it) and exposes the
received property groups to the servant through the invocation-current
slot ``activity_context``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.property_group import (
    Propagation,
    PropertyGroup,
    RemotePropertyGroup,
)
from repro.orb.core import Orb
from repro.orb.interceptors import (
    ACTIVITY_CONTEXT_ID,
    ClientRequestInterceptor,
    RequestInfo,
    ServerRequestInterceptor,
)
from repro.orb.marshal import GLOBAL_REGISTRY
from repro.orb.reference import ObjectRef


@GLOBAL_REGISTRY.register_dataclass
@dataclass(frozen=True)
class ActivityContext:
    """Wire form of a propagated activity association."""

    activity_id: str
    activity_name: str
    # group name -> snapshot dict (by-value groups)
    property_values: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    # group name -> ObjectRef of the origin group (by-reference groups)
    property_refs: Dict[str, ObjectRef] = field(default_factory=dict)

    def received_groups(self) -> Dict[str, PropertyGroup]:
        """Materialise the context's property groups on the receiving side."""
        groups: Dict[str, PropertyGroup] = {}
        for name, values in self.property_values.items():
            groups[name] = PropertyGroup(
                name, propagation=Propagation.VALUE, initial=values
            )
        for name, ref in self.property_refs.items():
            groups[name] = RemotePropertyGroup(name, ref)
        return groups


def build_context(activity: Any) -> ActivityContext:
    """Snapshot an activity into its wire context."""
    values: Dict[str, Dict[str, Any]] = {}
    refs: Dict[str, ObjectRef] = {}
    for group in activity.property_groups():
        if group.propagation is Propagation.VALUE:
            values[group.name] = group.snapshot()
        elif group.propagation is Propagation.REFERENCE:
            exported = getattr(group, "exported_ref", None)
            if exported is not None:
                refs[group.name] = exported
            else:
                # Un-exported by-reference groups degrade to by-value.
                values[group.name] = group.snapshot()
    return ActivityContext(
        activity_id=activity.activity_id,
        activity_name=activity.name,
        property_values=values,
        property_refs=refs,
    )


class ActivityClientInterceptor(ClientRequestInterceptor):
    """Attaches the current activity's context to outgoing requests."""

    name = "activity-client"

    def __init__(self, current: Any) -> None:
        self.current = current

    def send_request(self, info: RequestInfo) -> None:
        activity = self.current.current_activity()
        if activity is not None and not activity.status.is_terminal:
            info.set_context(ACTIVITY_CONTEXT_ID, build_context(activity))


class ActivityServerInterceptor(ServerRequestInterceptor):
    """Re-establishes the propagated activity around each dispatch."""

    name = "activity-server"

    def __init__(self, orb: Orb, manager: Any) -> None:
        self.orb = orb
        self.manager = manager
        self._resumed: List[bool] = []

    def receive_request(self, info: RequestInfo) -> None:
        context = info.get_context(ACTIVITY_CONTEXT_ID)
        if isinstance(context, ActivityContext):
            # Expose the raw context (and its property groups) to servants.
            self.orb.current.set_slot("activity_context", context)
            if self.manager.knows(context.activity_id):
                self.manager.current.resume(self.manager.get(context.activity_id))
                self._resumed.append(True)
                return
        self._resumed.append(False)

    def _detach(self) -> None:
        if self._resumed and self._resumed.pop():
            self.manager.current.suspend()

    def send_reply(self, info: RequestInfo) -> None:
        self._detach()

    def send_exception(self, info: RequestInfo) -> None:
        self._detach()


def received_context(orb: Orb) -> Optional[ActivityContext]:
    """The activity context of the request being dispatched, if any."""
    return orb.current.get_slot("activity_context")
