"""LRUOW — Long Running Unit Of Work (§4.3).

The LRUOW model [Bennett et al., Middleware 2000] executes long-running
work in two phases: a *rehearsal* phase that journals operations (with
operation predicates) against a snapshot, without serialisability, and a
*performance* phase that replays the journal against live data under
locks, committing only if every predicate still holds (type-specific
concurrency control).

Per §4.3, the model maps onto the framework as a
:class:`RehearsalSignalSet` and a :class:`PerformanceSignalSet`; each
LRUOW resource registers an Action with both, driven when the activity
completes.  The higher-level API (:class:`LongRunningUnitOfWork`) "would
still be applicable, but would be mapped down to using these SignalSets
and Actions" — which is exactly what it does here.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.action import Action
from repro.core.exceptions import ActionError
from repro.core.signal_set import SequenceSignalSet
from repro.core.signals import Outcome, Signal
from repro.core.status import CompletionStatus
from repro.exceptions import ReproError

REHEARSAL_SET = "repro.lruow.rehearsal"
PERFORMANCE_SET = "repro.lruow.performance"
SIGNAL_REHEARSE = "rehearse"
SIGNAL_VALIDATE = "validate"
SIGNAL_APPLY = "apply"
SIGNAL_ABANDON = "abandon"
OUTCOME_VALID = "valid"
OUTCOME_CONFLICT = "conflict"
OUTCOME_APPLIED = "applied"
OUTCOME_ABANDONED = "abandoned"
OUTCOME_REHEARSING = "rehearsing"

# An operation is fn(value) -> new value; a predicate is pred(value) -> bool
Operation = Callable[[Any], Any]
Predicate = Callable[[Any], bool]


class LruowConflict(ReproError):
    """An operation predicate failed during the performance phase."""


class LruowResource:
    """One resource supporting rehearsal/performance execution.

    Rehearsal operations are journaled per unit of work together with
    their predicates; reads during rehearsal see the journal replayed
    over the snapshot taken at rehearsal start.  ``validate`` replays the
    journal over the *current* committed value, checking each predicate;
    ``apply`` installs the staged result.
    """

    def __init__(self, name: str, initial: Any) -> None:
        self.name = name
        self.committed = initial
        self.version = 0
        self._journals: Dict[str, List[Tuple[Operation, Optional[Predicate]]]] = {}
        self._snapshots: Dict[str, Any] = {}
        self._staged: Dict[str, Any] = {}

    # -- rehearsal phase -------------------------------------------------------

    def begin_rehearsal(self, uow_id: str) -> None:
        self._journals[uow_id] = []
        self._snapshots[uow_id] = self.committed

    def rehearse(
        self, uow_id: str, operation: Operation, predicate: Optional[Predicate] = None
    ) -> Any:
        """Journal an operation; returns the rehearsal-visible value."""
        if uow_id not in self._journals:
            raise LruowConflict(f"uow {uow_id!r} is not rehearsing on {self.name!r}")
        if predicate is not None and not predicate(self.rehearsal_value(uow_id)):
            raise LruowConflict(
                f"predicate failed during rehearsal of {uow_id!r} on {self.name!r}"
            )
        self._journals[uow_id].append((operation, predicate))
        return self.rehearsal_value(uow_id)

    def rehearsal_value(self, uow_id: str) -> Any:
        value = self._snapshots[uow_id]
        for operation, _ in self._journals[uow_id]:
            value = operation(value)
        return value

    # -- performance phase ---------------------------------------------------------

    def validate(self, uow_id: str) -> bool:
        """Replay the journal over live data, checking every predicate."""
        journal = self._journals.get(uow_id)
        if journal is None:
            return False
        value = self.committed
        for operation, predicate in journal:
            if predicate is not None and not predicate(value):
                return False
            value = operation(value)
        self._staged[uow_id] = value
        return True

    def apply(self, uow_id: str) -> None:
        if uow_id not in self._staged:
            raise LruowConflict(f"uow {uow_id!r} has no validated stage on {self.name!r}")
        self.committed = self._staged.pop(uow_id)
        self.version += 1
        self._cleanup(uow_id)

    def abandon(self, uow_id: str) -> None:
        self._staged.pop(uow_id, None)
        self._cleanup(uow_id)

    def _cleanup(self, uow_id: str) -> None:
        self._journals.pop(uow_id, None)
        self._snapshots.pop(uow_id, None)


class RehearsalSignalSet(SequenceSignalSet):
    """Broadcasts ``rehearse`` to move resources into journaling mode."""

    def __init__(self) -> None:
        super().__init__(REHEARSAL_SET, [SIGNAL_REHEARSE])


class PerformanceSignalSet(SequenceSignalSet):
    """validate → apply, pivoting to abandon on any conflict.

    Behaves like 2PC with renamed phases: ``validate`` collects
    valid/conflict outcomes; a conflict abandons the broadcast and sends
    ``abandon`` to everyone; otherwise ``apply`` follows.
    """

    def __init__(self) -> None:
        super().__init__(PERFORMANCE_SET, [SIGNAL_VALIDATE, SIGNAL_APPLY])
        self._conflict = False
        self._abandon_sent = False

    def get_signal(self) -> Tuple[Optional[Signal], bool]:
        if self.get_completion_status() is not CompletionStatus.SUCCESS and self._index < 0:
            # Failed activity: abandon everything without validating.
            self._conflict = True
        if self._conflict:
            if self._abandon_sent:
                return None, True
            self._abandon_sent = True
            return (
                Signal(signal_name=SIGNAL_ABANDON, signal_set_name=self.signal_set_name),
                True,
            )
        return super().get_signal()

    def on_response(self, signal_name: str, response: Outcome) -> bool:
        if signal_name == SIGNAL_VALIDATE and (
            response.is_error or response.name == OUTCOME_CONFLICT
        ):
            self._conflict = True
            return True
        return False

    def set_response(self, response: Outcome) -> bool:
        if self._abandon_sent:
            self.responses.append((SIGNAL_ABANDON, response))
            return False
        return super().set_response(response)

    def get_outcome(self) -> Outcome:
        if self._conflict:
            return Outcome.error(name="lruow.abandoned", data=len(self.responses))
        return Outcome.of("lruow.performed", data=len(self.responses))

    @property
    def performed(self) -> bool:
        return not self._conflict


class UowResourceAction(Action):
    """The Action one resource registers with both LRUOW signal sets."""

    def __init__(self, resource: LruowResource, uow_id: str) -> None:
        self.resource = resource
        self.uow_id = uow_id
        self.name = f"uow-{resource.name}"

    def process_signal(self, signal: Signal) -> Outcome:
        if signal.signal_name == SIGNAL_REHEARSE:
            self.resource.begin_rehearsal(self.uow_id)
            return Outcome.of(OUTCOME_REHEARSING)
        if signal.signal_name == SIGNAL_VALIDATE:
            if self.resource.validate(self.uow_id):
                return Outcome.of(OUTCOME_VALID)
            return Outcome.of(OUTCOME_CONFLICT)
        if signal.signal_name == SIGNAL_APPLY:
            self.resource.apply(self.uow_id)
            return Outcome.of(OUTCOME_APPLIED)
        if signal.signal_name == SIGNAL_ABANDON:
            self.resource.abandon(self.uow_id)
            return Outcome.of(OUTCOME_ABANDONED)
        raise ActionError(f"unknown LRUOW signal {signal.signal_name}")


class LongRunningUnitOfWork:
    """Higher-level LRUOW API mapped down to SignalSets and Actions.

    Usage::

        uow = LongRunningUnitOfWork(manager)
        uow.enlist(resource_a)
        uow.enlist(resource_b)
        uow.begin()                      # rehearsal signal to all resources
        uow.update(resource_a, op, pred) # journaled, no locks held
        performed = uow.complete()       # performance phase
    """

    def __init__(self, manager: Any, name: str = "lruow") -> None:
        self.manager = manager
        self.activity = manager.begin(name=name)
        self.uow_id = self.activity.activity_id
        self._actions: Dict[str, UowResourceAction] = {}
        self._begun = False
        self._rehearsal = RehearsalSignalSet()
        self._performance = PerformanceSignalSet()
        self.activity.register_signal_set(self._rehearsal)
        self.activity.register_signal_set(self._performance, completion=True)

    def enlist(self, resource: LruowResource) -> None:
        if self._begun:
            raise LruowConflict("cannot enlist after rehearsal began")
        if resource.name in self._actions:
            return
        action = UowResourceAction(resource, self.uow_id)
        self._actions[resource.name] = action
        self.activity.add_action(REHEARSAL_SET, action)
        self.activity.add_action(PERFORMANCE_SET, action)

    def begin(self) -> None:
        """Enter the rehearsal phase (signals every enlisted resource)."""
        if self._begun:
            raise LruowConflict("rehearsal already begun")
        self._begun = True
        self.activity.signal(REHEARSAL_SET)

    def update(
        self,
        resource: LruowResource,
        operation: Operation,
        predicate: Optional[Predicate] = None,
    ) -> Any:
        if not self._begun:
            raise LruowConflict("begin() the unit of work before updating")
        return resource.rehearse(self.uow_id, operation, predicate)

    def read(self, resource: LruowResource) -> Any:
        if not self._begun:
            return resource.committed
        return resource.rehearsal_value(self.uow_id)

    def complete(self) -> bool:
        """Run the performance phase; True if the work committed."""
        outcome = self.activity.complete(CompletionStatus.SUCCESS)
        return not outcome.is_error

    def cancel(self) -> None:
        """Abandon the unit of work (sends abandon to all resources)."""
        self.activity.complete(CompletionStatus.FAIL)
