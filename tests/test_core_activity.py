"""Unit tests for Activity lifecycle, completion status, nesting, timeouts."""

import pytest

from repro.core import (
    ActivityCompleted,
    ActivityManager,
    ActivityPending,
    ActivityStatus,
    BroadcastSignalSet,
    CompletionSignalSet,
    CompletionStatus,
    CompletionStatusLatched,
    InvalidActivityState,
    NoSuchPropertyGroup,
    NoSuchSignalSet,
    RecordingAction,
)


@pytest.fixture
def manager():
    return ActivityManager()


class TestLifecycle:
    def test_begin_is_active(self, manager):
        activity = manager.begin("job")
        assert activity.status is ActivityStatus.ACTIVE
        assert activity.name == "job"
        assert activity.is_top_level

    def test_complete_success(self, manager):
        activity = manager.begin()
        outcome = activity.complete(CompletionStatus.SUCCESS)
        assert activity.status is ActivityStatus.COMPLETED
        assert outcome.is_done
        assert activity.get_outcome() is outcome

    def test_complete_failure_without_set(self, manager):
        activity = manager.begin()
        outcome = activity.complete(CompletionStatus.FAIL)
        assert outcome.is_error

    def test_double_complete_rejected(self, manager):
        activity = manager.begin()
        activity.complete()
        with pytest.raises(ActivityCompleted):
            activity.complete()

    def test_operations_after_completion_rejected(self, manager):
        activity = manager.begin()
        activity.complete()
        with pytest.raises(ActivityCompleted):
            activity.add_action("x", RecordingAction())
        with pytest.raises(ActivityCompleted):
            activity.register_signal_set(BroadcastSignalSet("s"))
        with pytest.raises(ActivityCompleted):
            activity.signal("x")

    def test_suspend_resume(self, manager):
        activity = manager.begin()
        activity.suspend()
        assert activity.status is ActivityStatus.SUSPENDED
        with pytest.raises(InvalidActivityState):
            activity.suspend()
        with pytest.raises(InvalidActivityState):
            activity.complete()
        activity.resume()
        assert activity.status is ActivityStatus.ACTIVE
        with pytest.raises(InvalidActivityState):
            activity.resume()
        activity.complete()

    def test_manager_counters(self, manager):
        activity = manager.begin()
        activity.complete()
        assert manager.begun == 1
        assert manager.completed == 1


class TestCompletionStatus:
    def test_defaults_to_success(self, manager):
        assert manager.begin().get_completion_status() is CompletionStatus.SUCCESS

    def test_flips_freely_between_success_and_fail(self, manager):
        activity = manager.begin()
        activity.set_completion_status(CompletionStatus.FAIL)
        activity.set_completion_status(CompletionStatus.SUCCESS)
        activity.set_completion_status(CompletionStatus.FAIL)
        assert activity.get_completion_status() is CompletionStatus.FAIL

    def test_fail_only_latches(self, manager):
        activity = manager.begin()
        activity.set_completion_status(CompletionStatus.FAIL_ONLY)
        with pytest.raises(CompletionStatusLatched):
            activity.set_completion_status(CompletionStatus.SUCCESS)
        with pytest.raises(CompletionStatusLatched):
            activity.set_completion_status(CompletionStatus.FAIL)
        activity.set_completion_status(CompletionStatus.FAIL_ONLY)  # idempotent

    def test_fail_only_forces_failure_outcome(self, manager):
        activity = manager.begin()
        activity.set_completion_status(CompletionStatus.FAIL_ONLY)
        outcome = activity.complete()
        assert outcome.is_error

    def test_complete_with_status_latch_respected(self, manager):
        activity = manager.begin()
        activity.set_completion_status(CompletionStatus.FAIL_ONLY)
        with pytest.raises(CompletionStatusLatched):
            activity.complete(CompletionStatus.SUCCESS)


class TestNesting:
    def test_children_tracked(self, manager):
        parent = manager.begin("p")
        child = manager.begin("c", parent=parent)
        assert child.parent is parent
        assert parent.children == [child]
        assert child.depth == 1
        assert child.root is parent

    def test_parent_completion_blocked_by_active_children(self, manager):
        parent = manager.begin("p")
        child = manager.begin("c", parent=parent)
        with pytest.raises(ActivityPending):
            parent.complete()
        child.complete()
        parent.complete()

    def test_active_children_listing(self, manager):
        parent = manager.begin("p")
        child_a = manager.begin("a", parent=parent)
        child_b = manager.begin("b", parent=parent)
        child_a.complete()
        assert parent.active_children() == [child_b]


class TestSignalSets:
    def test_register_and_trigger(self, manager):
        activity = manager.begin()
        recorder = RecordingAction()
        activity.add_action("notify", recorder)
        activity.register_signal_set(BroadcastSignalSet("hello", signal_set_name="notify"))
        outcome = activity.signal("notify")
        assert outcome.is_done
        assert recorder.signal_names == ["hello"]

    def test_unknown_signal_set_rejected(self, manager):
        activity = manager.begin()
        with pytest.raises(NoSuchSignalSet):
            activity.signal("ghost")

    def test_set_instance_consumed_after_use(self, manager):
        activity = manager.begin()
        activity.register_signal_set(BroadcastSignalSet("x", signal_set_name="s"))
        activity.signal("s")
        with pytest.raises(NoSuchSignalSet):
            activity.signal("s")

    def test_same_instance_cannot_be_reregistered(self, manager):
        activity = manager.begin()
        instance = BroadcastSignalSet("x", signal_set_name="s")
        activity.register_signal_set(instance)
        activity.signal("s")
        with pytest.raises(NoSuchSignalSet):
            activity.register_signal_set(instance)

    def test_fresh_instance_under_same_name_allowed(self, manager):
        activity = manager.begin()
        for _ in range(3):
            activity.register_signal_set(BroadcastSignalSet("x", signal_set_name="s"))
            activity.signal("s")

    def test_completion_set_drives_actions(self, manager):
        activity = manager.begin()
        recorder = RecordingAction()
        activity.add_action("repro.predefined.completion", recorder)
        activity.register_signal_set(CompletionSignalSet(), completion=True)
        activity.complete(CompletionStatus.SUCCESS)
        assert recorder.signal_names == ["success"]

    def test_completion_set_signals_failure(self, manager):
        activity = manager.begin()
        recorder = RecordingAction()
        activity.add_action("repro.predefined.completion", recorder)
        activity.register_signal_set(CompletionSignalSet(), completion=True)
        outcome = activity.complete(CompletionStatus.FAIL)
        assert recorder.signal_names == ["failure"]
        assert outcome.is_error

    def test_signal_set_names_listing(self, manager):
        activity = manager.begin()
        activity.register_signal_set(BroadcastSignalSet("x", signal_set_name="b"))
        activity.register_signal_set(CompletionSignalSet(), completion=True)
        assert "b" in activity.signal_set_names()
        assert activity.completion_signal_set_name == "repro.predefined.completion"


class TestTimeouts:
    def test_timed_out_activity_latches_fail_only(self):
        manager = ActivityManager()
        activity = manager.begin("slow", timeout=5.0)
        manager.clock.advance(6.0)
        expired = manager.expire_timeouts()
        assert expired == [activity.activity_id]
        assert activity.get_completion_status() is CompletionStatus.FAIL_ONLY

    def test_completion_after_timeout_fails(self):
        manager = ActivityManager()
        activity = manager.begin("slow", timeout=5.0)
        manager.clock.advance(6.0)
        outcome = activity.complete()
        assert outcome.is_error

    def test_no_timeout_by_default(self):
        manager = ActivityManager()
        activity = manager.begin()
        manager.clock.advance(10_000)
        assert manager.expire_timeouts() == []
        assert activity.complete().is_done


class TestPropertyGroupAccess:
    def test_missing_group_rejected(self, manager):
        activity = manager.begin()
        with pytest.raises(NoSuchPropertyGroup):
            activity.get_property_group("ghost")
