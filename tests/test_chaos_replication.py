"""Replicated chaos campaigns: durability survives losing disks.

The acceptance story for the replication layer, told the same way as
``test_chaos_campaign``:

- a 50-seed sweep where every domain runs quorum-replicated WAL and
  cell stores *and* the schedule actively attacks the redundancy
  (replica loss, disk wipes — including wiping the current primary's
  disk live, which must fail over to a follower) completes with zero
  invariant violations;
- seed replay stays exact, and schedules drawn with the default
  profile contain no replica events at all — the new fault families
  default off, so every pre-replication seed replays byte-identical;
- the :class:`ReplicationChecker` is shown deliberately broken worlds
  (followers secretly emptied, quorum knocked out) and must cry foul;
- focused regressions for the two framework holes the sweep found
  (seed 15): an idle in-sync replica latched DOWN could never be
  readmitted, wedging re-sync for its peers; and a completion sweep
  interrupted by a store-layer failure stranded its transaction in
  ROLLING_BACK forever.
"""

import pytest

from repro.chaos import (
    CampaignConfig,
    ChaosProfile,
    ChaosSchedule,
    ChaosWorld,
    ReplicationChecker,
    WorkloadRunner,
    run_campaign,
    run_sweep,
)
from repro.ots import TransactionFactory, TransactionalCell
from repro.ots.status import TransactionStatus
from repro.persistence import MemoryStore, ReplicaMedium, ReplicatedStore
from repro.persistence.replicated import ReplicationError
from repro.util.clock import SimulatedClock
from repro.util.rng import SeededRng

SWEEP_SEEDS = range(50)

#: The replication-attack profile: frequent replica loss windows plus
#: occasional disk wipes, layered on top of the stock crash/partition/
#: flaky-link families.
REPLICA_PROFILE = ChaosProfile(
    replica_loss_probability=0.10,
    disk_wipe_probability=0.06,
)


def replicated_config(**overrides) -> CampaignConfig:
    return CampaignConfig(
        profile=REPLICA_PROFILE, replicas=3, write_quorum=2, **overrides
    )


@pytest.fixture(scope="module")
def sweep_results():
    return run_sweep(SWEEP_SEEDS, replicated_config())


class TestReplicatedSweep:
    def test_fifty_seed_sweep_has_zero_violations(self, sweep_results):
        """The acceptance criterion: every domain on 3-way quorum
        storage, the schedule killing and wiping replica disks, and
        every invariant — including no-acked-write-lost — holds."""
        failing = [r.summary() for r in sweep_results if not r.passed]
        assert not failing, f"failing seeds: {failing}"

    def test_replica_faults_actually_injected(self, sweep_results):
        """A sweep that never loses a disk proves nothing."""
        losses = sum(
            1
            for r in sweep_results
            for line in r.trace
            if "replica_loss" in line and "skipped" not in line
        )
        wipes = sum(
            1
            for r in sweep_results
            for line in r.trace
            if "disk_wipe" in line and "skipped" not in line
        )
        assert losses > 50
        assert wipes > 20

    def test_primary_disk_wipe_recovers_via_promotion(self, sweep_results):
        """At least some seeds must wipe the disk the WAL currently
        calls primary while the domain is up — recovery then runs
        entirely from follower state via the election path."""
        wiped_primary = [
            r.seed
            for r in sweep_results
            if any(
                "primary wiped; promoted a follower" in line
                for line in r.trace
            )
        ]
        assert len(wiped_primary) >= 1, "no seed exercised primary wipe"
        failed_over = [
            r.seed
            for r in sweep_results
            if any("primary failed over" in line for line in r.trace)
        ]
        assert len(failed_over) >= 1, "no seed exercised primary loss"

    def test_promotions_surface_in_world_state(self, sweep_results):
        total = sum(
            r.world_state.get("replica_promotions", 0) for r in sweep_results
        )
        assert total > 10

    def test_replication_health_reported_per_domain(self, sweep_results):
        for r in sweep_results:
            for state in r.world_state["domains"].values():
                health = state["replication"]
                for layer in ("wal", "cells"):
                    assert health[layer]["quorum_ok"] is True
                    assert health[layer]["under_replicated"] is False


class TestDeterminism:
    def test_same_seed_same_trace_same_verdict(self):
        first = run_campaign(15, replicated_config())
        second = run_campaign(15, replicated_config())
        assert first.trace == second.trace
        assert first.summary() == second.summary()

    def test_default_profile_draws_no_replica_events(self):
        """The new fault families default off: schedules for every
        pre-replication seed stay byte-identical, so historical seed
        numbers keep replaying the same campaigns."""
        for seed in range(10):
            schedule = ChaosSchedule.draw(
                SeededRng(seed).fork("schedule"), 40, ("A", "B"), ChaosProfile()
            )
            kinds = {event.kind for event in schedule.events}
            assert not kinds & {"replica_loss", "replica_heal", "disk_wipe"}

    def test_replica_profile_is_a_pure_function_of_the_seed(self):
        one = ChaosSchedule.draw(
            SeededRng(5).fork("schedule"), 40, ("A", "B"), REPLICA_PROFILE
        )
        two = ChaosSchedule.draw(
            SeededRng(5).fork("schedule"), 40, ("A", "B"), REPLICA_PROFILE
        )
        assert one.describe() == two.describe()

    def test_one_replica_arc_open_per_domain(self):
        """Overlapping loss arcs on one domain could take out two of
        three disks at once and void the quorum-survives precondition;
        the schedule must never draw them.  A loss arc spans loss→heal;
        a disk wipe is a point arc (its re-seed is synchronous)."""
        for seed in range(20):
            schedule = ChaosSchedule.draw(
                SeededRng(seed).fork("schedule"),
                40,
                ("A", "B"),
                REPLICA_PROFILE,
            )
            arcs = {"A": [], "B": []}
            heals = {"A": [], "B": []}
            for event in schedule.events:
                if event.kind == "replica_heal":
                    heals[event.target[0]].append(event.step)
            for event in schedule.events:
                if event.kind == "replica_loss":
                    domain = event.target[0]
                    heal = min(s for s in heals[domain] if s > event.step)
                    arcs[domain].append((event.step, heal))
                elif event.kind == "disk_wipe":
                    arcs[event.target[0]].append((event.step, event.step))
            for domain, spans in arcs.items():
                spans.sort()
                for (_, prev_end), (start, _) in zip(spans, spans[1:]):
                    assert start > prev_end, (
                        f"seed {seed}: overlapping replica arcs on {domain}"
                    )


def quiet_replicated_world(seed: int = 11):
    """A replicated world after a fault-free workload and quiescence."""
    world = ChaosWorld(seed=seed, replicas=3, write_quorum=2)
    runner = WorkloadRunner(world, SeededRng(seed).fork("workload"))
    for step in range(12):
        runner.run_op(step)
        world.clock.advance(0.05)
    assert world.quiesce()
    return world, list(runner.ledger)


class TestReplicationCheckerMutations:
    def test_clean_replicated_world_passes(self):
        world, ledger = quiet_replicated_world()
        assert ReplicationChecker().check(world, ledger) == []

    def test_unreplicated_worlds_are_ignored(self):
        world = ChaosWorld(seed=3)
        runner = WorkloadRunner(world, SeededRng(3).fork("workload"))
        for step in range(6):
            runner.run_op(step)
        world.quiesce()
        assert ReplicationChecker().check(world, list(runner.ledger)) == []

    def test_checker_catches_secretly_emptied_followers(self):
        """Empty every follower disk behind the replication layer's
        back; the checker's primary-wipe drill then has nothing left to
        recover from and must report the loss."""
        world, ledger = quiet_replicated_world()
        domain = world.domain("A")
        cell_primary = domain.cell_store.primary_index
        wal_primary = domain.wal.primary_index
        for index in range(3):
            if index != cell_primary:
                world.replica_media["A"]["cells"][index].wipe()
            if index != wal_primary:
                world.replica_media["A"]["wal"][index].wipe()
        violations = ReplicationChecker().check(world, ledger)
        assert violations
        assert all(v.checker == "replication" for v in violations)

    def test_checker_catches_a_degraded_quorum(self):
        world, ledger = quiet_replicated_world()
        domain = world.domain("A")
        primary = domain.cell_store.primary_index
        for index in range(3):
            if index != primary:
                world.replica_media["A"]["cells"][index].fail()
        with pytest.raises(ReplicationError):
            domain.cell_store.put("poke", 1)  # strikes the dead majority
        violations = ReplicationChecker().check(world, ledger)
        assert any("quorum lost" in v.message for v in violations)


def three_way_store(clock=None):
    media = [ReplicaMedium(f"m{i}", MemoryStore()) for i in range(3)]
    store = ReplicatedStore(
        media, write_quorum=2, clock=clock or SimulatedClock()
    )
    return media, store


class TestIdleInSyncReadmission:
    """Seed-15 regression, part one: an in-sync replica latched DOWN
    while idle must be readmitted by the maintenance sweep — it is the
    only possible re-sync source for its lagging peers."""

    def test_catch_up_readmits_an_idle_in_sync_replica(self):
        clock = SimulatedClock()
        media, store = three_way_store(clock)
        store.put("k", 1)
        media[0].fail()
        store.put("k", 2)  # acked by 1 and 2; replica 0 struck DOWN
        assert store.health()["replicas"]["m0"]["state"] == "down"
        media[0].heal()
        clock.advance(1.5)  # probe budget refills
        store.catch_up()
        health = store.health()
        assert health["replicas"]["m0"]["state"] != "down"
        assert health["under_replicated"] is False

    def test_down_in_sync_replica_can_source_peer_resyncs(self):
        """The full wedge: the only in-sync replica is DOWN and both
        peers need a full re-sync.  One maintenance sweep must readmit
        the source and then drain the peers from it."""
        clock = SimulatedClock()
        media, store = three_way_store(clock)
        store.put("k", 1)
        media[0].fail()
        store.put("k", 2)  # replica 0: in-sync but DOWN
        media[0].heal()
        media[1].wipe()
        store.note_wiped(1)
        media[2].wipe()
        store.note_wiped(2)
        clock.advance(1.5)
        store.catch_up()
        health = store.health()
        assert health["under_replicated"] is False
        assert all(
            entry["state"] != "down" and not entry["resync_required"]
            for entry in health["replicas"].values()
        )
        assert store.get("k") == 2


class TestInterruptedCompletionRedrive:
    """Seed-15 regression, part two: a rollback (or phase two) sweep
    interrupted by a store-layer failure must be re-drivable once the
    media heal, instead of stranding the transaction forever."""

    def build(self):
        clock = SimulatedClock()
        media, store = three_way_store(clock)
        factory = TransactionFactory(clock=clock)
        cell = TransactionalCell("acct", 100.0, factory, store=store)
        return clock, media, store, factory, cell

    def wedge_rollback(self, media, factory, cell):
        tx = factory.create()
        cell.write(tx, 60.0)
        for medium in media:
            medium.fail()
        with pytest.raises(ReplicationError):
            tx.rollback()
        assert tx.status is TransactionStatus.ROLLING_BACK
        assert tx in factory.active_transactions()
        return tx

    def test_redrive_finishes_an_interrupted_rollback(self):
        clock, media, store, factory, cell = self.build()
        tx = self.wedge_rollback(media, factory, cell)
        for medium in media:
            medium.heal()
        clock.advance(1.5)
        store.catch_up()
        assert factory.redrive_stuck() == [tx.tid]
        assert tx.status is TransactionStatus.ROLLED_BACK
        assert factory.active_transactions() == []
        assert cell.read() == 100.0

    def test_redrive_is_safe_while_the_store_is_still_down(self):
        clock, media, store, factory, cell = self.build()
        tx = self.wedge_rollback(media, factory, cell)
        assert factory.redrive_stuck() == []  # still below quorum: retried later
        assert tx.status is TransactionStatus.ROLLING_BACK
        for medium in media:
            medium.heal()
        clock.advance(1.5)
        store.catch_up()
        assert factory.redrive_stuck() == [tx.tid]

    def test_redrive_ignores_healthy_transactions(self):
        clock, media, store, factory, cell = self.build()
        tx = factory.create()
        cell.write(tx, 60.0)
        assert factory.redrive_stuck() == []
        assert tx.status is TransactionStatus.ACTIVE
        tx.commit()
        assert cell.read() == 60.0
