"""Transaction factory: creation, registry, timeouts and fail-points."""

from __future__ import annotations

import threading
from typing import Any, Callable, List, Optional, Set

from repro.config import FactoryConfig
from repro.exceptions import ConfigurationError, ReproError
from repro.ots.coordinator import Control, Transaction
from repro.ots.exceptions import InvalidTransaction, SimulatedCrash
from repro.ots.locks import LockManager
from repro.ots.status import TransactionStatus
from repro.persistence.wal import GroupCommitWAL, WriteAheadLog
from repro.util.admission import AdmissionGate, build_gate
from repro.util.clock import Clock, SimulatedClock
from repro.util.events import EventLog
from repro.util.idgen import IdGenerator
from repro.util.sharding import StripedMap
from repro.util.timer_wheel import HierarchicalTimerWheel, RecurringTimer
from repro.util.workers import ReentrantWorkerPool


class Failpoints:
    """Named crash points armed by tests to halt the coordinator mid-protocol.

    ``arm("after_commit_log")`` makes the next pass through that point
    raise :class:`SimulatedCrash`; points disarm after firing once.

    ``on_fire`` (when set) runs just before the raise.  The site daemon
    uses it to turn a simulated crash into a real one — SIGKILL of its
    own process — so the same armed points drive both the in-process
    crash tests and the true multi-process fault-tolerance tests.
    """

    def __init__(self) -> None:
        self._armed: Set[str] = set()
        self.fired: List[str] = []
        self.on_fire: Optional[Callable[[str], None]] = None

    def arm(self, name: str) -> None:
        self._armed.add(name)

    def disarm(self, name: str) -> None:
        self._armed.discard(name)

    def clear(self) -> None:
        self._armed.clear()

    def armed(self) -> List[str]:
        return sorted(self._armed)

    def hit(self, name: str) -> None:
        if name in self._armed:
            self._armed.discard(name)
            self.fired.append(name)
            if self.on_fire is not None:
                self.on_fire(name)
            raise SimulatedCrash(f"fail-point {name!r} fired")


class TransactionFactory:
    """Creates and tracks transactions for one simulated deployment.

    The factory owns the pieces every transaction shares: the clock, the
    write-ahead log (for commit decisions), the lock manager, the event
    log and the fail-point switchboard.  It also keeps a registry of live
    transactions by tid, which is what lets the propagation interceptors
    re-associate an incoming request with its transaction — the moral
    equivalent of OTS interposition.

    Tuning lives in :class:`~repro.config.FactoryConfig` (see its
    docstring for the knobs and defaults); the old keyword arguments
    remain as a deprecated shim.  Highlights:

    ``group_commit_window`` selects the logging engine: ``None`` keeps
    the classic immediate-force WAL; a float (seconds, 0 allowed) builds
    a :class:`~repro.persistence.wal.GroupCommitWAL` so concurrent
    commits share durable forces.  Coordinators log decisions through
    :meth:`log_commit_decision` / :meth:`log_completion`, which is where
    the batching takes effect.

    ``parallel_participants`` bounds how many participants a transaction
    contacts *concurrently* during phase one (votes) and phase two
    (commits): 1 (the default) keeps the classic serial sweep; N > 1
    fans out over worker threads while results are digested in
    registration order, so heuristics, votes and log records stay
    deterministic on the non-abandoned path.  After a no-vote the
    *count* of trailing ``tx_vote`` records is schedule-dependent
    (whether a sibling prepare dispatched before the abandonment decides
    whether it voted at all) — behaviour stays correct either way: only
    participants that actually prepared are rolled back.  It composes
    with ``group_commit_window`` — parallel phases shorten each
    transaction, group commit shares the forces across transactions.
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        wal: Optional[WriteAheadLog] = None,
        event_log: Optional[EventLog] = None,
        config: Optional[FactoryConfig] = None,
        **legacy: Any,
    ) -> None:
        self.config = config = FactoryConfig.resolve(
            config, legacy, "TransactionFactory"
        )
        group_commit_window = config.group_commit_window
        self.clock = clock if clock is not None else SimulatedClock()
        if wal is None:
            if group_commit_window is not None:
                wal = GroupCommitWAL(window=group_commit_window)
            else:
                wal = WriteAheadLog()
        elif group_commit_window is not None:
            if not isinstance(wal, GroupCommitWAL):
                raise ValueError(
                    "group_commit_window requires a GroupCommitWAL; the"
                    " supplied log forces every append privately"
                )
            wal.window = group_commit_window
        self.wal = wal
        self.group_commit_window = getattr(wal, "window", None)
        self.event_log = (
            event_log
            if event_log is not None
            else EventLog(self.clock, max_events=config.max_events)
        )
        # Admission control (PR 10): None unless max_live is configured,
        # so the default create path is exactly the pre-gate code.
        self.admission: Optional[AdmissionGate] = build_gate(
            config, clock=self.clock, name="TransactionFactory"
        )
        self.lock_manager = LockManager()
        self.failpoints = Failpoints()
        self.retry_attempts = config.retry_attempts
        self.parallel_participants = config.parallel_participants
        # Invocation fast path: each protocol round (prepare / commit /
        # rollback) over remote participants encodes its request body
        # once per ORB and patches only the target per call.
        self.marshal_once = config.marshal_once
        self._participant_pool = ReentrantWorkerPool(
            config.parallel_participants, thread_name_prefix="participants"
        )
        self.ids = IdGenerator(prefix=config.tid_prefix)
        # Striped registries: begin/get/finish from parallel participant
        # workers touch only the owning segment, not one global lock.
        self._transactions = StripedMap(shards=config.registry_shards)
        self._active = StripedMap(shards=config.registry_shards)
        self._counter_lock = threading.Lock()
        self.created = 0
        self.committed = 0
        self.rolled_back = 0
        # Deadline policing: with a wheel, each timed transaction arms
        # one O(1) timer (cancelled on finish) instead of relying on a
        # full registry sweep.  On a SimulatedClock the wheel is attached
        # so `advance` keeps auto-firing expiry exactly like the old
        # heapq path did.  NOTE: this deliberately differs from
        # ActivityManager's wheel protocol — OTS expiry is inclusive
        # (now >= deadline, firing during clock advance, recording
        # tx_timeout), while activity expiry is strictly-past and
        # poll-only; keep the two in mind before unifying them.
        timer_wheel = config.timer_wheel
        if timer_wheel is None or timer_wheel is False:
            self._wheel: Optional[HierarchicalTimerWheel] = None
        elif timer_wheel is True:
            if isinstance(self.clock, SimulatedClock) and self.clock.wheel is not None:
                self._wheel = self.clock.wheel
            else:
                self._wheel = HierarchicalTimerWheel(tick=config.wheel_tick)
        else:
            self._wheel = timer_wheel
        if self._wheel is not None:
            if isinstance(self.clock, SimulatedClock):
                self.clock.attach_wheel(self._wheel)
            elif self._wheel.now < self.clock.now():
                self._wheel.advance_to(self.clock.now())
        self._expired_batch: List[str] = []
        self._collecting_expired = False
        self._rearm_queue: List[str] = []
        self._maintenance: List[RecurringTimer] = []

    @property
    def timer_wheel(self) -> Optional[HierarchicalTimerWheel]:
        return self._wheel

    def _arm_expiry_timer(self, tx: Transaction, clamp: bool = False) -> None:
        when = tx.deadline
        if clamp:
            when = max(when, self._wheel.now)
        tx._expiry_timer = self._wheel.schedule_at(
            when,
            callback=lambda t=tx.tid: self._expire(t),
            payload=tx.tid,
        )

    # -- durable logging ----------------------------------------------------

    def log_commit_decision(self, tid: str, recovery_keys: List[str]):
        """Force the commit decision; under group commit the force is shared
        with every other transaction inside the batching window."""
        return self.wal.append(
            "tx_commit_decision", tid=tid, recovery_keys=recovery_keys
        )

    def log_completion(self, tid: str):
        """Log the end of phase two (marks the transaction resolved)."""
        return self.wal.append("tx_completed", tid=tid)

    # -- parallel participant calls -----------------------------------------

    def participant_pool(self) -> ReentrantWorkerPool:
        """The shared worker pool for parallel participant calls.

        Threads are created lazily on first submission (a factory with
        ``parallel_participants=1`` never fans out) and reused by every
        transaction of this factory, so a high-throughput workload does
        not pay thread churn per phase; ``parallel_participants`` is the
        factory-wide budget of concurrent participant calls.
        """
        return self._participant_pool

    def in_participant_worker(self) -> bool:
        """True on threads running a participant call for this factory.

        A participant that itself commits another transaction through
        the same factory must not fan out again — waiting on the shared
        pool from inside it can exhaust the slots and deadlock, so such
        nested phases run serially.
        """
        return self._participant_pool.in_worker()

    def shutdown_participant_pool(self) -> None:
        """Release the shared pool's threads (idempotent; tests/teardown)."""
        self._participant_pool.shutdown()

    def reap_idle_workers(self, max_idle: float = 30.0) -> bool:
        """Tear down the participant pool when it has sat idle (PR 10).

        A burst of parallel 2PC traffic lazily spawns up to
        ``parallel_participants`` daemon threads; once the burst drains
        they used to park forever.  Returns True when threads were
        released; the next parallel phase transparently recreates them.
        """
        return self._participant_pool.reap_if_idle(max_idle)

    def schedule_worker_reap(
        self, interval: float, max_idle: float = 30.0
    ) -> RecurringTimer:
        """Wheel-scheduled :meth:`reap_idle_workers` every ``interval`` s."""
        return self.schedule_maintenance(
            interval, lambda: self.reap_idle_workers(max_idle)
        )

    # -- creation ---------------------------------------------------------

    def create(self, timeout: float = 0.0, name: Optional[str] = None) -> Transaction:
        """Begin a new top-level transaction.

        With admission control configured (``FactoryConfig.max_live``),
        a create past the live-population cap raises
        :class:`~repro.exceptions.AdmissionRejected` before any state is
        created; the slot is returned when the transaction finishes.
        Subtransactions ride their parent's admission and are never
        gated.
        """
        admitted = False
        if self.admission is not None:
            deadline = self.clock.now() + timeout if timeout > 0 else None
            self.admission.admit(kind=name, deadline=deadline)
            admitted = True
        try:
            tid = self.ids.next("tx")
            tx = Transaction(self, tid, parent=None, timeout=timeout, name=name)
            self._transactions.put(tid, tx)
            self._active.put(tid, True)
        except BaseException:
            if admitted:
                self.admission.release()
            raise
        tx._admitted = admitted
        with self._counter_lock:
            self.created += 1
        self.event_log.record("tx_begin", tid=tid, top_level=True)
        if timeout > 0:
            if self._wheel is not None:
                self._arm_expiry_timer(tx)
            elif isinstance(self.clock, SimulatedClock):
                self.clock.call_after(timeout, lambda: self._expire(tid))
        return tx

    def create_control(self, timeout: float = 0.0, name: Optional[str] = None) -> Control:
        """Spec-shaped variant of :meth:`create`."""
        return Control(self.create(timeout, name))

    def create_subtransaction(
        self, parent: Transaction, name: Optional[str] = None
    ) -> Transaction:
        tid = self.ids.next("tx")
        tx = Transaction(self, tid, parent=parent, timeout=0.0, name=name)
        self._transactions.put(tid, tx)
        self._active.put(tid, True)
        with self._counter_lock:
            self.created += 1
        self.event_log.record("tx_begin", tid=tid, top_level=False, parent=parent.tid)
        return tx

    # -- registry ------------------------------------------------------------

    def get(self, tid: str) -> Transaction:
        tx = self._transactions.get(tid)
        if tx is None:
            raise InvalidTransaction(f"unknown transaction {tid!r}")
        return tx

    def knows(self, tid: str) -> bool:
        return tid in self._transactions

    def active_transactions(self) -> List[Transaction]:
        listed = []
        for tid in self._active.sorted_keys():
            tx = self._transactions.get(tid)
            if tx is not None:
                listed.append(tx)
        return listed

    def on_transaction_finished(self, tx: Transaction) -> None:
        """Called by transactions when they reach a terminal state."""
        self._active.pop(tx.tid, None)
        if getattr(tx, "_admitted", False):
            # Release exactly once even if the terminal transition is
            # re-reported; adopted/recovered transactions never set it.
            tx._admitted = False
            if self.admission is not None:
                self.admission.release()
        handle = tx._expiry_timer
        if handle is not None:
            handle.cancel()
            tx._expiry_timer = None
        with self._counter_lock:
            if tx.status is TransactionStatus.COMMITTED:
                self.committed += 1
            elif tx.status is TransactionStatus.ROLLED_BACK:
                self.rolled_back += 1

    # -- timeouts ---------------------------------------------------------------

    def _expire(self, tid: str) -> None:
        tx = self._transactions.get(tid)
        if tx is None or tx.status.is_terminal or tx.deadline is None:
            return
        if self.clock.now() >= tx.deadline:
            self.event_log.record("tx_timeout", tid=tid)
            tx.rollback()
            if self._collecting_expired:
                self._expired_batch.append(tid)
        elif self._wheel is not None:
            # The one-shot wheel timer fired ahead of the deadline (a
            # shared wheel advanced by a foreign owner): queue a re-arm
            # so the timeout is not silently disarmed.  Re-arming from
            # inside the advance itself could livelock, so it waits for
            # the next expire_timeouts sweep.
            self._rearm_queue.append(tid)

    def expire_timeouts(self) -> List[str]:
        """Roll back every active transaction whose deadline has passed.

        With a timer wheel only the armed, strictly-overdue timers fire
        (O(expiring)); transactions already rolled back by clock-driven
        wheel firings are not re-reported, matching the historical
        SimulatedClock behaviour.  Without a wheel this remains the full
        registry sweep.
        """
        now = self.clock.now()
        if self._wheel is not None:
            if self._rearm_queue:
                queue, self._rearm_queue = self._rearm_queue, []
                for tid in queue:
                    tx = self._transactions.get(tid)
                    if (
                        tx is not None
                        and not tx.status.is_terminal
                        and tx.deadline is not None
                    ):
                        self._arm_expiry_timer(tx, clamp=True)
            self._expired_batch = []
            self._collecting_expired = True
            try:
                self._wheel.advance_to(now, strict=True)
            finally:
                self._collecting_expired = False
            expired, self._expired_batch = self._expired_batch, []
            return sorted(expired)
        expired = []
        for tid in self._active.sorted_keys():
            tx = self._transactions.get(tid)
            if (
                tx is not None
                and tx.deadline is not None
                and now > tx.deadline
                and not tx.status.is_terminal
            ):
                tx.rollback()
                expired.append(tid)
        return expired

    def redrive_stuck(self) -> List[str]:
        """Re-drive completions interrupted mid-sweep; returns finished tids.

        A durable-store failure during phase two or a rollback sweep
        strands a transaction in ``COMMITTING``/``ROLLING_BACK`` (see
        :meth:`Transaction.redrive`).  This sweep retries each such
        transaction and swallows per-transaction failures — a replica
        set still below quorum just leaves the transaction for the next
        sweep.
        """
        finished = []
        for tx in self.active_transactions():
            if tx.status not in (
                TransactionStatus.COMMITTING,
                TransactionStatus.ROLLING_BACK,
            ):
                continue
            try:
                if tx.redrive():
                    finished.append(tx.tid)
            except ReproError:
                continue
        return finished

    # -- maintenance ----------------------------------------------------------------

    def schedule_maintenance(
        self, interval: float, task: Callable[[], None]
    ) -> RecurringTimer:
        """Run ``task`` every ``interval`` seconds on the timer wheel.

        Mirrors :meth:`ActivityManager.schedule_maintenance`: requires
        ``timer_wheel``; the task fires whenever the wheel advances —
        during ``expire_timeouts`` sweeps, or on clock ``advance`` when
        the wheel is clock-attached (the default on a SimulatedClock).
        """
        if self._wheel is None:
            raise ConfigurationError(
                "background maintenance needs TransactionFactory(timer_wheel=...)"
            )
        timer = RecurringTimer(self._wheel, interval, task)
        self._maintenance.append(timer)
        return timer

    def schedule_forget_completed(self, interval: float) -> RecurringTimer:
        """Periodically drop completed transactions from the registry —
        the wheel-scheduled companion to calling :meth:`forget_completed`
        by hand, so a long-lived factory's registry stops growing with
        its commit history."""
        return self.schedule_maintenance(interval, self.forget_completed)

    def cancel_maintenance(self) -> int:
        """Stop every scheduled maintenance cycle; return how many."""
        stopped = 0
        for timer in self._maintenance:
            if timer.active:
                timer.cancel()
                stopped += 1
        self._maintenance.clear()
        return stopped

    def forget_completed(self) -> int:
        """Drop completed transactions from the registry; return count."""
        done = [
            tid
            for tid, tx in self._transactions.items()
            if tx.status.is_terminal and tid not in self._active
        ]
        for tid in done:
            self._transactions.pop(tid, None)
        return len(done)
