"""Extended transaction models built purely on the Activity Service core.

Each module maps one model from §4 of the paper (plus the referenced Sagas
and CA-action models) onto concrete SignalSet and Action implementations —
no model touches the coordinator's internals, demonstrating the paper's
central claim: "a single implementation of this framework [can] serve a
large variety of extended transaction models".
"""

from repro.models.btp import (
    BtpAtom,
    BtpCohesion,
    BtpParticipant,
    BtpPrepareSignalSet,
    BtpCompleteSignalSet,
    BtpStatus,
)
from repro.models.ca_actions import CaAction, CaParticipant, ExceptionResolutionTree
from repro.models.lruow import (
    LongRunningUnitOfWork,
    LruowConflict,
    LruowResource,
    PerformanceSignalSet,
    RehearsalSignalSet,
)
from repro.models.open_nested import (
    CompensationAction,
    OpenNestedCompletionSignalSet,
    OpenNestedCoordinator,
)
from repro.models.saga import Saga, SagaAbortedError, SagaResult, SagaStep
from repro.models.twopc import (
    TransactionalResourceAction,
    TwoPhaseCommitSignalSet,
    TwoPhaseOutcome,
    TwoPhaseParticipant,
)
from repro.models.workflow import Task, TaskState, Workflow, WorkflowEngine, WorkflowResult

__all__ = [
    "TwoPhaseCommitSignalSet",
    "TwoPhaseParticipant",
    "TwoPhaseOutcome",
    "TransactionalResourceAction",
    "OpenNestedCompletionSignalSet",
    "CompensationAction",
    "OpenNestedCoordinator",
    "LongRunningUnitOfWork",
    "LruowResource",
    "LruowConflict",
    "RehearsalSignalSet",
    "PerformanceSignalSet",
    "Workflow",
    "WorkflowEngine",
    "WorkflowResult",
    "Task",
    "TaskState",
    "BtpAtom",
    "BtpCohesion",
    "BtpParticipant",
    "BtpPrepareSignalSet",
    "BtpCompleteSignalSet",
    "BtpStatus",
    "Saga",
    "SagaStep",
    "SagaResult",
    "SagaAbortedError",
    "CaAction",
    "CaParticipant",
    "ExceptionResolutionTree",
]
