"""Object references — the simulated IOR.

An :class:`ObjectRef` names a servant by ``(node_id, object_id)`` plus the
interface it implements.  References are location-transparent: invoking one
routes the request through the owning :class:`~repro.orb.core.Orb`'s
transport even when caller and servant share a node, so marshalling and
interceptor code paths are always exercised.

References can cross the wire (see :mod:`repro.orb.marshal`); the receiving
side re-binds them to its own ORB, exactly as a CORBA IOR is re-hydrated.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.exceptions import InvalidStateError


class ObjectRef:
    """A remote-invocable handle on a servant."""

    __slots__ = ("node_id", "object_id", "interface", "_orb")

    def __init__(self, node_id: str, object_id: str, interface: str = "") -> None:
        self.node_id = node_id
        self.object_id = object_id
        self.interface = interface
        self._orb: Optional[Any] = None

    def bind(self, orb: Any) -> "ObjectRef":
        """Attach this reference to an ORB so it can be invoked."""
        self._orb = orb
        return self

    @property
    def is_bound(self) -> bool:
        return self._orb is not None

    @property
    def orb(self) -> Any:
        if self._orb is None:
            raise InvalidStateError(f"reference {self} is not bound to an ORB")
        return self._orb

    def invoke(self, operation: str, *args: Any, **kwargs: Any) -> Any:
        """Perform a (simulated) remote invocation on the target servant."""
        return self.orb.invoke(self, operation, args, kwargs)

    def proxy(self) -> "Proxy":
        """Return an attribute-style proxy: ``ref.proxy().op(a, b)``."""
        return Proxy(self)

    def key(self) -> str:
        return f"{self.node_id}/{self.object_id}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ObjectRef)
            and self.node_id == other.node_id
            and self.object_id == other.object_id
        )

    def __hash__(self) -> int:
        return hash((self.node_id, self.object_id))

    def __repr__(self) -> str:
        return f"ObjectRef({self.node_id}/{self.object_id}:{self.interface})"


class Proxy:
    """Sugar wrapper turning attribute access into remote operations."""

    __slots__ = ("_ref",)

    def __init__(self, ref: ObjectRef) -> None:
        object.__setattr__(self, "_ref", ref)

    def __getattr__(self, operation: str) -> Any:
        ref = object.__getattribute__(self, "_ref")

        def call(*args: Any, **kwargs: Any) -> Any:
            return ref.invoke(operation, *args, **kwargs)

        call.__name__ = operation
        return call

    def __repr__(self) -> str:
        return f"Proxy({object.__getattribute__(self, '_ref')!r})"
