"""Seeded fault schedules for chaos campaigns.

A :class:`ChaosSchedule` is a fully materialised, deterministic list of
fault events drawn *up front* from a :class:`~repro.util.rng.SeededRng`.
Drawing the whole schedule before the run starts (rather than flipping
coins while the workload executes) is what makes seed replay exact: the
events a campaign injects are a pure function of ``(seed, steps,
profile)``, independent of how the workload reacts to them.

Events come in paired arcs so the drawn schedule is always well formed:

- ``partition`` … ``heal`` — a link goes dark for a bounded window.
- ``crash`` … ``restart`` — a whole domain process dies (SIGKILL
  analogue) and is rebooted from its durable media a few steps later.
- ``failpoint`` … ``restart`` — a protocol-point crash is armed
  (:class:`~repro.ots.factory.Failpoints`); if the workload trips it the
  domain dies mid-2PC, and the paired restart revives it either way.
- ``flaky`` … ``clear_faults`` — a link's fault plan turns hostile
  (drops, duplicate deliveries, latency) for a window.
- ``clock_jump`` — the simulated clock leaps forward, firing timeouts.
- ``replica_loss`` … ``replica_heal`` — one of a domain's replica media
  stops answering (pulled cable) for a window; quorum writes continue
  degraded and the healed disk is re-synced.  Off by default.
- ``disk_wipe`` — one replica medium is replaced with an empty disk;
  the replication layer must re-seed it (and promote a survivor when it
  held the primary).  Off by default.

The scheduler tracks per-domain and per-link busy windows so arcs never
overlap incoherently (a domain is not crashed twice before its restart,
a link is not partitioned while already partitioned).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.util.rng import SeededRng

#: Protocol points a drawn ``failpoint`` event may arm.  These are the
#: same names the crash-recovery tests use; each makes the *next* commit
#: on the chosen domain die at a different spot in the 2PC state machine.
FAILPOINT_NAMES: Tuple[str, ...] = (
    "before_prepare",
    "before_commit_log",
    "after_commit_log",
)


@dataclass(frozen=True)
class ChaosEvent:
    """One injected fault, pinned to a workload step.

    ``target`` names the victim: a single domain for crash/restart/
    failpoint events, a ``(domain_a, domain_b)`` pair for link events,
    and is empty for clock jumps.  ``value`` carries the magnitude
    (seconds for jumps/latency, a probability for drops/duplicates).
    """

    step: int
    kind: str
    target: Tuple[str, ...] = ()
    value: float = 0.0
    detail: str = ""

    def describe(self) -> str:
        bits = [self.kind]
        if self.target:
            bits.append("/".join(self.target))
        if self.value:
            bits.append(f"{self.value:g}")
        if self.detail:
            bits.append(self.detail)
        return ":".join(bits)


@dataclass
class ChaosProfile:
    """Tunable event rates and magnitudes for schedule drawing.

    Probabilities are per-step chances that a new arc of that family
    starts (subject to the victim being idle).  Durations and delays are
    inclusive step ranges; magnitudes are uniform ranges.
    """

    partition_probability: float = 0.10
    partition_duration: Tuple[int, int] = (2, 6)
    crash_probability: float = 0.06
    restart_delay: Tuple[int, int] = (2, 5)
    failpoint_probability: float = 0.06
    flaky_probability: float = 0.10
    flaky_duration: Tuple[int, int] = (2, 5)
    drop_probability_range: Tuple[float, float] = (0.05, 0.35)
    duplicate_probability_range: Tuple[float, float] = (0.1, 0.5)
    latency_range: Tuple[float, float] = (0.01, 0.2)
    clock_jump_probability: float = 0.08
    clock_jump_range: Tuple[float, float] = (0.5, 20.0)
    # Replica-media faults (PR 9).  Default 0.0 — and drawn *after* every
    # older family in the threshold chain — so schedules for existing
    # seeds stay byte-identical unless a profile opts in.
    replica_loss_probability: float = 0.0
    replica_heal_delay: Tuple[int, int] = (3, 8)
    disk_wipe_probability: float = 0.0
    replica_count: int = 3

    def quiet(self) -> "ChaosProfile":
        """A copy with every fault family switched off (control runs)."""
        return ChaosProfile(
            partition_probability=0.0,
            crash_probability=0.0,
            failpoint_probability=0.0,
            flaky_probability=0.0,
            clock_jump_probability=0.0,
        )


@dataclass
class ChaosSchedule:
    """An ordered, immutable-once-drawn list of fault events."""

    steps: int
    events: List[ChaosEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events.sort(key=lambda e: (e.step, e.kind, e.target))
        self._by_step: Dict[int, List[ChaosEvent]] = {}
        for event in self.events:
            self._by_step.setdefault(event.step, []).append(event)

    def due(self, step: int) -> List[ChaosEvent]:
        """Events to inject before executing workload step ``step``."""
        return self._by_step.get(step, [])

    def describe(self) -> List[str]:
        return [f"[{e.step}] {e.describe()}" for e in self.events]

    # -- drawing -----------------------------------------------------------

    @classmethod
    def draw(
        cls,
        rng: SeededRng,
        steps: int,
        domains: Sequence[str],
        profile: Optional[ChaosProfile] = None,
    ) -> "ChaosSchedule":
        """Materialise a schedule for ``steps`` workload steps.

        At most one new arc begins per step (keeps campaigns readable and
        failures attributable); paired end events land later.  Busy
        windows guarantee coherence: a domain has at most one open
        crash/failpoint arc, a link at most one open partition or flaky
        window, at any time.
        """
        profile = profile if profile is not None else ChaosProfile()
        domains = list(domains)
        links = [
            (domains[i], domains[j])
            for i in range(len(domains))
            for j in range(i + 1, len(domains))
        ]
        events: List[ChaosEvent] = []
        domain_busy: Dict[str, int] = {name: -1 for name in domains}
        link_busy: Dict[Tuple[str, str], int] = {link: -1 for link in links}
        # Replica faults get their own busy map: at most one open
        # loss/wipe arc per domain at a time, which is what guarantees a
        # write quorum (and at least one fresh copy) always survives —
        # the precondition of the replication invariant the campaign
        # asserts.  It is independent of crash arcs: a domain may lose a
        # disk while its process is also down.
        replica_busy: Dict[str, int] = {name: -1 for name in domains}

        def idle_domains(step: int) -> List[str]:
            return [d for d in domains if domain_busy[d] < step]

        def idle_links(step: int) -> List[Tuple[str, str]]:
            return [l for l in links if link_busy[l] < step]

        for step in range(steps):
            roll = rng.random()
            threshold = 0.0

            threshold += profile.crash_probability
            if roll < threshold:
                victims = idle_domains(step)
                if victims:
                    victim = rng.choice(victims)
                    back = step + rng.randint(*profile.restart_delay)
                    domain_busy[victim] = back
                    events.append(ChaosEvent(step, "crash", (victim,)))
                    events.append(ChaosEvent(back, "restart", (victim,)))
                continue

            threshold += profile.failpoint_probability
            if roll < threshold:
                victims = idle_domains(step)
                if victims:
                    victim = rng.choice(victims)
                    point = rng.choice(FAILPOINT_NAMES)
                    back = step + rng.randint(*profile.restart_delay)
                    domain_busy[victim] = back
                    events.append(
                        ChaosEvent(step, "failpoint", (victim,), detail=point)
                    )
                    events.append(ChaosEvent(back, "restart", (victim,)))
                continue

            threshold += profile.partition_probability
            if roll < threshold:
                open_links = idle_links(step)
                if open_links:
                    link = rng.choice(open_links)
                    heal = step + rng.randint(*profile.partition_duration)
                    link_busy[link] = heal
                    events.append(ChaosEvent(step, "partition", link))
                    events.append(ChaosEvent(heal, "heal", link))
                continue

            threshold += profile.flaky_probability
            if roll < threshold:
                open_links = idle_links(step)
                if open_links:
                    link = rng.choice(open_links)
                    clear = step + rng.randint(*profile.flaky_duration)
                    link_busy[link] = clear
                    flavour = rng.choice(("drops", "duplicates", "latency"))
                    if flavour == "drops":
                        value = rng.uniform(*profile.drop_probability_range)
                    elif flavour == "duplicates":
                        value = rng.uniform(*profile.duplicate_probability_range)
                    else:
                        value = rng.uniform(*profile.latency_range)
                    events.append(
                        ChaosEvent(step, "flaky", link, value, detail=flavour)
                    )
                    events.append(ChaosEvent(clear, "clear_faults", link))
                continue

            threshold += profile.clock_jump_probability
            if roll < threshold:
                jump = rng.uniform(*profile.clock_jump_range)
                events.append(ChaosEvent(step, "clock_jump", (), jump))
                continue

            threshold += profile.replica_loss_probability
            if roll < threshold:
                victims = [d for d in domains if replica_busy[d] < step]
                if victims:
                    victim = rng.choice(victims)
                    index = rng.randint(0, profile.replica_count - 1)
                    heal = step + rng.randint(*profile.replica_heal_delay)
                    replica_busy[victim] = heal
                    events.append(
                        ChaosEvent(step, "replica_loss", (victim,), float(index))
                    )
                    events.append(
                        ChaosEvent(heal, "replica_heal", (victim,), float(index))
                    )
                continue

            threshold += profile.disk_wipe_probability
            if roll < threshold:
                victims = [d for d in domains if replica_busy[d] < step]
                if victims:
                    victim = rng.choice(victims)
                    index = rng.randint(0, profile.replica_count - 1)
                    # A wipe resolves synchronously (the replication
                    # layer re-seeds on note_wiped), so the busy window
                    # only needs to block same-domain replica arcs from
                    # stacking in this step.
                    replica_busy[victim] = step
                    events.append(
                        ChaosEvent(step, "disk_wipe", (victim,), float(index))
                    )

        return cls(steps=steps, events=events)
