"""Site daemons: one ORB per OS process, federated over real sockets.

The in-process deployment model — many ORBs, one interpreter, an
:class:`~repro.orb.federation.InterOrbBridge` carrying bytes between
them — is exact but simulated.  This module is the *deployment* half of
the same design: a **site** is one process hosting one
:class:`~repro.orb.core.Orb`, its own :class:`TransactionFactory` + WAL,
and a :class:`~repro.orb.socket_transport.SocketTransport` listener.
Sites know each other from a static site list (``SiteConfig.peers``) and
speak the transport's framed protocol; federation and OTS coordinator
interposition run **unchanged** on top, because :class:`SiteFederation`
duck-types the bridge surface the interposition layer consumes
(``coordination_node`` / ``domain_of_node`` / ``register_service`` /
``route``).

Key identification decision: **site id == coordination domain id**.  A
node created on a site's ORB belongs to that site's domain; the
well-known coordination node is ``fed:<site>``; a subordinate's durable
recovery key (``fedsub-tx:<site>:<tid>``) therefore names the process to
replay into after any crash, with no extra mapping table.

Crash story (the paper's §fault-tolerance, now with real SIGKILL):

- every commit decision and every interposed-subordinate prepare is in
  the site's WAL, which lives in a
  :class:`~repro.persistence.object_store.SegmentedFileStore` under
  ``data_dir`` whenever a data directory is configured — regardless of
  how application cell state is stored;
- on boot, :meth:`SiteRuntime.serve` replays that WAL
  (``FederatedTransactionService.recover``) before reporting ready,
  retrying until every cross-site replay lands (a peer being down makes
  recovery *wait*, not fail);
- between rounds the serve loop polls ``resolve_in_doubt()`` so a
  subordinate left prepared by a superior that crashed *before logging
  its decision* learns the (presumed-abort) outcome from the superior's
  durable recovery servant instead of holding locks forever.
"""

from __future__ import annotations

import base64
import dataclasses
import importlib
import json
import os
import threading
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.config import (
    ConfigValidationError,
    FactoryConfig,
    OrbConfig,
    ReplicationConfig,
)
from repro.exceptions import CommunicationError, ConfigurationError, OverloadError
from repro.orb.core import Node, Orb
from repro.orb.marshal import CODECS, Marshaller
from repro.orb.membership import FailureDetector, FailureDetectorConfig, PeerState
from repro.orb.reference import ObjectRef
from repro.orb.socket_transport import SocketTransport
from repro.ots.current import TransactionCurrent
from repro.ots.factory import TransactionFactory
from repro.ots.interposition import (
    FederatedTransactionService,
    install_federated_transaction_service,
)
from repro.ots.recoverable import RecoverableRegistry, TransactionalCell
from repro.persistence.object_store import (
    FileStore,
    MemoryStore,
    ObjectStore,
    SegmentedFileStore,
    StoreError,
)
from repro.persistence.replicated import (
    ReplicatedStore,
    ReplicatedWAL,
    ReplicaMedium,
    ReplicationError,
)
from repro.persistence.sqlite_store import SqliteStore
from repro.persistence.wal import WriteAheadLog
from repro.util.admission import TokenBucket
from repro.util.clock import WallClock
from repro.util.events import EventLog
from repro.util.retry import RetryPolicy

_FED_PREFIX = "fed:"


@dataclass(frozen=True)
class SiteConfig:
    """Everything one site daemon needs, JSON-serialisable.

    ``site_id``
        This process's site *and* coordination-domain name.
    ``host`` / ``port``
        Listener address (port 0 asks the OS for a free port — useful
        for in-test runtimes, not for daemons that peers must find).
    ``peers``
        The static site list: ``{site_id: (host, port)}`` for every
        *other* site.  All sites ship the same list; each ignores its
        own entry.
    ``data_dir``
        Durable root.  The WAL always lives here
        (``<data_dir>/wal``, segmented store) when set; ``None`` keeps
        everything in memory (no crash recovery — tests only).
    ``cell_store``
        Backing for application :class:`TransactionalCell` state:
        ``"segmented"`` (``<data_dir>/cells``) or ``"memory"``.
    ``app``
        Optional ``"module:function"`` setup hook, called with the
        :class:`SiteRuntime` after the runtime is wired but before
        recovery, so it can create nodes, servants and cells (recovery
        needs the cells registered to replay into them).
    ``poll_interval``
        Seconds between serve-loop rounds (recovery retry /
        ``resolve_in_doubt`` polling / heartbeat probes).  While
        recovery keeps failing the wait backs off under ``retry``
        instead of hammering a dead superior at a fixed cadence.
    ``orb`` / ``factory``
        Keyword dictionaries folded into :class:`OrbConfig` /
        :class:`FactoryConfig` (e.g. ``{"marshal_once": false}``).
    ``heartbeat``
        Failure-detection knobs folded into
        :class:`~repro.orb.membership.FailureDetectorConfig`
        (``heartbeat_interval`` defaults to ``poll_interval``); set
        ``{"enabled": false}`` to run with the pre-PR-8 static-peers
        behaviour (no liveness, no quarantine).
    ``retry``
        Knobs folded into :class:`~repro.util.retry.RetryPolicy` for
        the transport's reconnect backoff and the serve loop's
        recovery/resolution polling.
    ``orphan_min_age``
        Seconds an adopted subordinate may sit unprepared with no word
        from its superior before the serve loop unilaterally rolls it
        back (presumed abort makes that safe at any age; the grace
        period just keeps slow-but-live transactions out of the sweep).
        Orphans happen when the superior dies — or is quarantined —
        between adopting a subordinate and driving its completion; the
        subordinate holds locks forever unless someone sweeps it.
    ``replication``
        Replica declarations folded into
        :class:`~repro.config.ReplicationConfig` (e.g.
        ``{"replicas": 3, "write_quorum": 2, "backend": "segmented"}``).
        With ``replicas > 1`` the site's WAL and cell store become a
        :class:`~repro.persistence.replicated.ReplicatedWAL` /
        :class:`~repro.persistence.replicated.ReplicatedStore` over
        per-replica media under ``<data_dir>/replica-<i>/`` — quorum
        acks, degraded serving and deterministic promotion, superseding
        the ``cell_store`` backend choice.  Empty (the default) keeps
        the single-copy layout.
    ``max_events``
        Ring-buffer bound for the daemon's :class:`EventLog` (PR 10).
        Bounded *by default* (4096) so soak runs don't grow memory
        without bound; the dropped count is surfaced in ``debug_dump``.
        ``None`` restores the unbounded log.
    ``quotas``
        Per-source-site admission quotas (PR 10):
        ``{source_site_or_"*": {"rate": r, "burst": b}}``.  Inbound
        REQUEST frames from a source that drained its bucket are shed
        with a typed :class:`~repro.exceptions.OverloadError` before
        dispatch (``"*"`` is the catch-all for unlisted sources).
        Empty (the default) installs no gate.
    ``codecs``
        Wire-codec preference list for HELLO negotiation (PR 10), best
        first, e.g. ``["struct", "legacy"]``.  Peers advertising codecs
        get the first mutual one; peers that don't are spoken to in
        ``legacy``, so mixed fleets upgrade one site at a time.  Empty
        (the default) disables negotiation — HELLO bytes unchanged.
    """

    site_id: str
    host: str = "127.0.0.1"
    port: int = 0
    peers: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    data_dir: Optional[str] = None
    cell_store: str = "memory"
    app: Optional[str] = None
    poll_interval: float = 0.2
    orb: Dict[str, Any] = field(default_factory=dict)
    factory: Dict[str, Any] = field(default_factory=dict)
    heartbeat: Dict[str, Any] = field(default_factory=dict)
    retry: Dict[str, Any] = field(default_factory=dict)
    orphan_min_age: float = 5.0
    replication: Dict[str, Any] = field(default_factory=dict)
    max_events: Optional[int] = 4096
    quotas: Dict[str, Any] = field(default_factory=dict)
    codecs: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.site_id:
            raise ConfigValidationError("SiteConfig: site_id must be non-empty")
        if self.cell_store not in ("memory", "segmented"):
            raise ConfigValidationError(
                f"SiteConfig: cell_store must be 'memory' or 'segmented',"
                f" got {self.cell_store!r}"
            )
        if self.cell_store == "segmented" and self.data_dir is None:
            raise ConfigValidationError(
                "SiteConfig: cell_store='segmented' requires data_dir"
            )
        if self.poll_interval <= 0:
            raise ConfigValidationError(
                f"SiteConfig: poll_interval must be > 0, got {self.poll_interval!r}"
            )
        if self.orphan_min_age <= 0:
            raise ConfigValidationError(
                f"SiteConfig: orphan_min_age must be > 0,"
                f" got {self.orphan_min_age!r}"
            )
        if self.max_events is not None and (
            not isinstance(self.max_events, int) or self.max_events < 1
        ):
            raise ConfigValidationError(
                f"SiteConfig: max_events must be None or >= 1,"
                f" got {self.max_events!r}"
            )
        for source, spec in self.quotas.items():
            if not isinstance(spec, dict) or "rate" not in spec:
                raise ConfigValidationError(
                    f"SiteConfig: quota for {source!r} must be a dict with"
                    f" a 'rate' key, got {spec!r}"
                )
            rate = spec["rate"]
            burst = spec.get("burst", rate)
            if not (isinstance(rate, (int, float)) and rate > 0):
                raise ConfigValidationError(
                    f"SiteConfig: quota rate for {source!r} must be > 0,"
                    f" got {rate!r}"
                )
            if not (isinstance(burst, (int, float)) and burst > 0):
                raise ConfigValidationError(
                    f"SiteConfig: quota burst for {source!r} must be > 0,"
                    f" got {burst!r}"
                )
        unknown_codecs = [name for name in self.codecs if name not in CODECS]
        if unknown_codecs:
            raise ConfigValidationError(
                f"SiteConfig: unknown codec(s) {unknown_codecs};"
                f" available: {sorted(CODECS)}"
            )
        # Fail at config time, not at boot: all dict blocks must fold cleanly.
        self.detector_config()
        self.retry_policy()
        replication = self.replication_config()
        if (
            replication is not None
            and replication.backend != "memory"
            and self.data_dir is None
        ):
            raise ConfigValidationError(
                "SiteConfig: replication with a durable backend requires data_dir"
            )

    def heartbeat_enabled(self) -> bool:
        return bool(self.heartbeat.get("enabled", True))

    def detector_config(self) -> FailureDetectorConfig:
        kwargs = {k: v for k, v in self.heartbeat.items() if k != "enabled"}
        kwargs.setdefault("heartbeat_interval", self.poll_interval)
        try:
            return FailureDetectorConfig(**kwargs)
        except (TypeError, ConfigurationError) as exc:
            raise ConfigValidationError(f"SiteConfig: bad heartbeat block: {exc}")

    def retry_policy(self) -> RetryPolicy:
        try:
            return RetryPolicy(**self.retry)
        except (TypeError, ConfigurationError) as exc:
            raise ConfigValidationError(f"SiteConfig: bad retry block: {exc}")

    def replication_config(self) -> Optional[ReplicationConfig]:
        """The folded replication block, ``None`` when replication is off
        (no block, or a single-copy declaration)."""
        if not self.replication:
            return None
        try:
            folded = ReplicationConfig(**self.replication)
        except (TypeError, ConfigurationError) as exc:
            raise ConfigValidationError(f"SiteConfig: bad replication block: {exc}")
        return folded if folded.replicas > 1 else None

    def to_dict(self) -> Dict[str, Any]:
        raw = dataclasses.asdict(self)
        raw["peers"] = {site: list(addr) for site, addr in self.peers.items()}
        return raw

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "SiteConfig":
        data = dict(raw)
        peers = {
            site: (addr[0], int(addr[1]))
            for site, addr in dict(data.pop("peers", {})).items()
        }
        return cls(peers=peers, **data)

    @classmethod
    def from_file(cls, path: str) -> "SiteConfig":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


class SiteFederation:
    """The bridge surface, backed by a socket transport.

    Where :class:`~repro.orb.federation.InterOrbBridge` holds every
    domain's ORB in one process, a site federation holds exactly *one*
    (its own) and reaches the rest over the wire.  Consequently the
    registry-style operations (``coordination_node``,
    ``register_service``) are local-only — a site never manipulates
    another site's objects directly, it *invokes* them — and node
    location is answered locally when possible, otherwise by ``locate``
    control probes against the site list (positive answers cached on the
    transport's node-home map).
    """

    def __init__(self, transport: SocketTransport, orb: Orb) -> None:
        self.transport = transport
        self.orb = orb
        self.site_id = transport.site_id
        self._services: Dict[str, Any] = {}
        orb.domain_id = self.site_id
        orb.federation = self

    # -- local-only registry surface ---------------------------------------

    def coordination_node(self, domain_id: str) -> Node:
        if domain_id != self.site_id:
            raise ConfigurationError(
                f"site {self.site_id} cannot host coordination node for"
                f" foreign domain {domain_id!r}"
            )
        node_id = _FED_PREFIX + domain_id
        if self.orb.has_node(node_id):
            return self.orb.node(node_id)
        return self.orb.create_node(node_id)

    def register_service(self, domain_id: str, name: str, service: Any) -> None:
        if domain_id != self.site_id:
            raise ConfigurationError(
                f"site {self.site_id} cannot register service in foreign"
                f" domain {domain_id!r}"
            )
        self._services[name] = service

    def service(self, domain_id: str, name: str) -> Optional[Any]:
        if domain_id != self.site_id:
            return None
        return self._services.get(name)

    # -- node location ------------------------------------------------------

    def domain_of_node(self, node_id: str) -> Optional[str]:
        """Which site serves ``node_id`` (``None`` when nobody answers).

        Resolution order: this ORB's own nodes, the ``fed:<site>``
        naming convention, the cached node-home map, then one fail-fast
        ``locate`` probe per listed peer.  Unreachable peers are treated
        as "don't know" — a boot-time collision check must not wedge on
        a site that happens to be down — and only positive answers are
        cached.
        """
        if self.orb.has_node(node_id):
            return self.site_id
        if node_id.startswith(_FED_PREFIX):
            return node_id[len(_FED_PREFIX):]
        cached = self.transport.node_home(node_id)
        if cached is not None:
            return cached
        for peer_id in self.transport.peers():
            try:
                reply = self.transport.control(
                    peer_id, {"op": "locate", "node": node_id}, attempts=1
                )
            except CommunicationError:
                continue
            if reply.get("domain") is not None:
                self.transport.register_remote_node(node_id, peer_id)
                return reply["domain"]
        return None

    # -- routing -------------------------------------------------------------

    def route(
        self, source_orb: Orb, source_node: str, ref: ObjectRef, request_bytes: bytes
    ) -> bytes:
        """Carry one marshalled request to the site serving ``ref``."""
        domain = self.domain_of_node(ref.node_id)
        if domain is None or domain == self.site_id:
            raise CommunicationError(
                f"site {self.site_id} cannot locate node {ref.node_id!r}"
                f" among peers {list(self.transport.peers())}"
            )
        return self.transport.request(domain, source_node, ref.node_id, request_bytes)

    def describe(self) -> Dict[str, Any]:
        return {
            "site": self.site_id,
            "services": sorted(self._services),
            "transport": self.transport.describe(),
        }


class SiteRuntime:
    """One site's fully wired stack: transport, ORB, OTS, recovery loop.

    Construction wires everything and runs the app hook; :meth:`serve`
    (or :meth:`serve_in_background` for tests/clients embedding a site)
    starts the listener and the recovery/resolution loop.  The runtime is
    also the surface the app hook programs against: :attr:`orb`,
    :attr:`factory`, :attr:`current`, :meth:`cell`.
    """

    def __init__(self, config: SiteConfig) -> None:
        self.config = config
        self.clock = WallClock()
        self.transport = SocketTransport(
            config.site_id,
            bind=(config.host, config.port),
            retry_policy=config.retry_policy(),
        )
        # Membership: a phi failure detector fed by serve-loop heartbeat
        # probes.  DOWN quarantines the peer on the transport (fast-fail
        # typed errors instead of reconnect-backoff blocking); the first
        # successful half-open probe re-admits it.
        self.failure_detector: Optional[FailureDetector] = (
            FailureDetector(
                self.clock,
                config.detector_config(),
                on_transition=self._on_peer_transition,
            )
            if config.heartbeat_enabled()
            else None
        )
        orb_kwargs = dict(config.orb)
        orb_kwargs["domain_id"] = config.site_id
        self.orb = Orb(
            clock=self.clock,
            transport=self.transport,
            config=OrbConfig(**orb_kwargs),
        )
        self.federation = SiteFederation(self.transport, self.orb)
        for peer_id, address in config.peers.items():
            if peer_id != config.site_id:
                self.transport.connect_peer(peer_id, address)
                if self.failure_detector is not None:
                    self.failure_detector.watch(peer_id)

        # The WAL is durable whenever the site has a data_dir at all:
        # commit decisions and subtx-prepared records must survive
        # SIGKILL even when application state is parameterised to memory
        # (the cells are then rebuilt by the app hook and recovered from
        # the WAL's replay, mirroring the in-process crash tests).
        # A replication block supersedes the single-copy layout: the WAL
        # and cell store become quorum-replicated over per-replica media
        # under <data_dir>/replica-<i>/, so losing one of those "disks"
        # degrades this domain instead of erasing it.
        replication = config.replication_config()
        self.replication = replication
        self.wal_media: List[ReplicaMedium] = []
        self.cell_media: List[ReplicaMedium] = []
        if config.data_dir is not None:
            os.makedirs(config.data_dir, exist_ok=True)
        if replication is not None:
            self.wal_media = self._replica_media(replication, "wal")
            self.cell_media = self._replica_media(replication, "cells")
            self.wal: WriteAheadLog = ReplicatedWAL(
                self.wal_media,
                window=0.0,
                write_quorum=replication.effective_quorum(),
                clock=self.clock,
            )
            self.cell_store: ObjectStore = ReplicatedStore(
                self.cell_media,
                write_quorum=replication.effective_quorum(),
                clock=self.clock,
                journal_limit=replication.journal_limit,
            )
        else:
            if config.data_dir is not None:
                wal_store: ObjectStore = SegmentedFileStore(
                    os.path.join(config.data_dir, "wal")
                )
            else:
                wal_store = MemoryStore()
            self.wal = WriteAheadLog(store=wal_store)
            if config.cell_store == "segmented":
                self.cell_store = SegmentedFileStore(
                    os.path.join(str(config.data_dir), "cells")
                )
            else:
                self.cell_store = MemoryStore()

        # Root tids key adoption maps and durable records on *other*
        # sites, so they must be unique across the fabric and across
        # this site's own restarts (a rebooted factory restarts its
        # counter): prefix with site id + per-boot nonce.
        factory_kwargs = dict(config.factory)
        factory_kwargs.setdefault(
            "tid_prefix", f"{config.site_id}.{uuid.uuid4().hex[:8]}:"
        )
        self.factory = TransactionFactory(
            clock=self.clock,
            wal=self.wal,
            # Bounded by default (PR 10): a soak-length daemon must not
            # grow its event log without bound; drops are counted and
            # surfaced via debug_dump.
            event_log=EventLog(self.clock, max_events=config.max_events),
            config=FactoryConfig(**factory_kwargs),
        )
        self.current = TransactionCurrent(self.factory)
        self.registry = RecoverableRegistry()
        self.service: FederatedTransactionService = (
            install_federated_transaction_service(
                self.orb, self.current, self.federation, registry=self.registry
            )
        )
        self.transport.set_request_handler(self.orb.dispatch_request)
        self.transport.set_control_handler(self._control)

        # Per-source-site quota buckets (PR 10): inbound REQUEST frames
        # from a source that drained its bucket are shed with a typed
        # OverloadError before any dispatch work.
        self._quota_buckets: Dict[str, TokenBucket] = {}
        self._quota_shed: Dict[str, int] = {}
        self._quota_lock = threading.Lock()
        if config.quotas:
            for source, spec in config.quotas.items():
                rate = float(spec["rate"])
                burst = float(spec.get("burst", rate))
                self._quota_buckets[source] = TokenBucket(
                    rate, burst, clock=self.clock
                )
            self.transport.set_inbound_gate(self._admit_inbound)

        # Codec negotiation (PR 10): advertise the configured preference
        # list on HELLO; transcode at the transport boundary for peers
        # whose mutual codec differs from this ORB's own.
        if config.codecs:
            local_codec = self.orb.marshaller.codec_name
            needed = dict.fromkeys(
                list(config.codecs) + [local_codec, "legacy"]
            )
            marshallers = {
                name: (
                    self.orb.marshaller
                    if name == local_codec
                    else Marshaller(self.orb.marshaller.registry, codec=name)
                )
                for name in needed
            }
            self.transport.enable_codec_negotiation(
                list(config.codecs), marshallers, local_codec=local_codec
            )

        self.recovered = False
        self.last_recovery_error: Optional[str] = None
        self._stop = threading.Event()
        self._serve_thread: Optional[threading.Thread] = None
        self._cells: Dict[str, TransactionalCell] = {}
        # Follower replicas this daemon hosts *for other domains*, keyed
        # by store name and served over the "replica" control op.
        self._hosted_replicas: Dict[str, ObjectStore] = {}

        if config.app:
            _resolve_app(config.app)(self)

    # -- replica media ---------------------------------------------------------

    def _admit_inbound(self, peer_site: Optional[str]) -> None:
        """Inbound-gate hook: charge the source site's quota bucket.

        A source without its own bucket falls back to the ``"*"``
        catch-all (when configured); sources with neither are admitted
        unconditionally.  Raises :class:`OverloadError` — which the
        transport returns as a typed wire error — when the bucket is
        dry, so remote clients fast-fail instead of queueing.
        """
        source = peer_site or "*"
        bucket = self._quota_buckets.get(source)
        if bucket is None and source != "*":
            bucket = self._quota_buckets.get("*")
        if bucket is None:
            return
        if not bucket.try_take():
            with self._quota_lock:
                self._quota_shed[source] = self._quota_shed.get(source, 0) + 1
            raise OverloadError(
                f"site {self.config.site_id!r} shed request from {source!r}: "
                f"quota exhausted ({bucket.rate:g}/s, burst {bucket.burst:g})"
            )

    def _replica_backend(
        self, backend: str, kind: str, index: int
    ) -> ObjectStore:
        if backend == "memory":
            return MemoryStore()
        root = os.path.join(str(self.config.data_dir), f"replica-{index}")
        if backend == "sqlite":
            return SqliteStore(os.path.join(root, f"{kind}.db"))
        if backend == "file":
            return FileStore(os.path.join(root, kind))
        return SegmentedFileStore(os.path.join(root, kind))

    def _replica_media(
        self, replication: ReplicationConfig, kind: str
    ) -> List[ReplicaMedium]:
        return [
            ReplicaMedium(
                f"{self.config.site_id}-{kind}-{index}",
                self._replica_backend(replication.backend, kind, index),
            )
            for index in range(replication.replicas)
        ]

    # -- app surface ---------------------------------------------------------

    def cell(self, key: str, initial: Any) -> TransactionalCell:
        """Get-or-create one recoverable unit of application state,
        backed by this site's cell store and recovery registry."""
        existing = self._cells.get(key)
        if existing is None:
            existing = self._cells[key] = TransactionalCell(
                key,
                initial,
                self.factory,
                store=self.cell_store,
                registry=self.registry,
            )
        return existing

    # -- control plane --------------------------------------------------------

    def _control(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "site": self.config.site_id, "recovered": self.recovered}
        if op == "locate":
            # Local-only answer: am *I* serving this node?  (The caller
            # sweeps the site list itself; answering from cached foreign
            # knowledge here could bounce stale locations around.)
            node_id = str(request.get("node"))
            domain: Optional[str] = None
            if self.orb.has_node(node_id):
                domain = self.config.site_id
            elif node_id == _FED_PREFIX + self.config.site_id:
                domain = self.config.site_id
            return {"site": self.config.site_id, "domain": domain}
        if op == "arm_kill":
            # The armed fail-point fires SIGKILL via Failpoints.on_fire
            # (installed by the daemon entry point): a *real* crash at
            # the exact protocol point the in-process tests simulate.
            self.factory.failpoints.arm(str(request.get("point")))
            return {"ok": True, "armed": self.factory.failpoints.armed()}
        if op == "disarm":
            # Chaos quiesce: clear any armed-but-unfired kill point so
            # the post-campaign audit doesn't trip it.
            self.factory.failpoints.clear()
            return {"ok": True}
        if op == "resolve":
            return {"outcomes": self.service.resolve_in_doubt()}
        if op == "replica":
            return self._replica_control(request)
        if op == "debug_dump":
            return self.debug_dump()
        if op == "membership":
            return self.membership()
        if op == "status":
            stats = self.transport.stats
            return {
                "site": self.config.site_id,
                "recovered": self.recovered,
                "recovery_error": self.last_recovery_error,
                "nodes": sorted(n.node_id for n in self.orb.nodes()),
                "stats": {
                    "requests_sent": stats.requests_sent,
                    "replies_sent": stats.replies_sent,
                    "requests_dropped": stats.requests_dropped,
                    "bytes_sent": stats.bytes_sent,
                },
            }
        if op == "shutdown":
            self._stop.set()
            return {"ok": True}
        raise ConfigurationError(f"unknown control op {op!r}")

    # -- hosted follower replicas ---------------------------------------------

    def _hosted_replica(self, name: str) -> ObjectStore:
        """Get-or-create a follower replica store this daemon hosts for
        a remote domain (durable under ``<data_dir>/hosted/<name>``)."""
        safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in name)
        store = self._hosted_replicas.get(safe)
        if store is None:
            if self.config.data_dir is not None:
                store = SegmentedFileStore(
                    os.path.join(str(self.config.data_dir), "hosted", safe)
                )
            else:
                store = MemoryStore()
            self._hosted_replicas[safe] = store
        return store

    def _replica_control(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Serve one hosted-replica operation.

        Values travel as base64-encoded marshalled bytes (the control
        plane is JSON) and are stored verbatim: the hosting daemon never
        decodes a foreign domain's state, it just keeps the bytes
        durable — see :class:`RemoteReplicaStore` for the client side.
        """
        store = self._hosted_replica(str(request.get("store", "replica")))
        action = request.get("action")
        if action == "put_many":
            items = dict(request.get("items", {}))
            store.put_many({str(uid): str(value) for uid, value in items.items()})
            return {"ok": True, "count": len(items)}
        if action == "get":
            uid = str(request.get("uid"))
            if not store.contains(uid):
                return {"missing": True}
            return {"value": store.get(uid)}
        if action == "remove":
            uid = str(request.get("uid"))
            if not store.contains(uid):
                return {"missing": True}
            store.remove(uid)
            return {"ok": True}
        if action == "contains":
            return {"contains": store.contains(str(request.get("uid")))}
        if action == "keys":
            return {"keys": list(store.keys())}
        raise ConfigurationError(f"unknown replica action {action!r}")

    # -- membership ----------------------------------------------------------

    def _on_peer_transition(self, peer_id: str, old: PeerState, new: PeerState) -> None:
        if new is PeerState.DOWN:
            self.transport.quarantine(peer_id, "failure detector marked DOWN")
        elif old is PeerState.DOWN:
            self.transport.readmit(peer_id)
        self.factory.event_log.record(
            "peer_transition", peer=peer_id, old=old.value, new=new.value
        )

    def _heartbeat_round(self) -> None:
        """Probe every peer once (DOWN peers only when their half-open
        probe is due) and feed the outcomes to the failure detector."""
        detector = self.failure_detector
        if detector is None:
            return
        for peer_id in self.transport.peers():
            if not detector.should_probe(peer_id):
                continue
            try:
                self.transport.control(
                    peer_id, {"op": "ping"}, attempts=1, probe=True
                )
            except CommunicationError:
                detector.failure(peer_id)
            else:
                detector.heartbeat(peer_id)

    def membership(self) -> Dict[str, Any]:
        if self.failure_detector is None:
            return {"enabled": False, "peers": {}}
        return {"enabled": True, "peers": self.failure_detector.describe()}

    # -- replication health ---------------------------------------------------

    def replication_health(self) -> Dict[str, Any]:
        """Per-replica lag, quorum status and under-replication age for
        both replicated layers — the surface the multiprocess chaos
        auditor gates convergence on."""
        if self.replication is None:
            return {"enabled": False}
        return {
            "enabled": True,
            "replicas": self.replication.replicas,
            "write_quorum": self.replication.effective_quorum(),
            "backend": self.replication.backend,
            "wal": self.wal.health(),
            "cells": self.cell_store.health(),
        }

    def _replication_round(self) -> None:
        """Opportunistically re-sync lagging/readmitted replicas; the
        quorum write path only touches replicas the traffic happens to
        probe, so an idle site still heals between rounds here."""
        if self.replication is None:
            return
        try:
            # An unplanned primary-medium loss would otherwise wedge the
            # WAL (every force raises, promote is never called): detect
            # it here and fail over to the newest surviving follower.
            if isinstance(self.wal, ReplicatedWAL):
                self.wal.failover_if_primary_down()
            self.wal.catch_up()
            self.cell_store.catch_up()
        except Exception:
            pass  # per-replica failures are already latched in the detectors

    # -- triage ---------------------------------------------------------------

    def debug_dump(self) -> Dict[str, Any]:
        """Everything chaos-run triage needs, without a debugger:
        membership/quarantine state, event-log pressure, and how long
        each in-doubt subordinate has been waiting on its superior."""
        stats = self.transport.stats
        event_log = self.factory.event_log
        dump: Dict[str, Any] = {
            "site": self.config.site_id,
            "recovered": self.recovered,
            "recovery_error": self.last_recovery_error,
            "membership": self.membership(),
            "replication": self.replication_health(),
            "quarantined": self.transport.quarantined(),
            "event_log": {
                "events": len(event_log),
                "dropped": event_log.dropped,
                "max_events": event_log.max_events,
            },
            "in_doubt_ages": self.service.in_doubt_ages(),
            "active_transactions": sorted(
                tx.tid for tx in self.factory.active_transactions()
            ),
            "stats": {
                "requests_sent": stats.requests_sent,
                "replies_sent": stats.replies_sent,
                "requests_dropped": stats.requests_dropped,
                "reconnects": stats.reconnects,
                "quarantine_rejections": stats.quarantine_rejections,
                "bytes_sent": stats.bytes_sent,
            },
        }
        if self._quota_buckets:
            with self._quota_lock:
                shed = dict(self._quota_shed)
            dump["quotas"] = {
                "buckets": {
                    source: bucket.describe()
                    for source, bucket in sorted(self._quota_buckets.items())
                },
                "shed": shed,
            }
        return dump

    # -- serving ----------------------------------------------------------------

    def _recovery_round(self) -> None:
        if not self.recovered:
            try:
                report = self.service.recover()
            except Exception as exc:  # peer down mid-replay: retry next round
                self.last_recovery_error = f"{type(exc).__name__}: {exc}"
                return
            self.recovered = True
            self.last_recovery_error = None
            self.factory.event_log.record(
                "site_recovered",
                site=self.config.site_id,
                recommitted=len(report.recommitted),
                presumed_aborted=len(report.presumed_aborted),
                held=len(report.held),
            )
            return
        try:
            self.service.sweep_orphans(min_age=self.config.orphan_min_age)
            self.service.resolve_in_doubt()
        except Exception as exc:
            self.last_recovery_error = f"{type(exc).__name__}: {exc}"

    def serve(self) -> None:
        """Run the site until :meth:`stop` (or a ``shutdown`` control op).

        Boot sequence: listen, then replay the WAL until recovery
        succeeds (readiness — ``ping`` answers ``recovered=False``
        meanwhile), then poll for in-doubt resolutions.  Heartbeat
        probes run every round; a recovery/resolution round that keeps
        failing backs off under the site's :class:`RetryPolicy` (capped,
        jittered) instead of re-hitting a dead superior at a fixed
        cadence.
        """
        self.transport.start()
        # The serve loop's backoff reuses the policy's shape but anchors
        # the schedule at poll_interval (its base_delay is tuned for
        # socket re-dials, far too short for WAL-replay retries).
        policy = self.config.retry_policy()
        backoff = RetryPolicy(
            max_attempts=policy.max_attempts,
            base_delay=self.config.poll_interval,
            multiplier=policy.multiplier,
            max_delay=max(policy.max_delay, self.config.poll_interval),
            jitter=policy.jitter,
        )
        consecutive_failures = 0
        while not self._stop.is_set():
            self._heartbeat_round()
            self._replication_round()
            self._recovery_round()
            if self.last_recovery_error is None:
                consecutive_failures = 0
                wait = self.config.poll_interval
            else:
                consecutive_failures = min(consecutive_failures + 1, 16)
                wait = max(
                    self.config.poll_interval, backoff.delay(consecutive_failures)
                )
            self._stop.wait(wait)
        self.transport.close()

    def serve_in_background(self) -> None:
        self._serve_thread = threading.Thread(
            target=self.serve, name=f"site-{self.config.site_id}", daemon=True
        )
        self._serve_thread.start()

    def wait_recovered(self, timeout: float = 10.0) -> bool:
        deadline = self.clock.now() + timeout
        while self.clock.now() < deadline:
            if self.recovered:
                return True
            self._stop.wait(0.02)
        return self.recovered

    def stop(self) -> None:
        self._stop.set()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None


class RemoteReplicaStore(ObjectStore):
    """A follower replica hosted by a *peer* site daemon.

    Implements the :class:`ObjectStore` interface over the fabric's
    ``replica`` control op, so a :class:`ReplicatedStore` /
    :class:`ReplicatedWAL` can place copies of a domain's state on other
    machines — the deployment shape where losing a whole site (not just
    a disk) leaves a quorum elsewhere.  Values are marshalled locally
    and shipped as base64 (the control plane is JSON); the hosting
    daemon stores the bytes without ever decoding them.

    Transport failures surface as
    :class:`~repro.persistence.replicated.ReplicationError`, which the
    replication layer treats as medium failure (retry, mark DOWN, serve
    degraded) — while a missing key stays a plain ``StoreError`` with
    its usual authoritative meaning.
    """

    def __init__(
        self,
        transport: SocketTransport,
        host_site: str,
        store_name: str,
        registry: Optional[Any] = None,
    ) -> None:
        self.name = f"{host_site}/{store_name}"
        self._transport = transport
        self._host = host_site
        self._store = store_name
        self._marshaller = Marshaller(registry)

    def _call(self, action: str, **extra: Any) -> Dict[str, Any]:
        request = {"op": "replica", "action": action, "store": self._store}
        request.update(extra)
        try:
            return self._transport.control(self._host, request, attempts=1)
        except CommunicationError as exc:
            raise ReplicationError(
                f"replica host {self._host!r} unreachable: {exc}"
            ) from exc

    def _encode(self, state: Any) -> str:
        return base64.b64encode(self._marshaller.encode(state)).decode("ascii")

    def _decode(self, value: str) -> Any:
        return self._marshaller.decode(base64.b64decode(value))

    def put(self, uid: str, state: Any) -> None:
        self.put_many([(uid, state)])

    def put_many(self, items: Any) -> None:
        batch = dict(items)
        if not batch:
            return
        encoded = {uid: self._encode(state) for uid, state in batch.items()}
        self._call("put_many", items=encoded)

    def get(self, uid: str) -> Any:
        reply = self._call("get", uid=uid)
        if reply.get("missing"):
            raise StoreError(f"no state stored under {uid!r}")
        return self._decode(reply["value"])

    def remove(self, uid: str) -> None:
        reply = self._call("remove", uid=uid)
        if reply.get("missing"):
            raise StoreError(f"no state stored under {uid!r}")

    def contains(self, uid: str) -> bool:
        return bool(self._call("contains", uid=uid)["contains"])

    def keys(self) -> Tuple[str, ...]:
        return tuple(self._call("keys")["keys"])


class SiteClient:
    """A client-only endpoint on the site fabric (dials, never listens).

    Gives tests, benchmarks and tools a bound :class:`ObjectRef` surface
    over the socket transport without hosting any nodes: invocations on
    refs route through a :class:`SiteFederation` exactly as inter-site
    calls do.
    """

    def __init__(
        self,
        peers: Dict[str, Tuple[str, int]],
        client_id: str = "client",
    ) -> None:
        self.transport = SocketTransport(client_id, bind=None)
        self.orb = Orb(
            clock=WallClock(),
            transport=self.transport,
            config=OrbConfig(domain_id=client_id),
        )
        self.federation = SiteFederation(self.transport, self.orb)
        for peer_id, address in peers.items():
            self.transport.connect_peer(peer_id, address)
        self.transport.start()

    def ref(self, node_id: str, object_id: str, interface: str = "Object") -> ObjectRef:
        return ObjectRef(node_id, object_id, interface).bind(self.orb)

    def control(
        self, site_id: str, operation: Dict[str, Any], attempts: Optional[int] = None
    ) -> Dict[str, Any]:
        return self.transport.control(site_id, operation, attempts=attempts)

    def wait_ready(
        self, site_id: str, timeout: float = 15.0, require_recovered: bool = True
    ) -> Dict[str, Any]:
        """Poll ``ping`` until the site answers (and has recovered)."""
        deadline = self.orb.clock.now() + timeout
        last: Optional[Dict[str, Any]] = None
        while self.orb.clock.now() < deadline:
            try:
                last = self.control(site_id, {"op": "ping"}, attempts=1)
            except CommunicationError:
                last = None
            else:
                if not require_recovered or last.get("recovered"):
                    return last
            threading.Event().wait(0.05)
        raise CommunicationError(
            f"site {site_id} not ready within {timeout}s (last ping: {last})"
        )

    def close(self) -> None:
        self.transport.close()


def _resolve_app(spec: str) -> Any:
    """``"module:function"`` → the callable (a :class:`SiteRuntime` hook)."""
    module_name, _, attr = spec.partition(":")
    if not module_name or not attr:
        raise ConfigurationError(
            f"app spec {spec!r} must look like 'package.module:function'"
        )
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attr)
    except AttributeError:
        raise ConfigurationError(
            f"module {module_name!r} has no attribute {attr!r}"
        ) from None
