"""Application substrates: travel, bulletin board, name server, billing."""

import pytest

from repro.apps import (
    BillingMeter,
    BookingError,
    BulletinBoard,
    ReplicatedNameServer,
    TravelScenario,
)
from repro.apps.billing import BillingError
from repro.apps.bulletin_board import BulletinBoardError
from repro.apps.name_server import NameServerError
from repro.core import ActivityManager
from repro.models import OpenNestedCoordinator
from repro.ots import TransactionCurrent, TransactionFactory
from repro.ots.locks import LockConflict


@pytest.fixture
def env():
    class Env:
        def __init__(self):
            self.factory = TransactionFactory()
            self.current = TransactionCurrent(self.factory)

    return Env()


class TestTravelServices:
    @pytest.fixture
    def scenario(self, env):
        return TravelScenario(env.factory, env.current, capacity=3)

    def test_reserve_in_transaction(self, scenario, env):
        env.current.begin()
        booking = scenario.taxi.reserve("alice")
        env.current.commit()
        assert scenario.taxi.available() == 2
        assert scenario.taxi.bookings_of("alice") == [booking]

    def test_rollback_undoes_reservation(self, scenario, env):
        env.current.begin()
        scenario.taxi.reserve("alice")
        env.current.rollback()
        assert scenario.taxi.available() == 3
        assert scenario.taxi.booking_count() == 0

    def test_auto_commit_without_transaction(self, scenario):
        booking = scenario.hotel.reserve("bob")
        assert scenario.hotel.available() == 2
        scenario.hotel.release(booking)
        assert scenario.hotel.available() == 3

    def test_capacity_exhaustion(self, scenario):
        for i in range(3):
            scenario.theatre.reserve(f"client-{i}")
        with pytest.raises(BookingError):
            scenario.theatre.reserve("late")
        assert scenario.theatre.denied_requests == 1

    def test_release_unknown_booking(self, scenario):
        with pytest.raises(BookingError):
            scenario.taxi.release("ghost")

    def test_long_transaction_locks_out_others(self, scenario, env):
        """The §2.1(iv) motivation: a monolithic transaction holds locks."""
        tx = env.current.begin()
        scenario.taxi.reserve("holder")
        assert scenario.taxi.is_locked()
        suspended = env.current.suspend()
        other = env.factory.create()
        with pytest.raises(LockConflict):
            scenario.taxi._available.read(other)
        other.rollback()
        env.current.resume(suspended)
        env.current.commit()
        assert not scenario.taxi.is_locked()

    def test_btp_hold_confirm(self, scenario):
        hold = scenario.hotel.prepare_booking("carol")
        assert scenario.hotel.available() == 2
        assert scenario.hotel.holds_outstanding == 1
        booking = scenario.hotel.confirm_booking(hold)
        assert scenario.hotel.booking_count() == 1
        assert scenario.hotel.holds_outstanding == 0
        assert booking in scenario.hotel.bookings_of("carol")

    def test_btp_hold_cancel_returns_unit(self, scenario):
        hold = scenario.hotel.prepare_booking("carol")
        assert scenario.hotel.cancel_booking(hold)
        assert scenario.hotel.available() == 3
        assert not scenario.hotel.cancel_booking(hold), "cancel is idempotent"

    def test_confirm_unknown_hold(self, scenario):
        with pytest.raises(BookingError):
            scenario.hotel.confirm_booking("ghost")

    def test_holds_denied_when_full(self, scenario):
        for i in range(3):
            scenario.taxi.prepare_booking(f"c{i}")
        with pytest.raises(BookingError):
            scenario.taxi.prepare_booking("late")

    def test_scenario_helpers(self, scenario):
        assert scenario.service_by_name("taxi") is scenario.taxi
        with pytest.raises(BookingError):
            scenario.service_by_name("submarine")
        assert scenario.total_available() == 12

    def test_negative_capacity_rejected(self, env):
        from repro.apps import TaxiService

        with pytest.raises(ValueError):
            TaxiService("t", -1, env.factory)


class TestBulletinBoard:
    @pytest.fixture
    def board(self, env):
        return BulletinBoard("general", env.factory, current=env.current)

    def test_post_and_read(self, board):
        post_id = board.post("ann", "hello", "first post")
        posts = board.read_board()
        assert [p.post_id for p in posts] == [post_id]
        assert posts[0].author == "ann"

    def test_unpost_marks_retracted(self, board):
        post_id = board.post("ann", "oops", "wrong board")
        board.unpost(post_id)
        assert board.read_board() == []
        retained = board.read_board(include_retracted=True)
        assert retained[0].retracted

    def test_unpost_unknown(self, board):
        with pytest.raises(BulletinBoardError):
            board.unpost("ghost")

    def test_read_post(self, board):
        post_id = board.post("a", "s", "b")
        assert board.read_post(post_id).subject == "s"
        with pytest.raises(BulletinBoardError):
            board.read_post("ghost")

    def test_transactional_post_rolls_back(self, board, env):
        env.current.begin()
        board.post("ann", "tentative", "...")
        env.current.rollback()
        assert board.post_count() == 0

    def test_open_nested_post_releases_board_early(self, board, env):
        manager = ActivityManager()
        onc = OpenNestedCoordinator(manager)
        enclosing = onc.begin_enclosing("A")
        post_id, _inner = board.post_open_nested(onc, "ann", "job", "apply")
        assert not board.is_locked()
        assert board.post_count() == 1
        onc.complete_enclosing(enclosing, success=True)
        assert board.post_count() == 1

    def test_open_nested_post_compensated_on_failure(self, board, env):
        manager = ActivityManager()
        onc = OpenNestedCoordinator(manager)
        enclosing = onc.begin_enclosing("A")
        post_id, _inner = board.post_open_nested(onc, "ann", "job", "apply")
        onc.complete_enclosing(enclosing, success=False)
        assert board.post_count() == 0
        assert board.read_post(post_id).retracted


class TestNameServer:
    @pytest.fixture
    def names(self, env):
        server = ReplicatedNameServer(env.factory, current=env.current)
        server.register_object("db", ["r1", "r2", "r3"])
        return server

    def test_lookup_and_bind(self, names):
        record = names.lookup("db")
        assert record.replicas == ("r1", "r2", "r3")
        assert names.bind_to_available("db") == "r1"

    def test_unknown_object(self, names):
        with pytest.raises(NameServerError):
            names.lookup("ghost")

    def test_repair_survives_enclosing_rollback(self, names, env):
        env.current.begin()
        names.record_unavailable("db", "r1")
        env.current.rollback()
        assert names.lookup("db").available == ("r2", "r3")
        assert names.repairs == 1

    def test_repair_validates_replica(self, names):
        with pytest.raises(NameServerError):
            names.record_unavailable("db", "not-a-replica")

    def test_replica_return(self, names, env):
        names.record_unavailable("db", "r1")
        names.record_available("db", "r1")
        assert names.lookup("db").available == ("r2", "r3", "r1")

    def test_record_available_idempotent(self, names):
        names.record_available("db", "r1")
        assert names.lookup("db").available == ("r1", "r2", "r3")

    def test_no_available_replicas(self, names):
        for replica in ("r1", "r2", "r3"):
            names.record_unavailable("db", replica)
        with pytest.raises(NameServerError):
            names.bind_to_available("db")

    def test_ambient_transaction_restored_after_repair(self, names, env):
        tx = env.current.begin()
        names.record_unavailable("db", "r1")
        assert env.current.get_transaction() is tx
        env.current.commit()


class TestBilling:
    @pytest.fixture
    def meter(self, env):
        return BillingMeter(env.factory, current=env.current)

    def test_charge_survives_rollback(self, meter, env):
        env.current.begin()
        meter.charge("alice", 1.5, "lookup")
        env.current.rollback()
        assert meter.total_charged("alice") == 1.5
        assert meter.ledger_size == 1

    def test_charge_records_transaction_id(self, meter, env):
        tx = env.current.begin()
        record = meter.charge("alice", 1.0)
        env.current.commit()
        assert record.tid == tx.tid

    def test_charge_outside_transaction(self, meter):
        record = meter.charge("bob", 2.0)
        assert record.tid is None

    def test_invalid_amounts_rejected(self, meter):
        with pytest.raises(BillingError):
            meter.charge("alice", 0)
        with pytest.raises(BillingError):
            meter.credit_transactional("alice", -1)

    def test_transactional_credit_undone_by_rollback(self, meter, env):
        env.current.begin()
        meter.credit_transactional("alice", 10.0)
        env.current.rollback()
        assert meter.balance_of("alice") == 0.0

    def test_transactional_credit_committed(self, meter, env):
        env.current.begin()
        meter.credit_transactional("alice", 10.0)
        env.current.commit()
        assert meter.balance_of("alice") == 10.0

    def test_credit_auto_commit(self, meter):
        meter.credit_transactional("carol", 5.0)
        assert meter.balance_of("carol") == 5.0

    def test_charges_per_client(self, meter):
        meter.charge("a", 1.0)
        meter.charge("b", 2.0)
        meter.charge("a", 3.0)
        assert meter.total_charged("a") == 4.0
        assert len(meter.charges_for("b")) == 1

    def test_durable_ledger_records(self, env):
        from repro.persistence import MemoryStore

        store = MemoryStore()
        meter = BillingMeter(env.factory, current=env.current, store=store)
        meter.charge("alice", 1.0)
        ledger_keys = [k for k in store.keys() if k.startswith("billing:ledger:")]
        assert len(ledger_keys) == 1
