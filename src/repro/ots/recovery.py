"""Crash recovery for the transaction service (presumed abort).

After a coordinator crash, the write-ahead log holds zero or one
``tx_commit_decision`` record per transaction that reached the end of
phase one.  Recovery:

- transactions *with* a decision but no ``tx_completed`` record are
  re-committed: each recovery key is resolved through the
  :class:`~repro.ots.recoverable.RecoverableRegistry` and
  ``recover_commit`` replayed (idempotent);
- prepared state belonging to a transaction *without* a decision record
  is presumed aborted and discarded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.ots.recoverable import RecoverableRegistry
from repro.persistence.wal import GroupCommitWAL, WriteAheadLog


@dataclass
class RecoveryReport:
    """What a recovery pass did."""

    recommitted: Dict[str, List[str]] = field(default_factory=dict)
    presumed_aborted: Dict[str, List[str]] = field(default_factory=dict)
    unresolved_keys: List[str] = field(default_factory=list)
    # Prepared state deliberately left in doubt (federated subordinates
    # whose outcome belongs to a superior coordinator in another domain).
    held: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.recommitted and not self.presumed_aborted


class RecoveryManager:
    """Drives post-crash resolution of in-doubt transactions.

    Completion records written during recovery are batched: each
    recommitted transaction's ``tx_completed`` is appended volatile and a
    single shared force makes the whole pass durable.  A crash mid-pass
    just means the next pass replays the same idempotent work.
    ``group_commit_window`` tunes the batching window when the supplied
    log is a :class:`~repro.persistence.wal.GroupCommitWAL`.
    """

    def __init__(
        self,
        wal: WriteAheadLog,
        registry: RecoverableRegistry,
        group_commit_window: Optional[float] = None,
    ) -> None:
        self.wal = wal
        self.registry = registry
        if group_commit_window is not None:
            if not isinstance(wal, GroupCommitWAL):
                raise ValueError(
                    "group_commit_window requires a GroupCommitWAL; the"
                    " supplied log forces every append privately"
                )
            wal.window = group_commit_window
        self.group_commit_window = getattr(wal, "window", None)

    def recover(self, hold: Optional[Iterable[str]] = None) -> RecoveryReport:
        """Resolve every in-doubt transaction recorded in the log.

        ``hold`` names transaction ids whose prepared state must *not*
        be presumed aborted: a federated subordinate's outcome is owned
        by its superior coordinator in another domain, and only that
        superior's decision (or an operator) may resolve it.  Held tids
        are reported in :attr:`RecoveryReport.held`.
        """
        held = frozenset(hold) if hold is not None else frozenset()
        report = RecoveryReport()
        decisions: Dict[str, List[str]] = {}
        completed: Set[str] = set()
        for record in self.wal.records():
            if record.kind == "tx_commit_decision":
                decisions[record.payload["tid"]] = list(
                    record.payload.get("recovery_keys", [])
                )
            elif record.kind == "tx_completed":
                completed.add(record.payload["tid"])

        # Finish phase two for decided-but-incomplete transactions.  The
        # tx_completed records ride one batched force at the end of the
        # loop instead of one private force each.
        flushed = False
        for tid, keys in decisions.items():
            if tid in completed:
                continue
            applied = []
            for key in keys:
                recoverable = self.registry.resolve(key)
                if recoverable is None:
                    report.unresolved_keys.append(key)
                    continue
                if recoverable.recover_commit(tid):
                    applied.append(key)
            self.wal.append_volatile("tx_completed", tid=tid, recovered=True)
            flushed = True
            report.recommitted[tid] = applied
        if flushed:
            self.wal.force()

        # Presume abort for prepared state with no commit decision.
        seen_held: Set[str] = set()
        for key in self.registry.keys():
            recoverable = self.registry.resolve(key)
            assert recoverable is not None
            for tid in recoverable.list_in_doubt():
                if tid in held:
                    seen_held.add(tid)
                    continue
                if tid not in decisions:
                    recoverable.recover_abort(tid)
                    report.presumed_aborted.setdefault(tid, []).append(key)
        report.held = sorted(seen_held)
        return report
