"""Broadcast executors — how one signal reaches many actions.

The paper's coordinator "transmits the signal to all registered Actions"
(§3.2.2) but says nothing about *how concurrently*.  The executors here
make that a pluggable policy of the :class:`~repro.core.coordinator.
ActivityCoordinator`:

- :class:`SerialBroadcastExecutor` — today's behaviour and still the
  default: one action at a time, in registration order, producing event
  traces byte-identical to the pre-executor coordinator;
- :class:`ThreadPoolBroadcastExecutor` — fans the stamped signal out to
  every action concurrently and *digests* the outcomes in registration
  order on the calling thread, so a 2PC prepare round or a saga
  compensation sweep costs one hop latency instead of O(participants).

Both executors preserve the SignalSet contract:

- delivery ids are stamped in registration order (the stamping callable
  is only ever invoked from the calling thread);
- ``digest`` — which is where the coordinator calls the guarded set's
  ``set_response`` — runs *only* on the calling thread, in registration
  order, so SignalSets never need to be thread-safe;
- a True reply from ``digest`` abandons the broadcast: outcomes that were
  collected but not yet digested are discarded, and sends that have not
  been dispatched yet are skipped (in-flight sends are drained before
  returning so an action never sees two signals concurrently).

Both executors ride the coordinator's *marshal-once* fast path: the
request body of one broadcast round is pre-encoded per target ORB on
the calling thread (see ``ActivityCoordinator._prepare_broadcast``) and
each ``send`` — serial or on a worker — only patches the stamped
delivery id and the target object into the shared template, so the
per-participant CPU cost of a fan-out no longer re-marshals the signal
and context tree N times.  Templates are immutable once built, which is
what makes the sharing safe across this module's worker threads.

Worker threads cross the *delivery policy* (thread-safe, see
:mod:`repro.core.delivery`) and — for actions registered as remote
ObjectRefs — the ORB transport, whose counters and rng stream are also
lock-protected.  Two caveats there: which delivery draws which seeded
fault decision becomes schedule-dependent under concurrency, so
seeded-fault *trace* determinism is only guaranteed with the serial
executor; and a ``SimulatedClock`` is a single-threaded construct
(``sleep`` advances shared time and fires timer callbacks on the calling
thread), so transports that inject latency must run on a ``WallClock``
under a parallel executor — as ``bench_fig15_parallel_broadcast.py``
does.  SignalSets and the coordinator's event log are never touched
off-thread.
"""

from __future__ import annotations

import abc
import threading
from concurrent.futures import Future, TimeoutError as FutureTimeoutError
from typing import Callable, List, Optional, Sequence

from repro.core.signals import Outcome, Signal
from repro.util.workers import ReentrantWorkerPool

# Sentinel a worker returns when the broadcast was abandoned before its
# send was dispatched.
_SKIPPED = object()


class Transmission:
    """One planned logical transmission: a registered action awaiting a signal.

    ``stamp`` assigns the fresh delivery id (called once per transmission,
    always from the broadcast's calling thread, in registration order);
    ``send`` pushes the stamped signal through the delivery policy and by
    that policy's contract never raises ``CommunicationError``.

    Slotted (PR 7): broadcasts build one per action per round.
    """

    __slots__ = ("index", "label", "stamp", "send")

    def __init__(
        self,
        index: int,
        label: str,
        stamp: Callable[[], Signal],
        send: Callable[[Signal], Outcome],
    ) -> None:
        self.index = index
        self.label = label
        self.stamp = stamp
        self.send = send


# digest(transmission, stamped_signal, outcome) -> True to abandon the
# broadcast (the SignalSet wants a fresh signal immediately).
DigestFn = Callable[[Transmission, Signal, Outcome], bool]
# on_transmit(transmission, stamped_signal): record the logical
# transmission (event-log hook); called just before the outcome digests.
TransmitFn = Callable[[Transmission, Signal], None]


class BroadcastExecutor(abc.ABC):
    """Strategy for fanning one signal out to all registered actions."""

    @abc.abstractmethod
    def broadcast(
        self,
        transmissions: Sequence[Transmission],
        on_transmit: TransmitFn,
        digest: DigestFn,
        timeout: Optional[float] = None,
    ) -> bool:
        """Deliver to every transmission, feeding outcomes to ``digest``
        in registration order; return True if the broadcast was abandoned
        (``digest`` returned True).  ``timeout`` bounds the wait for any
        single action's outcome where the executor can enforce it.
        """


class SerialBroadcastExecutor(BroadcastExecutor):
    """One action at a time, in registration order (the default).

    This is exactly the pre-executor coordinator loop: stamp, transmit,
    send, digest, next — so event traces are byte-identical to the
    historical ones the figure benches assert on.  ``timeout`` is not
    enforceable for a synchronous in-thread send; bounding slow actions
    serially is the delivery policy's job (attempt limits).
    """

    def broadcast(
        self,
        transmissions: Sequence[Transmission],
        on_transmit: TransmitFn,
        digest: DigestFn,
        timeout: Optional[float] = None,
    ) -> bool:
        for transmission in transmissions:
            stamped = transmission.stamp()
            on_transmit(transmission, stamped)
            outcome = transmission.send(stamped)
            if digest(transmission, stamped, outcome):
                return True
        return False


class ThreadPoolBroadcastExecutor(BroadcastExecutor):
    """Concurrent fan-out over a shared worker pool.

    Sends are submitted in registration order and run concurrently;
    outcomes are digested in registration order on the calling thread, so
    the SignalSet observes the same deterministic ``set_response``
    sequence the serial executor produces (and the same final outcome).

    Early abandonment: when ``digest`` returns True the remaining
    collected outcomes are discarded, pending (undispatched) sends are
    skipped, and in-flight sends are drained before returning so the next
    signal of the set never races an old one into the same action.

    ``timeout`` bounds the wait for each action's outcome; an action that
    exceeds it yields ``Outcome.unreachable``.  A timed-out send cannot
    be preempted: it keeps running on its worker, its eventual result is
    discarded, and — as with a genuinely partitioned participant in a
    real network — it may still be executing when a later signal of the
    set arrives.  This is the one exception to the no-concurrent-signals
    drain and is exactly the §3.4 situation (late duplicate effects)
    that the at-least-once/idempotent-Action requirement exists for.

    Broadcasts are re-entrant: an action that drives another broadcast
    through the same executor (nested activity completion) runs that
    inner broadcast serially on its worker thread instead of submitting
    to the pool — a nested fan-out blocking on its own pool's slots
    would deadlock.
    """

    def __init__(self, max_workers: int = 8) -> None:
        self.max_workers = max_workers
        self._pool = ReentrantWorkerPool(max_workers, thread_name_prefix="broadcast")
        # The executor is designed to be shared across coordinators and
        # calling threads, so its own counters update under a lock too.
        self._stats_lock = threading.Lock()
        self.broadcasts = 0
        self.abandoned = 0
        self.skipped_sends = 0
        self.discarded_outcomes = 0
        self.nested_serial = 0
        self.timeouts = 0

    def _count(self, counter: str, amount: int = 1) -> None:
        with self._stats_lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def shutdown(self) -> None:
        """Release the worker threads (idempotent)."""
        self._pool.shutdown()

    def __enter__(self) -> "ThreadPoolBroadcastExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def broadcast(
        self,
        transmissions: Sequence[Transmission],
        on_transmit: TransmitFn,
        digest: DigestFn,
        timeout: Optional[float] = None,
    ) -> bool:
        self._count("broadcasts")
        if self._pool.in_worker():
            # Re-entrant broadcast from one of our own workers (an action
            # completing a nested activity): run it serially — waiting on
            # this pool from inside it can exhaust the slots and deadlock.
            self._count("nested_serial")
            return SerialBroadcastExecutor().broadcast(
                transmissions, on_transmit, digest, timeout
            )
        if len(transmissions) <= 1:
            # Nothing to overlap; take the serial path (no pool hop).
            return SerialBroadcastExecutor().broadcast(
                transmissions, on_transmit, digest, timeout
            )
        abandon = threading.Event()

        def run(transmission: Transmission, stamped: Signal) -> object:
            if abandon.is_set():
                return _SKIPPED
            return transmission.send(stamped)

        # Stamp serially (deterministic ids in registration order), then
        # submit everything; workers begin as pool slots free up.
        stamped_signals = [t.stamp() for t in transmissions]
        futures: List[Future] = [
            self._pool.submit(run, t, s)
            for t, s in zip(transmissions, stamped_signals)
        ]
        timed_out: List[Future] = []
        abandoned_at: Optional[int] = None
        for index, (transmission, stamped, future) in enumerate(
            zip(transmissions, stamped_signals, futures)
        ):
            try:
                result = future.result(timeout)
            except FutureTimeoutError:
                self._count("timeouts")
                timed_out.append(future)
                result = Outcome.unreachable(
                    f"action {transmission.label!r} did not answer "
                    f"{stamped.signal_name!r} within {timeout}s"
                )
            if result is _SKIPPED:  # pragma: no cover - abandon always breaks first
                continue
            on_transmit(transmission, stamped)
            if digest(transmission, stamped, result):
                abandoned_at = index
                break
        # A send digested as timed-out may still be *queued* (pool slots
        # exhausted by its siblings): cancel it so it cannot fire a stale
        # signal after the broadcast resolved without it.  Already-running
        # sends cannot be preempted (the documented timeout caveat).
        for future in timed_out:
            if future.cancel():
                self._count("skipped_sends")
        if abandoned_at is None:
            return False
        # Abandoned: skip undispatched sends, discard collected outcomes,
        # and drain in-flight ones so no action handles two signals at once.
        self._count("abandoned")
        abandon.set()
        in_flight: List[Future] = []
        for future in futures[abandoned_at + 1 :]:
            if future.cancel():
                self._count("skipped_sends")
            else:
                in_flight.append(future)
        for future in in_flight:
            try:
                if future.result(timeout) is not _SKIPPED:
                    self._count("discarded_outcomes")
                else:
                    self._count("skipped_sends")
            except FutureTimeoutError:
                self._count("timeouts")
        return True
