"""Integration: the §2.1 applications deployed as remote servants.

The services are invoked through ObjectRefs resolved from the naming
service, with transaction and activity contexts propagating implicitly
through the interceptors — the full CORBA deployment story.
"""

import pytest

from repro.apps import BillingMeter, BulletinBoard, ReplicatedNameServer, TaxiService
from repro.core import ActivityManager
from repro.orb import Orb
from repro.orb.naming import install_naming
from repro.ots import (
    TransactionCurrent,
    TransactionFactory,
    install_transaction_service,
)
from repro.util.rng import SeededRng


@pytest.fixture
def cloud():
    class Cloud:
        def __init__(self):
            self.orb = Orb(rng=SeededRng(5))
            self.naming_node = self.orb.create_node("naming")
            self.app_node = self.orb.create_node("apps")
            self.naming = install_naming(self.orb, self.naming_node)
            self.factory = TransactionFactory(clock=self.orb.clock)
            self.tx_current = TransactionCurrent(self.factory)
            install_transaction_service(self.orb, self.tx_current)
            self.manager = ActivityManager(clock=self.orb.clock)
            self.manager.install(self.orb)
            self.orb.register_exception(
                __import__("repro.apps.travel", fromlist=["BookingError"]).BookingError
            )

        def deploy(self, name, servant):
            ref = self.app_node.activate(servant, durable=True)
            self.naming.invoke("bind", name, ref)
            return self.naming.invoke("resolve", name)

    return Cloud()


class TestRemoteTravel:
    def test_reserve_through_naming_and_transaction(self, cloud):
        taxi = TaxiService("taxi", 3, cloud.factory, current=cloud.tx_current)
        ref = cloud.deploy("services/taxi", taxi)
        cloud.tx_current.begin()
        booking = ref.invoke("reserve", "alice")
        cloud.tx_current.commit()
        assert ref.invoke("available") == 2
        assert booking in taxi.bookings_of("alice")

    def test_remote_rollback_releases(self, cloud):
        taxi = TaxiService("taxi", 3, cloud.factory, current=cloud.tx_current)
        ref = cloud.deploy("services/taxi", taxi)
        cloud.tx_current.begin()
        ref.invoke("reserve", "alice")
        cloud.tx_current.rollback()
        assert ref.invoke("available") == 3

    def test_remote_booking_error_is_typed(self, cloud):
        from repro.apps import BookingError

        taxi = TaxiService("taxi", 0, cloud.factory, current=cloud.tx_current)
        ref = cloud.deploy("services/taxi", taxi)
        with pytest.raises(BookingError):
            ref.invoke("reserve", "nobody")

    def test_btp_hold_lifecycle_remotely(self, cloud):
        taxi = TaxiService("taxi", 2, cloud.factory, current=cloud.tx_current)
        ref = cloud.deploy("services/taxi", taxi)
        hold = ref.invoke("prepare_booking", "bob")
        assert ref.invoke("available") == 1
        booking = ref.invoke("confirm_booking", hold)
        assert ref.invoke("booking_count") == 1
        assert booking


class TestRemoteBoardAndBilling:
    def test_post_and_read_remotely(self, cloud):
        board = BulletinBoard("b", cloud.factory, current=cloud.tx_current)
        ref = cloud.deploy("services/board", board)
        post_id = ref.invoke("post", "ann", "subject", "body")
        posts = ref.invoke("read_board")
        assert [p.post_id for p in posts] == [post_id]
        # Post dataclasses marshal across the wire by value.
        assert posts[0].author == "ann"

    def test_remote_charge_survives_remote_rollback(self, cloud):
        billing = BillingMeter(cloud.factory, current=cloud.tx_current)
        ref = cloud.deploy("services/billing", billing)
        cloud.tx_current.begin()
        ref.invoke("charge", "alice", 2.5, "remote work")
        cloud.tx_current.rollback()
        assert ref.invoke("total_charged", "alice") == 2.5

    def test_remote_name_server_repair(self, cloud):
        names = ReplicatedNameServer(cloud.factory, current=cloud.tx_current)
        ref = cloud.deploy("services/names", names)
        ref.invoke("register_object", "db", ["r1", "r2"])
        cloud.tx_current.begin()
        ref.invoke("record_unavailable", "db", "r1")
        cloud.tx_current.rollback()
        record = ref.invoke("lookup", "db")
        assert record.available == ("r2",)

    def test_services_survive_node_crash(self, cloud):
        board = BulletinBoard("b", cloud.factory, current=cloud.tx_current)
        ref = cloud.deploy("services/board", board)
        ref.invoke("post", "ann", "s", "b")
        cloud.app_node.crash()
        cloud.app_node.restart()
        # Durable servant: still reachable, state intact (it lives in the
        # service object, which models state in stable storage).
        assert len(ref.invoke("read_board")) == 1


class TestActivityContextToServices:
    def test_activity_spans_remote_service_calls(self, cloud):
        """An activity's context travels into app servants; the activity
        outlives many remote invocations (a long-running business
        activity over deployed services)."""
        from repro.core import received_context
        from repro.orb.core import Servant

        observed = []

        class ContextProbe(Servant):
            def record(self):
                context = received_context(cloud.orb)
                observed.append(context.activity_name if context else None)
                return True

        probe_ref = cloud.deploy("services/probe", ContextProbe())
        taxi = TaxiService("taxi", 5, cloud.factory, current=cloud.tx_current)
        taxi_ref = cloud.deploy("services/taxi", taxi)
        cloud.manager.current.begin("trip-booking")
        taxi_ref.invoke("reserve", "alice")
        probe_ref.invoke("record")
        taxi_ref.invoke("reserve", "alice")
        probe_ref.invoke("record")
        cloud.manager.current.complete()
        assert observed == ["trip-booking", "trip-booking"]
