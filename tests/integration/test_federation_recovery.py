"""Integration: federated interposition trees surviving per-domain crashes.

The acceptance story for the federation layer: a subordinate domain
crashes between phase one and phase two, its whole process (ORB, factory,
registry, live transactions) is rebuilt from the domain's *own* durable
state — write-ahead log plus participant stores — and the superior's
completion replays downward through the re-adopted subordinate.
Parametrised over the stable-storage backend: the in-memory model and
the log-structured :class:`SegmentedFileStore` (real files reopened from
disk) must recover identically.
"""

import pytest

from repro.orb import InterOrbBridge, Orb
from repro.orb.reference import ObjectRef
from repro.ots import (
    RecoverableRegistry,
    RecoveryManager,
    SimulatedCrash,
    TransactionCurrent,
    TransactionFactory,
    TransactionalCell,
    install_federated_transaction_service,
)
from repro.ots.interposition import subordinate_recovery_key
from repro.ots.status import TransactionStatus
from repro.persistence import MemoryStore, SegmentedFileStore, WriteAheadLog
from repro.util.clock import SimulatedClock


class Bank:
    def __init__(self, cell, current):
        self.cell = cell
        self.current = current

    def deposit(self, amount):
        tx = self.current.get_transaction()
        assert tx is not None
        self.cell.write(tx, self.cell.read(tx) + amount)
        return self.cell.read(tx)


class Domain:
    """One transaction domain whose durable media outlive its process."""

    def __init__(self, name, bridge, clock, make_store):
        self.name = name
        self.bridge = bridge
        self.clock = clock
        self.make_store = make_store
        self.wal_store = make_store(f"{name}-wal")
        self.cell_store = make_store(f"{name}-cells")
        self._boot(reopen=False)

    def _boot(self, reopen):
        if reopen:
            # A restarted process reads its media back from disk; the
            # in-memory model keeps the same store instances (the
            # "medium" survives, the process state does not).
            self.wal_store = self.make_store(f"{self.name}-wal")
            self.cell_store = self.make_store(f"{self.name}-cells")
        self.orb = Orb(clock=self.clock)
        self.bridge.connect(self.orb, self.name)
        self.factory = TransactionFactory(
            clock=self.clock, wal=WriteAheadLog(self.wal_store, "wal")
        )
        self.current = TransactionCurrent(self.factory)
        self.registry = RecoverableRegistry()
        self.service = install_federated_transaction_service(
            self.orb, self.current, self.bridge, registry=self.registry
        )
        self.node = self.orb.create_node(f"{self.name}-apps")

    def cell(self, key, initial):
        return TransactionalCell(
            key, initial, self.factory, store=self.cell_store,
            registry=self.registry,
        )

    def crash_and_reopen(self):
        """The whole domain process dies and restarts from its media."""
        self.bridge.disconnect(self.name)
        self._boot(reopen=True)


@pytest.fixture(params=["memory", "segmented"])
def world(request, tmp_path):
    class World:
        def __init__(self, backend):
            self.clock = SimulatedClock()
            self.bridge = InterOrbBridge()
            if backend == "memory":
                stores = {}

                def make_store(name):
                    return stores.setdefault(name, MemoryStore())

            else:

                def make_store(name):
                    return SegmentedFileStore(tmp_path / name)

            self.a = Domain("A", self.bridge, self.clock, make_store)
            self.b = Domain("B", self.bridge, self.clock, make_store)

        def bank_ref(self):
            if not self.b.node.has_object("bank"):
                self.b.node.activate(
                    Bank(self.cell_b, self.b.current), object_id="bank"
                )
            ref = self.b.node.ref_for("bank")
            return ObjectRef(ref.node_id, ref.object_id, ref.interface).bind(
                self.a.orb
            )

    built = World(request.param)
    built.cell_a = built.a.cell("acct-a", 100)
    built.cell_b = built.b.cell("acct-b", 50)
    return built


class TestSubordinateDomainCrash:
    def run_to_decision(self, world):
        """Drive a cross-domain transaction to the logged commit decision
        (phase one complete everywhere, phase two not yet started)."""
        tx = world.a.current.begin()
        world.cell_a.write(tx, 90)
        world.bank_ref().invoke("deposit", 10)
        world.a.factory.failpoints.arm("after_commit_log")
        with pytest.raises(SimulatedCrash):
            world.a.current.commit()
        return tx

    def test_completion_replays_downward_after_crash(self, world):
        tx = self.run_to_decision(world)
        # Domain B's process dies wholesale and restarts from its media.
        world.b.crash_and_reopen()
        cell_b = world.b.cell("acct-b", 50)
        assert cell_b.committed_value == 50  # decision not yet applied
        assert cell_b.list_in_doubt() != []

        report_b = world.b.service.recover()
        # Held, not presumed aborted: the outcome belongs to domain A.
        assert report_b.held != []
        assert report_b.presumed_aborted == {}
        assert cell_b.committed_value == 50

        # The superior's recovery replays phase two across the bridge
        # into the re-adopted subordinate.
        report_a = RecoveryManager(world.a.factory.wal, world.a.registry).recover()
        assert tx.tid in report_a.recommitted
        assert subordinate_recovery_key("B", tx.tid) in report_a.recommitted[tx.tid]
        assert world.cell_a.committed_value == 90
        assert cell_b.committed_value == 60

        # Replaying recovery again is a no-op on state.
        RecoveryManager(world.a.factory.wal, world.a.registry).recover()
        assert cell_b.committed_value == 60

    def test_both_domains_crash_and_recover_turnkey(self, world):
        """Parent AND subordinate processes die after the decision; each
        restarted service's own recover() is enough — the parent rebuilds
        its subordinate proxy from the durable recovery key and replays
        completion downward without any re-registration from B."""
        tx = self.run_to_decision(world)
        tid = tx.tid
        world.b.crash_and_reopen()
        world.a.crash_and_reopen()
        cell_a = world.a.cell("acct-a", 100)
        cell_b = world.b.cell("acct-b", 50)

        report_b = world.b.service.recover()
        assert report_b.held != []
        report_a = world.a.service.recover()
        assert tid in report_a.recommitted
        assert subordinate_recovery_key("B", tid) in report_a.recommitted[tid]
        assert cell_a.committed_value == 90
        assert cell_b.committed_value == 60

    def test_undecided_subordinate_waits_for_superior_abort(self, world):
        tx = world.a.current.begin()
        world.cell_a.write(tx, 90)
        world.bank_ref().invoke("deposit", 10)
        world.a.factory.failpoints.arm("before_commit_log")
        with pytest.raises(SimulatedCrash):
            world.a.current.commit()
        # B prepared durably; A crashed *before* the decision.
        world.b.crash_and_reopen()
        cell_b = world.b.cell("acct-b", 50)
        report_b = world.b.service.recover()
        assert report_b.held != []  # waiting on A, not presumed aborted
        assert cell_b.committed_value == 50

        # A's own recovery presumes abort for its local prepared state.
        report_a = RecoveryManager(world.a.factory.wal, world.a.registry).recover()
        assert tx.tid not in report_a.recommitted
        assert world.cell_a.committed_value == 100

        # The superior's abort resolves the held subordinate downward.
        proxy = world.a.registry.resolve(subordinate_recovery_key("B", tx.tid))
        assert proxy is not None
        assert proxy.recover_abort(tx.tid)
        assert cell_b.committed_value == 50
        assert cell_b.list_in_doubt() == []

    def test_subordinate_survives_crash_before_prepare(self, world):
        tx = world.a.current.begin()
        world.cell_a.write(tx, 90)
        world.bank_ref().invoke("deposit", 10)
        # B dies before any prepare: nothing durable belongs to the tx.
        world.b.crash_and_reopen()
        cell_b = world.b.cell("acct-b", 50)
        report_b = world.b.service.recover()
        assert report_b.held == []
        assert cell_b.committed_value == 50
        # The parent's commit now fails phase one (the subordinate
        # servant died with its domain) and rolls back cleanly.
        from repro.ots import TransactionRolledBack

        with pytest.raises(TransactionRolledBack):
            world.a.current.commit()
        assert world.cell_a.committed_value == 100
        assert tx.status is TransactionStatus.ROLLED_BACK


class TestLiveReplayWithoutCrash:
    def test_recover_commit_on_live_subordinate_is_idempotent(self, world):
        tx = world.a.current.begin()
        world.bank_ref().invoke("deposit", 25)
        world.a.current.commit()
        proxy = world.a.registry.resolve(subordinate_recovery_key("B", tx.tid))
        assert proxy is not None
        assert world.cell_b.committed_value == 75
        assert proxy.recover_commit(tx.tid)
        assert world.cell_b.committed_value == 75
