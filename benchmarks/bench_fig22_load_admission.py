"""Figure 22 (extension) — load, the knee, and admission control.

Not a figure from the paper: Houston et al. describe the middleware's
*mechanisms* and argue they scale to "potentially millions" of clients,
but report no load measurements.  This bench puts numbers on that claim
for the repro, using the PR 10 load engine:

- **the knee** (deterministic): Poisson arrivals through real
  ``ActivityManager.begin`` into a G/D/k capacity station under the
  simulated clock.  At 0.9× capacity both configurations behave; at 4×
  capacity the ungated control plane queues without bound — goodput
  (completions within deadline) collapses and p99 grows with the
  backlog — while the admission-gated plane sheds the excess and keeps
  goodput within 10% of its knee value with p99 bounded by
  ``max_live / capacity``.  Every number is a pure function of the
  seed, so the regression gate holds the *ratios* to tight tolerances.
- **population** (deterministic): hold 120k concurrent live activities
  behind a ``max_live`` gate sized exactly there; begin 120,001 is shed.
  Evidence for the million-client ceiling: live population is capped by
  configuration, and per-activity heap cost is a bounded constant.
- **dispatch loops** (machine-dependent, not gated): the same gated
  servant served over real sockets by the threads accept loop vs the
  asyncio accept loop, closed-loop clients — recorded for trajectory,
  never compared across hosts.

Results land in ``results/fig22.txt`` and ``results/BENCH_fig22.json``
(deterministic metrics gated by ``check_bench_regression.py``).
Quick mode (``BENCH_QUICK=1``) shrinks the sweep for CI smoke runs;
the CI gate step re-runs full mode.
"""

import os
import threading
import time

from repro.config import OrbConfig, RuntimeConfig
from repro.core.manager import ActivityManager
from repro.exceptions import OverloadError
from repro.load import LoadCollector, run_open_loop_activities, run_population_hold
from repro.orb.core import Orb, Servant
from repro.orb.reference import ObjectRef
from repro.orb.site import SiteFederation
from repro.orb.socket_transport import SocketTransport
from repro.util.clock import SimulatedClock, WallClock
from repro.util.rng import SeededRng

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

SEED = 22
WORKERS = 4
SERVICE_TIME = 0.004            # station capacity: 1000 ops/s
CAPACITY = WORKERS / SERVICE_TIME
DEADLINE = 2.0
MAX_LIVE = 1500                 # gated p99 bound: 1500/1000 = 1.5 s < deadline

if QUICK:
    DURATION = 5.0
    RATE_OVERLOAD = 2000.0      # 2x capacity
    POPULATION = 12_000
    SOCKET_SECONDS = 1.0
    SOCKET_CLIENTS = 4
    MIN_RATIO = 2.0
else:
    DURATION = 20.0
    RATE_OVERLOAD = 4000.0      # 4x capacity
    POPULATION = 120_000
    SOCKET_SECONDS = 2.0
    SOCKET_CLIENTS = 8
    MIN_RATIO = 5.0

RATE_KNEE = 0.9 * CAPACITY      # just under the knee


def run_sweep(rate, max_live):
    """One deterministic open-loop run; returns the collector report."""
    config = (
        RuntimeConfig(max_live=max_live) if max_live is not None else RuntimeConfig()
    )
    manager = ActivityManager(clock=SimulatedClock(), config=config)
    return run_open_loop_activities(
        manager,
        rate=rate,
        duration=DURATION,
        workers=WORKERS,
        service_time=SERVICE_TIME,
        deadline=DEADLINE,
        rng=SeededRng(SEED),
    ).report()


def measure_population():
    """Hold POPULATION live activities behind a gate sized exactly there."""
    manager = ActivityManager(
        clock=SimulatedClock(), config=RuntimeConfig(max_live=POPULATION)
    )
    return run_population_hold(manager, POPULATION, probe_extra=16)


class _GatedServant(Servant):
    def __init__(self, manager):
        self.manager = manager

    def work(self):
        self.manager.begin(name="bench-op").complete()
        return "ok"


def measure_socket_dispatch(accept_loop):
    """Closed-loop ops/s over real sockets for one accept-loop kind."""
    manager = ActivityManager(
        clock=WallClock(), config=RuntimeConfig(max_live=MAX_LIVE)
    )
    server = SocketTransport(
        "bench-server", bind=("127.0.0.1", 0), accept_loop=accept_loop
    )
    server_orb = Orb(transport=server, config=OrbConfig())
    SiteFederation(server, server_orb)
    server.set_request_handler(server_orb.dispatch_request)
    server.set_control_handler(
        lambda req: {
            "site": "bench-server",
            "domain": "bench-server"
            if server_orb.has_node(str(req.get("node")))
            else None,
        }
    )
    server.start()
    server_orb.create_node("bench-server.app").activate(
        _GatedServant(manager), object_id="load", interface="Load"
    )

    client = SocketTransport("bench-client")
    client_orb = Orb(transport=client, config=OrbConfig())
    SiteFederation(client, client_orb)
    client.connect_peer("bench-server", server.address)
    client.start()
    ref = ObjectRef("bench-server.app", "load", "Load").bind(client_orb)

    collectors = [LoadCollector(f"c{i}") for i in range(SOCKET_CLIENTS)]

    def client_loop(index):
        collector = collectors[index]
        deadline = time.monotonic() + SOCKET_SECONDS
        while time.monotonic() < deadline:
            start = time.monotonic()
            try:
                ref.invoke("work")
            except OverloadError as exc:
                collector.rejected(time.monotonic(), exc)
            else:
                now = time.monotonic()
                collector.started(start)
                collector.finished(now, now - start)

    threads = [
        threading.Thread(target=client_loop, args=(i,), daemon=True)
        for i in range(SOCKET_CLIENTS)
    ]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=SOCKET_SECONDS + 30)
    finally:
        client.close()
        server.close()

    merged = LoadCollector(f"dispatch-{accept_loop}")
    for collector in collectors:
        merged.merge(collector)
    return merged.report()


class TestFig22LoadAdmission:
    def test_knee_population_and_dispatch(self, emit):
        gated_knee = run_sweep(RATE_KNEE, MAX_LIVE)
        gated_over = run_sweep(RATE_OVERLOAD, MAX_LIVE)
        ungated_over = run_sweep(RATE_OVERLOAD, None)
        hold = measure_population()
        threads_report = measure_socket_dispatch("threads")
        asyncio_report = measure_socket_dispatch("asyncio")

        retention = gated_over["goodput_ops_s"] / gated_knee["goodput_ops_s"]
        ratio = gated_over["goodput_ops_s"] / max(
            ungated_over["goodput_ops_s"], 1e-9
        )
        shed_total = gated_knee["shed"] + gated_over["shed"]

        emit(
            "fig22",
            [
                "fig 22 — load, the knee, and admission control "
                f"(capacity {CAPACITY:.0f} ops/s, deadline {DEADLINE:g} s, "
                f"{'quick' if QUICK else 'full'} mode):",
                f"  gated   @ {RATE_KNEE:5.0f}/s   goodput {gated_knee['goodput_ops_s']:7.1f}/s"
                f"   p99 {gated_knee['latency']['p99']:6.3f} s"
                f"   shed {gated_knee['shed']}",
                f"  gated   @ {RATE_OVERLOAD:5.0f}/s   goodput {gated_over['goodput_ops_s']:7.1f}/s"
                f"   p99 {gated_over['latency']['p99']:6.3f} s"
                f"   shed {gated_over['shed']}",
                f"  ungated @ {RATE_OVERLOAD:5.0f}/s   goodput {ungated_over['goodput_ops_s']:7.1f}/s"
                f"   p99 {ungated_over['latency']['p99']:6.3f} s"
                f"   peak live {ungated_over['peak_live']}",
                f"  goodput retention past knee  {retention:6.1%}"
                f"   (gated overload vs gated knee)",
                f"  goodput ratio gated/ungated  {ratio:6.1f}x at overload",
                f"  population hold  {hold['live_peak']} live"
                f"   ({hold['blocks_per_activity']:.0f} blocks/activity,"
                f" {hold['shed_at_ceiling']} shed at ceiling)",
                f"  sockets, threads loop  {threads_report['throughput_ops_s']:7.1f} ops/s",
                f"  sockets, asyncio loop  {asyncio_report['throughput_ops_s']:7.1f} ops/s",
            ],
            data={
                # Deterministic (simulated clock + seeded rng): gated.
                "gated_goodput_knee": gated_knee["goodput_ops_s"],
                "gated_goodput_overload": gated_over["goodput_ops_s"],
                "ungated_goodput_overload": ungated_over["goodput_ops_s"],
                "overload_goodput_ratio": ratio,
                "gated_goodput_retention": retention,
                "gated_p99_s": gated_over["latency"]["p99"],
                "ungated_p99_s": ungated_over["latency"]["p99"],
                "live_peak": hold["live_peak"],
                "shed_total": shed_total,
                "population_shed": hold["shed_at_ceiling"],
                # Machine-dependent trajectory (never gated).
                "dispatch_threads_ops_s": threads_report["throughput_ops_s"],
                "dispatch_asyncio_ops_s": asyncio_report["throughput_ops_s"],
                "population_blocks_per_activity": hold["blocks_per_activity"],
                "population_peak_rss_bytes": hold["peak_rss_bytes"],
            },
        )

        # The acceptance bar (ISSUE.md): sustained population, goodput
        # within 10% of peak past the knee with bounded p99, and the
        # ungated plane degrading by the required factor.
        if not QUICK:
            assert hold["live_peak"] >= 100_000
        assert hold["live_peak"] == POPULATION
        assert hold["shed_at_ceiling"] == 16
        assert retention >= 0.9
        assert ratio >= MIN_RATIO
        assert gated_over["latency"]["p99"] <= MAX_LIVE / CAPACITY + SERVICE_TIME
        assert ungated_over["latency"]["p99"] > DEADLINE
        assert gated_over["shed"] > 0
        assert ungated_over["shed"] == 0
        assert threads_report["ok"] > 0
        assert asyncio_report["ok"] > 0
