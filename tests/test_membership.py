"""The phi-accrual failure detector under a simulated clock.

Liveness verdicts are a pure function of (evidence timeline, config)
once the clock is simulated, so every threshold crossing here is exact:
when phi crosses ``suspect_phi`` the peer is SUSPECT, ``down_phi`` (or
``failure_threshold`` explicit failures) latches DOWN, and only a real
heartbeat — delivered through the metered half-open probe — re-admits.
"""

import pytest

from repro.exceptions import ConfigurationError
from repro.orb.membership import (
    FailureDetector,
    FailureDetectorConfig,
    PeerState,
)
from repro.util.clock import SimulatedClock


@pytest.fixture
def clock():
    return SimulatedClock()


def make_detector(clock, **kwargs):
    transitions = []
    config = FailureDetectorConfig(
        heartbeat_interval=1.0, suspect_phi=1.0, down_phi=3.0,
        failure_threshold=3, **kwargs,
    )
    detector = FailureDetector(
        clock, config,
        on_transition=lambda peer, old, new: transitions.append(
            (peer, old, new)
        ),
    )
    return detector, transitions


class TestPhi:
    def test_freshly_watched_peer_is_alive_with_zero_phi(self, clock):
        detector, _ = make_detector(clock)
        detector.watch("b")
        assert detector.state("b") is PeerState.ALIVE
        assert detector.phi("b") == 0.0

    def test_phi_grows_with_silence(self, clock):
        detector, _ = make_detector(clock)
        detector.watch("b")
        clock.advance(1.0)
        low = detector.phi("b")
        clock.advance(2.0)
        assert detector.phi("b") > low

    def test_suspect_then_down_as_silence_accrues(self, clock):
        detector, _ = make_detector(clock)
        detector.watch("b")
        # phi = elapsed / mean / ln(10); mean is the 1.0s prior.
        clock.advance(2.4)  # phi ~= 1.04: suspect
        assert detector.state("b") is PeerState.SUSPECT
        clock.advance(4.8)  # phi ~= 3.1: down, latched
        assert detector.state("b") is PeerState.DOWN
        assert detector.down_since("b") is not None

    def test_down_latches_until_a_heartbeat(self, clock):
        detector, _ = make_detector(clock)
        detector.watch("b")
        clock.advance(10.0)
        assert detector.state("b") is PeerState.DOWN
        # Silence can only grow suspicion; DOWN never clears on its own.
        clock.advance(100.0)
        assert detector.state("b") is PeerState.DOWN
        detector.heartbeat("b")
        assert detector.state("b") is PeerState.ALIVE

    def test_observed_cadence_replaces_the_prior(self, clock):
        """A peer heartbeating every 0.2s goes DOWN after ~1.4s of
        silence — much sooner than the 1.0s-interval prior allows."""
        detector, _ = make_detector(clock)
        detector.watch("slow")
        detector.watch("fast")
        for _ in range(10):
            clock.advance(0.2)
            detector.heartbeat("fast")
        clock.advance(1.6)
        assert detector.state("fast") is PeerState.DOWN
        assert detector.state("slow") is not PeerState.DOWN


class TestExplicitFailures:
    def test_failure_threshold_forces_down(self, clock):
        detector, transitions = make_detector(clock)
        detector.watch("b")
        detector.failure("b")
        detector.failure("b")
        assert detector.state("b") is not PeerState.DOWN
        detector.failure("b")
        assert detector.state("b") is PeerState.DOWN
        assert transitions[-1][2] is PeerState.DOWN

    def test_heartbeat_resets_the_failure_streak(self, clock):
        detector, _ = make_detector(clock)
        detector.watch("b")
        detector.failure("b")
        detector.failure("b")
        detector.heartbeat("b")
        detector.failure("b")
        detector.failure("b")
        assert detector.state("b") is not PeerState.DOWN

    def test_readmission_restarts_interval_history(self, clock):
        detector, transitions = make_detector(clock)
        detector.watch("b")
        for _ in range(5):
            clock.advance(0.1)
            detector.heartbeat("b")
        for _ in range(3):
            detector.failure("b")
        assert detector.state("b") is PeerState.DOWN
        clock.advance(50.0)
        detector.heartbeat("b")
        # Pre-outage 0.1s cadence must not make the restarted peer
        # instantly suspect again: history restarted with the prior.
        clock.advance(1.0)
        assert detector.state("b") is PeerState.ALIVE
        assert (
            "b", PeerState.DOWN, PeerState.ALIVE
        ) in transitions


class TestHalfOpenProbes:
    def test_down_peer_probes_are_metered(self, clock):
        detector, _ = make_detector(clock, probe_interval=2.0)
        detector.watch("b")
        for _ in range(3):
            detector.failure("b")
        assert detector.should_probe("b") is True   # first probe free
        assert detector.should_probe("b") is False  # metered
        clock.advance(2.0)
        assert detector.should_probe("b") is True
        assert detector.should_probe("b") is False

    def test_alive_peers_are_always_probeable(self, clock):
        detector, _ = make_detector(clock)
        detector.watch("b")
        assert all(detector.should_probe("b") for _ in range(5))


class TestPhiLatchPolicy:
    def test_silence_only_suspects_when_phi_latch_is_disabled(self, clock):
        """Traffic-fed peers (bridge links) are silent when idle, not
        dead: silence tops out at SUSPECT and only explicit failures
        latch DOWN."""
        detector, _ = make_detector(clock, phi_latches_down=False)
        detector.watch("b")
        clock.advance(100.0)  # far past down_phi
        assert detector.state("b") is PeerState.SUSPECT
        assert detector.is_down("b") is False
        for _ in range(3):
            detector.failure("b")
        assert detector.state("b") is PeerState.DOWN

    def test_silent_down_discovered_by_failure_still_notifies(self, clock):
        """A phi latch taken while recording an explicit failure must
        fire on_transition (regression: the latch landed in the
        old-state computation and the DOWN notification was swallowed,
        so quarantine wiring never engaged)."""
        detector, transitions = make_detector(clock)
        detector.watch("b")
        clock.advance(10.0)
        detector.failure("b")  # first strike; phi already past down_phi
        assert detector.state("b") is PeerState.DOWN
        assert ("b", PeerState.ALIVE, PeerState.DOWN) in transitions


class TestIntrospection:
    def test_describe_never_latches_down(self, clock):
        """describe() is read-only: it may *report* an unlatched DOWN,
        but the latch itself (down_since, transitions, on_transition)
        must come from state()/evidence, never from introspection
        (regression: a describe()-latched peer skipped quarantine
        wiring because the later state() call saw old == new)."""
        detector, transitions = make_detector(clock)
        detector.watch("b")
        clock.advance(10.0)  # phi well past down_phi
        info = detector.describe()["b"]
        assert info["state"] == "down"      # honest peek...
        assert info["down_since"] is None   # ...but nothing latched
        assert info["transitions"] == 0
        assert transitions == []
        # The real latch still happens — and still notifies.
        assert detector.state("b") is PeerState.DOWN
        assert transitions[-1] == ("b", PeerState.ALIVE, PeerState.DOWN)
        assert detector.down_since("b") is not None

    def test_describe_reports_state_phi_and_streaks(self, clock):
        detector, _ = make_detector(clock)
        detector.watch("b")
        clock.advance(0.5)
        detector.heartbeat("b")
        detector.failure("b")
        info = detector.describe()["b"]
        assert info["state"] == "alive"
        assert info["consecutive_failures"] == 1
        assert info["down_since"] is None

    def test_forget_drops_the_peer(self, clock):
        detector, _ = make_detector(clock)
        detector.watch("b")
        detector.forget("b")
        assert "b" not in detector.peers()

    def test_down_since_records_the_latch_time(self, clock):
        detector, _ = make_detector(clock)
        detector.watch("b")
        clock.advance(1.0)
        for _ in range(3):
            detector.failure("b")
        assert detector.down_since("b") == clock.now()


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"heartbeat_interval": 0.0},
            {"suspect_phi": 5.0, "down_phi": 3.0},
            {"failure_threshold": 0},
            {"window": 1},
            {"probe_interval": -1.0},
        ],
    )
    def test_bad_knobs_fail_at_construction(self, kwargs):
        with pytest.raises(ConfigurationError):
            FailureDetectorConfig(**kwargs)
