"""Context propagation over the ORB and delivery-policy semantics."""

import pytest

from repro.core import (
    ActivityManager,
    AtLeastOnceDelivery,
    AtMostOnceDelivery,
    BroadcastSignalSet,
    ExactlyOnceDelivery,
    IdempotentAction,
    Outcome,
    Propagation,
    PropertyGroup,
    PropertyGroupManager,
    RecordingAction,
    received_context,
)
from repro.core.signals import Signal
from repro.exceptions import CommunicationError
from repro.orb import FaultPlan, Orb
from repro.orb.core import Servant
from repro.util.rng import SeededRng


class TestContextPropagation:
    @pytest.fixture
    def deployment(self):
        orb = Orb()
        node = orb.create_node("server")
        groups = PropertyGroupManager()
        groups.register_factory(
            "env",
            lambda: PropertyGroup(
                "env", propagation=Propagation.VALUE, initial={"locale": "en"}
            ),
        )
        manager = ActivityManager(clock=orb.clock, property_groups=groups)
        manager.install(orb)
        return orb, node, manager

    def test_context_carries_activity_identity(self, deployment):
        orb, node, manager = deployment

        class Probe(Servant):
            def observe(self):
                context = received_context(orb)
                return (context.activity_id, context.activity_name)

        ref = node.activate(Probe())
        activity = manager.current.begin("job")
        assert ref.invoke("observe") == (activity.activity_id, "job")
        manager.current.complete()

    def test_no_context_outside_activity(self, deployment):
        orb, node, manager = deployment

        class Probe(Servant):
            def observe(self):
                return received_context(orb) is None

        ref = node.activate(Probe())
        assert ref.invoke("observe") is True

    def test_by_value_groups_snapshot(self, deployment):
        orb, node, manager = deployment

        class Probe(Servant):
            def read_locale(self):
                groups = received_context(orb).received_groups()
                return groups["env"].get_property("locale")

            def write_locale(self):
                groups = received_context(orb).received_groups()
                groups["env"].set_property("locale", "de")
                return True

        ref = node.activate(Probe())
        activity = manager.current.begin("job")
        activity.get_property_group("env").set_property("locale", "fr")
        assert ref.invoke("read_locale") == "fr"
        ref.invoke("write_locale")
        # By value: the server-side write did not reach the origin.
        assert activity.get_property_group("env").get_property("locale") == "fr"
        manager.current.complete()

    def test_by_reference_groups_call_back(self, deployment):
        orb, node, manager = deployment
        origin_node = orb.create_node("origin")

        class Probe(Servant):
            def write_shared(self):
                groups = received_context(orb).received_groups()
                groups["shared"].set_property("k", "written-remotely")
                return True

        ref = node.activate(Probe())
        activity = manager.current.begin("job")
        shared = PropertyGroup("shared", propagation=Propagation.REFERENCE)
        manager.export_property_group(shared, origin_node)
        activity.attach_property_group(shared)
        ref.invoke("write_shared")
        # By reference: the write landed on the origin group.
        assert shared.get_property("k") == "written-remotely"
        manager.current.complete()

    def test_activity_resumed_on_server_side(self, deployment):
        orb, node, manager = deployment

        class Probe(Servant):
            def current_id(self):
                current = manager.current.current_activity()
                return current.activity_id if current else None

        ref = node.activate(Probe())
        activity = manager.current.begin("job")
        assert ref.invoke("current_id") == activity.activity_id
        manager.current.complete()
        assert ref.invoke("current_id") is None


class FlakySender:
    """send() fails transiently the first ``failures`` times per delivery."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0
        self.processed = []

    def __call__(self, signal):
        self.calls += 1
        if self.calls <= self.failures:
            raise CommunicationError("blip")
        self.processed.append(signal.delivery_id)
        return Outcome.done()


class TestDeliveryPolicies:
    def test_at_most_once_no_retry(self):
        sender = FlakySender(failures=1)
        policy = AtMostOnceDelivery()
        outcome = policy.deliver(sender, Signal("s", "set", delivery_id="d1"))
        assert outcome.is_error
        assert sender.calls == 1
        assert policy.failures == 1

    def test_at_least_once_retries(self):
        sender = FlakySender(failures=2)
        policy = AtLeastOnceDelivery(max_attempts=5)
        outcome = policy.deliver(sender, Signal("s", "set", delivery_id="d1"))
        assert outcome.is_done
        assert sender.calls == 3
        assert policy.retries == 2

    def test_at_least_once_exhaustion(self):
        sender = FlakySender(failures=100)
        policy = AtLeastOnceDelivery(max_attempts=3)
        outcome = policy.deliver(sender, Signal("s", "set", delivery_id="d1"))
        assert outcome.is_error
        assert policy.exhausted == 1

    def test_at_least_once_non_transient_stops(self):
        def sender(signal):
            raise CommunicationError("dead", transient=False)

        policy = AtLeastOnceDelivery(max_attempts=5)
        outcome = policy.deliver(sender, Signal("s", "set", delivery_id="d1"))
        assert outcome.is_error

    def test_at_least_once_requires_positive_attempts(self):
        with pytest.raises(ValueError):
            AtLeastOnceDelivery(max_attempts=0)

    def test_exactly_once_ledger_suppresses_resend(self):
        sender = FlakySender(failures=0)
        policy = ExactlyOnceDelivery()
        signal = Signal("s", "set", delivery_id="d1")
        first = policy.deliver(sender, signal)
        second = policy.deliver(sender, signal)
        assert first == second
        assert sender.calls == 1
        assert policy.ledger_hits == 1

    def test_exactly_once_distinct_ids_sent(self):
        sender = FlakySender(failures=0)
        policy = ExactlyOnceDelivery()
        policy.deliver(sender, Signal("s", "set", delivery_id="d1"))
        policy.deliver(sender, Signal("s", "set", delivery_id="d2"))
        assert sender.calls == 2

    def test_uniform_counters_across_policies(self):
        """Every policy exposes attempts/retries/failures/exhausted, so
        harnesses can assert on any of them interchangeably."""
        policies = [
            AtMostOnceDelivery(),
            AtLeastOnceDelivery(max_attempts=2),
            ExactlyOnceDelivery(max_attempts=2),
        ]
        for policy in policies:
            for counter in ("attempts", "retries", "failures", "exhausted"):
                assert getattr(policy, counter) == 0, (policy, counter)
            sender = FlakySender(failures=100)
            outcome = policy.deliver(sender, Signal("s", "set", delivery_id="d1"))
            assert outcome.is_error
            assert policy.failures == 1, policy

    def test_exactly_once_forwards_exhaustion(self):
        sender = FlakySender(failures=100)
        policy = ExactlyOnceDelivery(max_attempts=3)
        assert policy.deliver(sender, Signal("s", "set", delivery_id="d1")).is_error
        assert policy.exhausted == 1
        assert policy.attempts == 3
        assert policy.retries == 2

    def test_exactly_once_errors_not_ledgered(self):
        sender = FlakySender(failures=100)
        policy = ExactlyOnceDelivery(max_attempts=2)
        signal = Signal("s", "set", delivery_id="d1")
        assert policy.deliver(sender, signal).is_error
        # After the outage, the delivery goes through (not stuck on ledger).
        sender.failures = 0
        assert policy.deliver(sender, signal).is_done


class TestEndToEndAtLeastOnce:
    def test_duplicating_network_with_idempotent_actions(self):
        """§3.4: duplicates on the wire, exactly-once effects at the action."""
        orb = Orb(rng=SeededRng(3))
        node = orb.create_node("remote")
        manager = ActivityManager(clock=orb.clock)
        manager.install(orb)
        recorder = RecordingAction("r")
        ref = node.activate(IdempotentAction(recorder), interface="Action")
        orb.transport.set_fault_plan(
            FaultPlan(drop_probability=0.2, duplicate_probability=0.3)
        )
        activity = manager.current.begin("noisy")
        activity.add_action("events", ref)
        for i in range(10):
            activity.register_signal_set(
                BroadcastSignalSet(f"evt-{i}", signal_set_name="events")
            )
            outcome = activity.signal("events")
            assert not outcome.is_error
        assert recorder.signal_names == [f"evt-{i}" for i in range(10)]
        manager.current.complete()
