"""Participant interfaces: Resource, SubtransactionAwareResource, Synchronization.

These mirror the CosTransactions participant interfaces.  A participant may
be a local object implementing the interface or an
:class:`~repro.orb.reference.ObjectRef` to a remote servant implementing
it; the coordinator invokes either transparently.
"""

from __future__ import annotations

import abc
from typing import Any

from repro.orb.reference import ObjectRef
from repro.ots.status import TransactionStatus, Vote


class Resource(abc.ABC):
    """A two-phase-commit participant."""

    @abc.abstractmethod
    def prepare(self) -> Vote:
        """Phase one.  Return a :class:`Vote`; VoteCommit promises that a
        later ``commit`` will succeed even across failures."""

    @abc.abstractmethod
    def commit(self) -> None:
        """Phase two, commit direction.  May raise a heuristic exception."""

    @abc.abstractmethod
    def rollback(self) -> None:
        """Phase two, rollback direction.  May raise a heuristic exception."""

    def commit_one_phase(self) -> None:
        """Single-participant optimisation; default = prepare + commit."""
        vote = self.prepare()
        if vote is Vote.COMMIT:
            self.commit()
        elif vote is Vote.ROLLBACK:
            from repro.ots.exceptions import TransactionRolledBack

            raise TransactionRolledBack("resource voted rollback in one-phase commit")

    def forget(self) -> None:
        """Discard heuristic-outcome knowledge; default no-op."""


class SubtransactionAwareResource(abc.ABC):
    """A participant interested in *nested* transaction completion."""

    @abc.abstractmethod
    def commit_subtransaction(self, parent: Any) -> None:
        """The registering subtransaction committed; ``parent`` is the
        (provisional) new owner of its effects."""

    @abc.abstractmethod
    def rollback_subtransaction(self) -> None:
        """The registering subtransaction rolled back."""


class Synchronization(abc.ABC):
    """Before/after completion callbacks (top-level transactions only)."""

    @abc.abstractmethod
    def before_completion(self) -> None:
        """Runs before phase one; raising forces rollback."""

    @abc.abstractmethod
    def after_completion(self, status: TransactionStatus) -> None:
        """Runs after the outcome is decided; must not raise."""


def call_participant(participant: Any, operation: str, *args: Any) -> Any:
    """Invoke ``operation`` on a local object or a remote ObjectRef."""
    if isinstance(participant, ObjectRef):
        return participant.invoke(operation, *args)
    return getattr(participant, operation)(*args)
