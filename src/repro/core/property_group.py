"""PropertyGroups (§3.3): tuple-space configuration attached to activities.

A PropertyGroup manages attribute/value pairs and defines behaviour along
two axes the paper calls out explicitly:

- **nested visibility** — what a child activity sees and whether its
  changes leak out: ``SHARED`` (one space for the whole tree — the
  paper's "client environment" example, PG1) or ``SCOPED`` (the child
  gets a copy-on-write view; its changes stay in its own context — the
  paper's "application context" example, PG2);
- **propagation** — how the group travels with remote invocations:
  ``VALUE`` (a snapshot crosses the wire), ``REFERENCE`` (an ObjectRef
  to the origin group crosses, and downstream reads/writes call back),
  or ``NONE`` (the group never propagates).

Rather than mandating a store, applications register *factories* with the
:class:`PropertyGroupManager`, mirroring the spec's "obtain their own
property store implementations".
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.exceptions import PropertyGroupError
from repro.orb.reference import ObjectRef


class NestedVisibility(Enum):
    SHARED = "shared"
    SCOPED = "scoped"


class Propagation(Enum):
    VALUE = "by-value"
    REFERENCE = "by-reference"
    NONE = "none"


class PropertyGroup:
    """A named tuple-space of attribute/value pairs."""

    def __init__(
        self,
        name: str,
        visibility: NestedVisibility = NestedVisibility.SHARED,
        propagation: Propagation = Propagation.VALUE,
        initial: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.visibility = visibility
        self.propagation = propagation
        self._values: Dict[str, Any] = dict(initial) if initial else {}
        self._version = 0

    # -- versioning (invocation fast path) -------------------------------------

    @property
    def version(self) -> int:
        """Monotonic mutation counter, bumped on every write/delete.

        The context snapshot cache keys an activity's wire context on
        the version vector of its groups, so an unchanged group stops
        being re-snapshotted and re-marshalled on every hop.  In-place
        mutation of a *value* obtained from the group bypasses the
        counter — always write through :meth:`set_property`.
        """
        return self._version

    def _bump_version(self) -> None:
        self._version += 1

    def version_token(self) -> Optional[Any]:
        """Hashable token identifying this group's current content, or
        ``None`` when the content cannot be tracked (remote proxies)."""
        return self._version

    # -- tuple space operations (dispatchable as a servant) --------------------

    def get_property(self, key: str, default: Any = None) -> Any:
        return self._values.get(key, default)

    def set_property(self, key: str, value: Any) -> None:
        self._values[key] = value
        self._bump_version()

    def delete_property(self, key: str) -> None:
        if key not in self._values:
            raise PropertyGroupError(f"no property {key!r} in group {self.name!r}")
        del self._values[key]
        self._bump_version()

    def has_property(self, key: str) -> bool:
        return key in self._values

    def property_names(self) -> List[str]:
        return sorted(self._values)

    def snapshot(self) -> Dict[str, Any]:
        return dict(self._values)

    def update_from(self, values: Dict[str, Any]) -> None:
        self._values.update(values)
        self._bump_version()

    # -- nesting ------------------------------------------------------------------

    def child_view(self) -> "PropertyGroup":
        """The group a nested activity should see (§3.3)."""
        if self.visibility is NestedVisibility.SHARED:
            return self
        return ScopedPropertyGroup(self)

    def __repr__(self) -> str:
        return (
            f"PropertyGroup({self.name!r}, {self.visibility.value}, "
            f"{self.propagation.value}, {len(self._values)} entries)"
        )


class ScopedPropertyGroup(PropertyGroup):
    """Copy-on-write overlay for a nested activity.

    Reads fall through to the parent group until the key is written
    locally; writes and deletes never leak upward.
    """

    _TOMBSTONE = object()

    def __init__(self, parent: PropertyGroup) -> None:
        super().__init__(
            parent.name, visibility=parent.visibility, propagation=parent.propagation
        )
        self._parent = parent

    def get_property(self, key: str, default: Any = None) -> Any:
        if key in self._values:
            value = self._values[key]
            return default if value is self._TOMBSTONE else value
        return self._parent.get_property(key, default)

    def has_property(self, key: str) -> bool:
        if key in self._values:
            return self._values[key] is not self._TOMBSTONE
        return self._parent.has_property(key)

    def version_token(self) -> Optional[Any]:
        """Combines the overlay's counter with the parent's token: a
        parent write after the child view was taken must invalidate any
        context snapshot built from this view."""
        parent_token = self._parent.version_token()
        if parent_token is None:
            return None
        return (self._version, parent_token)

    def delete_property(self, key: str) -> None:
        if not self.has_property(key):
            raise PropertyGroupError(f"no property {key!r} in group {self.name!r}")
        self._values[key] = self._TOMBSTONE
        self._bump_version()

    def property_names(self) -> List[str]:
        names = set(self._parent.property_names())
        for key, value in self._values.items():
            if value is self._TOMBSTONE:
                names.discard(key)
            else:
                names.add(key)
        return sorted(names)

    def snapshot(self) -> Dict[str, Any]:
        merged = self._parent.snapshot()
        for key, value in self._values.items():
            if value is self._TOMBSTONE:
                merged.pop(key, None)
            else:
                merged[key] = value
        return merged


class RemotePropertyGroup(PropertyGroup):
    """Client-side proxy for a by-reference group received in a context.

    Every operation calls back to the origin group through the ORB, so
    downstream changes are visible upstream immediately (and cost a
    round-trip — the propagation ablation bench measures this).
    """

    def __init__(self, name: str, ref: ObjectRef) -> None:
        super().__init__(name, propagation=Propagation.REFERENCE)
        self._ref = ref

    def version_token(self) -> Optional[Any]:
        """Unknowable: the origin group mutates without local visibility,
        so contexts embedding this group's content are never cached."""
        return None

    def get_property(self, key: str, default: Any = None) -> Any:
        return self._ref.invoke("get_property", key, default)

    def set_property(self, key: str, value: Any) -> None:
        self._ref.invoke("set_property", key, value)

    def delete_property(self, key: str) -> None:
        self._ref.invoke("delete_property", key)

    def has_property(self, key: str) -> bool:
        return self._ref.invoke("has_property", key)

    def property_names(self) -> List[str]:
        return self._ref.invoke("property_names")

    def snapshot(self) -> Dict[str, Any]:
        return self._ref.invoke("snapshot")

    def update_from(self, values: Dict[str, Any]) -> None:
        self._ref.invoke("update_from", values)


PropertyGroupFactory = Callable[[], PropertyGroup]


class PropertyGroupManager:
    """Registry of property-group factories for one deployment.

    Activities created by the activity service get one group per
    registered factory attached automatically (applications can attach
    further groups by hand).
    """

    def __init__(self) -> None:
        self._factories: Dict[str, PropertyGroupFactory] = {}

    def register_factory(self, name: str, factory: PropertyGroupFactory) -> None:
        self._factories[name] = factory

    def factory_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._factories))

    def create_all(self) -> Dict[str, PropertyGroup]:
        groups = {}
        for name, factory in self._factories.items():
            group = factory()
            if group.name != name:
                raise PropertyGroupError(
                    f"factory {name!r} produced group named {group.name!r}"
                )
            groups[name] = group
        return groups
