"""CDR-style marshalling.

CORBA's GIOP encodes request arguments in the Common Data Representation.
We reproduce the *semantics* that matter to the Activity Service:

- arguments and results cross node boundaries **by value** — mutating a
  received structure never mutates the sender's copy;
- object references cross **by reference** — an :class:`ObjectRef` is
  re-bound to the receiving node's ORB on arrival;
- application types (Signals, Outcomes, contexts…) must be explicitly
  registered, mirroring IDL-declared value types.

The encoding itself is a compact tagged binary format so transports can
account for message sizes realistically.

Invocation fast path (README "Invocation fast path"):

- value types marked with :meth:`ValueTypeRegistry.intern_encoded` hit a
  bounded identity-keyed :class:`EncodeCache` — the same object instance
  encodes once and its bytes are spliced into every later message that
  carries it (activity/transaction contexts are identity-stable per
  version, so an unchanged context stops being re-marshalled per hop);
- :class:`PayloadTemplate` (built via :meth:`Marshaller.prepare`) is the
  *marshal-once* seam: a value tree containing :class:`PayloadSlot`
  holes is encoded once, and ``fill`` patches only the per-send fields
  (request/delivery id, target object) between the pre-encoded chunks.
  A filled template is byte-identical to a full ``encode`` of the tree
  with the holes substituted, which is what lets broadcasts assert
  unchanged wire traces with the fast path on.

Both paths account their work in :class:`MarshalStats` (hits, misses,
bytes encoded vs bytes reused), which the ORB threads through its
transport stats for the benchmarks.
"""

from __future__ import annotations

import struct
import threading
from collections import OrderedDict
from dataclasses import fields, is_dataclass
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, Type, Union

from repro.exceptions import ReproError


class MarshalError(ReproError):
    """A value could not be encoded or decoded."""


# One-byte type tags.
_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_LIST = b"L"
_TAG_TUPLE = b"U"
_TAG_DICT = b"M"
_TAG_SET = b"E"
_TAG_OBJREF = b"O"
_TAG_VALUE = b"V"
_TAG_ENUM = b"G"


class ValueTypeRegistry:
    """Registry of application value types allowed on the wire.

    A value type is registered under its *repository id* (we use the
    qualified class name).  Dataclasses get automatic field-based
    encoders; other classes must provide ``to_parts``/``from_parts``.
    """

    def __init__(self) -> None:
        self._by_name: Dict[str, Tuple[Type, Callable, Callable]] = {}
        self._by_type: Dict[Type, str] = {}
        self._enums: Dict[str, Type[Enum]] = {}
        self._interned: Set[Type] = set()

    @staticmethod
    def repository_id(cls: Type) -> str:
        return f"{cls.__module__}.{cls.__qualname__}"

    def register_dataclass(self, cls: Type) -> Type:
        """Register a dataclass; usable as a decorator."""
        if not is_dataclass(cls):
            raise MarshalError(f"{cls!r} is not a dataclass")
        name = self.repository_id(cls)

        def to_parts(value: Any) -> Dict[str, Any]:
            return {f.name: getattr(value, f.name) for f in fields(cls)}

        def from_parts(parts: Dict[str, Any]) -> Any:
            return cls(**parts)

        self._by_name[name] = (cls, to_parts, from_parts)
        self._by_type[cls] = name
        return cls

    def register_custom(
        self,
        cls: Type,
        to_parts: Callable[[Any], Dict[str, Any]],
        from_parts: Callable[[Dict[str, Any]], Any],
    ) -> None:
        name = self.repository_id(cls)
        self._by_name[name] = (cls, to_parts, from_parts)
        self._by_type[cls] = name

    def register_enum(self, cls: Type[Enum]) -> Type[Enum]:
        self._enums[self.repository_id(cls)] = cls
        return cls

    def lookup_type(self, cls: Type) -> Optional[str]:
        return self._by_type.get(cls)

    def lookup_name(self, name: str) -> Tuple[Type, Callable, Callable]:
        try:
            return self._by_name[name]
        except KeyError:
            raise MarshalError(f"unregistered value type: {name}") from None

    def lookup_enum(self, name: str) -> Type[Enum]:
        try:
            return self._enums[name]
        except KeyError:
            raise MarshalError(f"unregistered enum type: {name}") from None

    def is_enum_registered(self, cls: Type) -> bool:
        return self.repository_id(cls) in self._enums

    def intern_encoded(self, cls: Type) -> Type:
        """Mark a registered value type as encode-cacheable.

        Instances of an interned type are encoded at most once per
        identity: marshallers with an :class:`EncodeCache` reuse the
        bytes for every later occurrence of the *same object*.  Only
        types whose instances are immutable and identity-stable per
        logical version (contexts, snapshots) should be interned.
        """
        if self.lookup_type(cls) is None:
            raise MarshalError(f"{cls!r} must be registered before interning")
        self._interned.add(cls)
        return cls

    def is_interned(self, cls: Type) -> bool:
        return cls in self._interned


GLOBAL_REGISTRY = ValueTypeRegistry()

# Default for the payload-interning gate's dict lookup: never any value.
_NOT_INTERNED = object()


class MarshalStats:
    """Thread-safe fast-path counters for one marshaller.

    ``bytes_encoded`` counts bytes produced by real tree walks;
    ``bytes_saved`` counts bytes spliced from the encode cache or a
    payload template's static chunks instead of being re-encoded.
    ``context_hits``/``context_misses`` are fed by the activity client
    interceptor's snapshot cache (same fast path, one stats block).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        with self._lock:
            self.cache_hits = 0
            self.cache_misses = 0
            self.bytes_encoded = 0
            self.bytes_saved = 0
            self.templates_prepared = 0
            self.template_fills = 0
            self.context_hits = 0
            self.context_misses = 0

    def note_encode(self, fresh: int, reused: int, hits: int, misses: int) -> None:
        with self._lock:
            self.bytes_encoded += fresh
            self.bytes_saved += reused
            self.cache_hits += hits
            self.cache_misses += misses

    def note_prepare(self) -> None:
        with self._lock:
            self.templates_prepared += 1

    def note_fill(self, fresh: int, reused: int, hits: int, misses: int) -> None:
        with self._lock:
            self.template_fills += 1
            self.bytes_encoded += fresh
            self.bytes_saved += reused
            self.cache_hits += hits
            self.cache_misses += misses

    def note_context(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.context_hits += 1
            else:
                self.context_misses += 1

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "bytes_encoded": self.bytes_encoded,
                "bytes_saved": self.bytes_saved,
                "templates_prepared": self.templates_prepared,
                "template_fills": self.template_fills,
                "context_hits": self.context_hits,
                "context_misses": self.context_misses,
            }


class EncodeCache:
    """Bounded identity-keyed cache of encoded interned values.

    Keys are object identities (the entry pins the value, so the id
    cannot be recycled while the entry lives); eviction is LRU under a
    hard ``max_entries`` bound, and :meth:`invalidate` drops a stale
    value explicitly (the context snapshot machinery calls it when a
    version bump replaces a cached context).
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[int, Tuple[Any, bytes]]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, value: Any) -> Optional[bytes]:
        key = id(value)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry[0] is not value:
                return None
            self._entries.move_to_end(key)
            return entry[1]

    def put(self, value: Any, encoded: bytes) -> None:
        key = id(value)
        with self._lock:
            self._entries[key] = (value, encoded)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def invalidate(self, value: Any) -> bool:
        key = id(value)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry[0] is not value:
                return False
            del self._entries[key]
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class PayloadSlot:
    """Named hole in a marshal-once template (see :meth:`Marshaller.prepare`)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"PayloadSlot({self.name!r})"


class _EncodeRun:
    """Per-top-level-encode accounting (not shared across threads)."""

    __slots__ = ("reused", "hits", "misses")

    def __init__(self) -> None:
        self.reused = 0
        self.hits = 0
        self.misses = 0


class PayloadTemplate:
    """A value tree encoded once, with per-send holes patched on ``fill``.

    ``fill(**values)`` returns bytes byte-identical to ``encode()`` of
    the template tree with every :class:`PayloadSlot` replaced by its
    value — the encoding is purely compositional, so splicing encoded
    holes between the static chunks reproduces the full walk exactly.
    Templates are immutable after construction; ``fill`` is safe to call
    from broadcast worker threads concurrently.
    """

    def __init__(self, marshaller: "Marshaller", chunks: List[Any]) -> None:
        self._marshaller = marshaller
        parts: List[Union[bytes, PayloadSlot]] = []
        pending: List[bytes] = []
        for chunk in chunks:
            if isinstance(chunk, PayloadSlot):
                if pending:
                    parts.append(b"".join(pending))
                    pending = []
                parts.append(chunk)
            else:
                pending.append(chunk)
        if pending:
            parts.append(b"".join(pending))
        self._parts: Tuple[Union[bytes, PayloadSlot], ...] = tuple(parts)
        self.static_bytes = sum(
            len(part) for part in self._parts if isinstance(part, bytes)
        )
        self.slot_names: Tuple[str, ...] = tuple(
            part.name for part in self._parts if isinstance(part, PayloadSlot)
        )

    def fill(self, **values: Any) -> bytes:
        missing = [name for name in self.slot_names if name not in values]
        if missing:
            raise MarshalError(f"template fill missing slot values: {missing}")
        marshaller = self._marshaller
        run = _EncodeRun()
        out: List[bytes] = []
        fresh = 0
        for part in self._parts:
            if isinstance(part, PayloadSlot):
                hole: List[bytes] = []
                marshaller._encode(values[part.name], hole, run)
                for chunk in hole:
                    if isinstance(chunk, PayloadSlot):
                        raise MarshalError(
                            "PayloadSlot values cannot contain further slots"
                        )
                    fresh += len(chunk)
                out.extend(hole)
            else:
                out.append(part)
        if marshaller.stats is not None:
            marshaller.stats.note_fill(
                fresh - run.reused,
                self.static_bytes + run.reused,
                run.hits,
                run.misses,
            )
        return b"".join(out)


class Marshaller:
    """Encodes/decodes values to bytes using a :class:`ValueTypeRegistry`.

    ``encode_cache`` (optional) enables byte reuse for interned value
    types; ``stats`` (optional, any object with the
    :class:`MarshalStats` interface) accounts encoded vs reused bytes —
    the ORB shares its transport stats' marshal block here.
    """

    def __init__(
        self,
        registry: Optional[ValueTypeRegistry] = None,
        stats: Optional[MarshalStats] = None,
        encode_cache: Optional[EncodeCache] = None,
    ) -> None:
        self.registry = registry if registry is not None else GLOBAL_REGISTRY
        self.stats = stats
        self.encode_cache = encode_cache
        # Opt-in instance interning for large immutable application
        # payloads (e.g. Signal.application_specific_data).  The map
        # pins each registered value (its id can never be recycled onto
        # a different object while registered) and gates the per-node
        # check, so the hot path pays one truthiness test when the
        # feature is unused; the bytes live in the encode cache.  The
        # thread-local tracks payloads being interned-encoded *on this
        # thread* so the gate does not recurse — registrations are never
        # mutated mid-encode, which keeps a concurrent release_payload
        # from being silently undone.
        self._interned_payload_refs: Dict[int, Any] = {}
        self._interning_state = threading.local()

    # -- payload interning --------------------------------------------------

    def intern_payload(self, value: Any) -> Any:
        """Register ``value`` for encode-once byte reuse (opt-in).

        Meant for *large, immutable* application payloads — a broadcast
        signal's ``application_specific_data`` that reaches N actions —
        whose subtree would otherwise be re-encoded per send.  The first
        encode caches the subtree's exact bytes in the marshaller's
        :class:`EncodeCache` (identity-keyed, LRU-bounded); every later
        occurrence of the *same object* splices them.  The spliced
        message is byte-identical to a full re-encode.

        Invalidation is the caller's contract: the payload must not be
        mutated while registered — the cache cannot observe mutation, so
        a mutated payload would keep shipping its stale bytes.  Replace
        the object (and register the replacement), or call
        :meth:`release_payload` first.  Registration requires an encode
        cache (``Orb(marshal_cache_entries=0)`` disables interning too).
        """
        if self.encode_cache is None:
            raise MarshalError(
                "payload interning requires an encode cache"
                " (marshal_cache_entries > 0)"
            )
        self._interned_payload_refs[id(value)] = value
        return value

    def release_payload(self, value: Any) -> bool:
        """Withdraw ``value`` from payload interning and drop its bytes."""
        self._interned_payload_refs.pop(id(value), None)
        if self.encode_cache is None:
            return False
        return self.encode_cache.invalidate(value)

    @property
    def interned_payloads(self) -> int:
        return len(self._interned_payload_refs)

    # -- encoding ---------------------------------------------------------

    def encode(self, value: Any) -> bytes:
        chunks: list = []
        run = _EncodeRun()
        self._encode(value, chunks, run)
        try:
            result = b"".join(chunks)
        except TypeError:
            raise MarshalError(
                "PayloadSlot encountered outside a template; use prepare()"
            ) from None
        if self.stats is not None:
            self.stats.note_encode(
                len(result) - run.reused, run.reused, run.hits, run.misses
            )
        return result

    def prepare(self, value: Any) -> PayloadTemplate:
        """Marshal-once: encode ``value`` into a reusable template.

        ``value`` may contain :class:`PayloadSlot` markers anywhere a
        value may appear (including inside registered dataclass fields);
        everything else is encoded now, exactly once.
        """
        chunks: list = []
        run = _EncodeRun()
        self._encode(value, chunks, run)
        if self.stats is not None:
            fresh = sum(len(c) for c in chunks if not isinstance(c, PayloadSlot))
            self.stats.note_encode(
                fresh - run.reused, run.reused, run.hits, run.misses
            )
            self.stats.note_prepare()
        return PayloadTemplate(self, chunks)

    def invalidate_cached(self, value: Any) -> bool:
        """Drop ``value``'s interned bytes (stale version replaced)."""
        if self.encode_cache is None:
            return False
        return self.encode_cache.invalidate(value)

    def _encode(self, value: Any, out: list, run: Optional[_EncodeRun] = None) -> None:
        refs = self._interned_payload_refs
        # The sentinel default keeps the identity test honest for values
        # like None whose id can never be a registered key's *value* but
        # where dict.get's None default would alias the value itself.
        if (
            refs
            and refs.get(id(value), _NOT_INTERNED) is value
            and id(value) not in getattr(self._interning_state, "active", ())
        ):
            self._encode_interned_payload(value, out, run)
            return
        # Order matters: bool is a subclass of int.
        if value is None:
            out.append(_TAG_NONE)
        elif value is True:
            out.append(_TAG_TRUE)
        elif value is False:
            out.append(_TAG_FALSE)
        elif isinstance(value, int):
            out.append(_TAG_INT)
            try:
                out.append(struct.pack("<q", value))
            except struct.error:
                raise MarshalError(
                    f"integer {value} exceeds the wire format's 64-bit range"
                ) from None
        elif isinstance(value, float):
            out.append(_TAG_FLOAT)
            out.append(struct.pack("<d", value))
        elif isinstance(value, str):
            raw = value.encode("utf-8")
            out.append(_TAG_STR)
            out.append(struct.pack("<I", len(raw)))
            out.append(raw)
        elif isinstance(value, bytes):
            out.append(_TAG_BYTES)
            out.append(struct.pack("<I", len(value)))
            out.append(value)
        elif isinstance(value, list):
            out.append(_TAG_LIST)
            out.append(struct.pack("<I", len(value)))
            for item in value:
                self._encode(item, out, run)
        elif isinstance(value, tuple):
            out.append(_TAG_TUPLE)
            out.append(struct.pack("<I", len(value)))
            for item in value:
                self._encode(item, out, run)
        elif isinstance(value, (set, frozenset)):
            out.append(_TAG_SET)
            items = sorted(value, key=repr)
            out.append(struct.pack("<I", len(items)))
            for item in items:
                self._encode(item, out, run)
        elif isinstance(value, dict):
            out.append(_TAG_DICT)
            out.append(struct.pack("<I", len(value)))
            for key, item in value.items():
                self._encode(key, out, run)
                self._encode(item, out, run)
        elif isinstance(value, Enum) and self.registry.is_enum_registered(type(value)):
            out.append(_TAG_ENUM)
            self._encode_str(self.registry.repository_id(type(value)), out)
            self._encode_str(value.name, out)
        elif self._is_objref(value):
            out.append(_TAG_OBJREF)
            self._encode_str(value.node_id, out)
            self._encode_str(value.object_id, out)
            self._encode_str(value.interface, out)
        else:
            if isinstance(value, PayloadSlot):
                # Template hole: recorded as-is, spliced at fill time.
                # Checked here (not up front) so the common scalar and
                # container branches pay nothing for the template seam.
                out.append(value)
                return
            name = self.registry.lookup_type(type(value))
            if name is None:
                raise MarshalError(
                    f"cannot marshal value of unregistered type {type(value).__qualname__}"
                )
            cache = self.encode_cache
            interned = cache is not None and self.registry.is_interned(type(value))
            if interned:
                cached = cache.get(value)
                if cached is not None:
                    out.append(cached)
                    if run is not None:
                        run.reused += len(cached)
                        run.hits += 1
                    return
            _, to_parts, _ = self.registry.lookup_name(name)
            if not interned:
                out.append(_TAG_VALUE)
                self._encode_str(name, out)
                self._encode(to_parts(value), out, run)
                return
            # Interned miss: encode the subtree standalone so the bytes
            # can be cached as one blob (slots inside forbid caching).
            sub: list = [_TAG_VALUE]
            self._encode_str(name, sub)
            self._encode(to_parts(value), sub, run)
            if any(isinstance(chunk, PayloadSlot) for chunk in sub):
                out.extend(sub)
                return
            blob = b"".join(sub)
            cache.put(value, blob)
            if run is not None:
                run.misses += 1
            out.append(blob)

    def _encode_interned_payload(
        self, value: Any, out: list, run: Optional[_EncodeRun]
    ) -> None:
        """Splice (or build) the cached bytes of one interned payload.

        The subtree is encoded standalone on a miss so its bytes cache
        as one blob; a thread-local active set breaks the gate's
        recursion without touching the shared registration map, so a
        concurrent :meth:`release_payload` takes effect immediately and
        can never be undone by an in-flight encode.
        """
        cache = self.encode_cache
        cached = cache.get(value) if cache is not None else None
        if cached is not None:
            out.append(cached)
            if run is not None:
                run.reused += len(cached)
                run.hits += 1
            return
        key = id(value)
        state = self._interning_state
        active = getattr(state, "active", None)
        if active is None:
            active = state.active = set()
        active.add(key)
        sub: list = []
        try:
            self._encode(value, sub, run)
        finally:
            active.discard(key)
        if any(isinstance(chunk, PayloadSlot) for chunk in sub):
            # Template holes inside the payload forbid caching the blob.
            out.extend(sub)
            return
        blob = b"".join(sub)
        if cache is not None:
            cache.put(value, blob)
            if self._interned_payload_refs.get(key, _NOT_INTERNED) is not value:
                # Released while we were encoding: drop the bytes we
                # just cached — nothing may serve them afterwards.
                cache.invalidate(value)
        if run is not None:
            run.misses += 1
        out.append(blob)

    def _encode_str(self, value: str, out: list) -> None:
        raw = value.encode("utf-8")
        out.append(struct.pack("<I", len(raw)))
        out.append(raw)

    @staticmethod
    def _is_objref(value: Any) -> bool:
        from repro.orb.reference import ObjectRef

        return isinstance(value, ObjectRef)

    # -- decoding ---------------------------------------------------------

    def decode(self, data: bytes, orb: Optional[Any] = None) -> Any:
        try:
            value, offset = self._decode(data, 0, orb)
        except (struct.error, IndexError, UnicodeDecodeError) as exc:
            raise MarshalError(f"malformed message: {exc}") from exc
        if offset != len(data):
            raise MarshalError(f"{len(data) - offset} trailing bytes after decode")
        return value

    def _decode(self, data: bytes, offset: int, orb: Optional[Any]) -> Tuple[Any, int]:
        if offset >= len(data):
            raise MarshalError("truncated message")
        tag = data[offset : offset + 1]
        offset += 1
        if tag == _TAG_NONE:
            return None, offset
        if tag == _TAG_TRUE:
            return True, offset
        if tag == _TAG_FALSE:
            return False, offset
        if tag == _TAG_INT:
            (value,) = struct.unpack_from("<q", data, offset)
            return value, offset + 8
        if tag == _TAG_FLOAT:
            (value,) = struct.unpack_from("<d", data, offset)
            return value, offset + 8
        if tag == _TAG_STR:
            text, offset = self._decode_str(data, offset)
            return text, offset
        if tag == _TAG_BYTES:
            (length,) = struct.unpack_from("<I", data, offset)
            offset += 4
            return data[offset : offset + length], offset + length
        if tag in (_TAG_LIST, _TAG_TUPLE, _TAG_SET):
            (length,) = struct.unpack_from("<I", data, offset)
            offset += 4
            items = []
            for _ in range(length):
                item, offset = self._decode(data, offset, orb)
                items.append(item)
            if tag == _TAG_LIST:
                return items, offset
            if tag == _TAG_TUPLE:
                return tuple(items), offset
            return set(items), offset
        if tag == _TAG_DICT:
            (length,) = struct.unpack_from("<I", data, offset)
            offset += 4
            result = {}
            for _ in range(length):
                key, offset = self._decode(data, offset, orb)
                value, offset = self._decode(data, offset, orb)
                result[key] = value
            return result, offset
        if tag == _TAG_ENUM:
            name, offset = self._decode_str(data, offset)
            member, offset = self._decode_str(data, offset)
            enum_cls = self.registry.lookup_enum(name)
            return enum_cls[member], offset
        if tag == _TAG_OBJREF:
            from repro.orb.reference import ObjectRef

            node_id, offset = self._decode_str(data, offset)
            object_id, offset = self._decode_str(data, offset)
            interface, offset = self._decode_str(data, offset)
            ref = ObjectRef(node_id=node_id, object_id=object_id, interface=interface)
            if orb is not None:
                ref.bind(orb)
            return ref, offset
        if tag == _TAG_VALUE:
            name, offset = self._decode_str(data, offset)
            parts, offset = self._decode(data, offset, orb)
            _, __, from_parts = self.registry.lookup_name(name)
            return from_parts(parts), offset
        raise MarshalError(f"unknown tag {tag!r} at offset {offset - 1}")

    def _decode_str(self, data: bytes, offset: int) -> Tuple[str, int]:
        (length,) = struct.unpack_from("<I", data, offset)
        offset += 4
        return data[offset : offset + length].decode("utf-8"), offset + length


def marshal_roundtrip(value: Any, orb: Optional[Any] = None, registry: Optional[ValueTypeRegistry] = None) -> Any:
    """Encode then decode ``value`` — the by-value copy a remote peer sees."""
    marshaller = Marshaller(registry)
    return marshaller.decode(marshaller.encode(value), orb)
