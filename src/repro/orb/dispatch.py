"""Pluggable delivery scheduling for the invocation path.

PR 7 extracts the *scheduling* decision out of :meth:`Orb.invoke
<repro.orb.core.Orb.invoke>`: marshalling produces request bytes, the
transport moves them, and a :class:`DispatchLoop` decides **on which
thread of control the delivery runs**.  The historical behaviour — the
caller's own thread walks straight through ``transport.deliver`` — is
:class:`InlineDispatchLoop` and stays the default with zero added
per-invoke cost (the ORB skips the seam entirely unless a loop is
configured).

:class:`AsyncioDispatchLoop` routes every delivery through a background
asyncio event loop: the invoking thread submits a coroutine and blocks
on its future, the coroutine bounds concurrency with a semaphore and
runs the (blocking) transport delivery on an executor thread.  That
gives one place where *all* of an ORB's outbound deliveries are
scheduled — admission control, pacing and instrumentation hooks attach
here — while composing unchanged with marshal-once templates and
group-commit (both operate on the bytes, not the scheduling).  It pairs
with :class:`~repro.orb.socket_transport.SocketTransport`'s asyncio
accept loop (``accept_loop="asyncio"``) for a deployment whose socket
handling is event-driven end to end.

Wire traces are identical under every loop: scheduling never touches
bytes.
"""

from __future__ import annotations

import abc
import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, ClassVar, Optional

from repro.exceptions import ConfigurationError


class DispatchLoop(abc.ABC):
    """Strategy for running one blocking delivery thunk to completion.

    ``dispatch(deliver)`` must return ``deliver()``'s result (or raise
    its exception) *synchronously from the caller's point of view* —
    invocation semantics stay request/reply; only the thread of control
    that executes the delivery is the loop's choice.
    """

    name: ClassVar[str] = "abstract"

    @abc.abstractmethod
    def dispatch(self, deliver: Callable[[], Any]) -> Any:
        """Run ``deliver`` and return its result."""

    def close(self) -> None:
        """Release any scheduling resources (idempotent)."""


class InlineDispatchLoop(DispatchLoop):
    """The historical behaviour: the invoking thread runs the delivery."""

    name: ClassVar[str] = "inline"

    def dispatch(self, deliver: Callable[[], Any]) -> Any:
        return deliver()


class AsyncioDispatchLoop(DispatchLoop):
    """Schedule deliveries onto a background asyncio event loop.

    The loop thread starts lazily on first dispatch and runs as a
    daemon; ``close()`` tears it down (subsequent dispatches refuse).
    ``max_concurrency`` bounds deliveries in flight via a semaphore —
    size it for the product of caller concurrency and nesting depth
    (a servant that invokes during dispatch holds one slot per level),
    and keep it at or below ``executor_workers``.
    """

    name: ClassVar[str] = "asyncio"

    def __init__(
        self, max_concurrency: int = 32, executor_workers: Optional[int] = None
    ) -> None:
        if max_concurrency < 1:
            raise ConfigurationError("max_concurrency must be at least 1")
        self.max_concurrency = max_concurrency
        self._executor_workers = (
            executor_workers if executor_workers is not None else max_concurrency
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._lock = threading.Lock()
        self._closed = False
        self.dispatches = 0

    # -- lifecycle --------------------------------------------------------

    def _ensure_started(self) -> asyncio.AbstractEventLoop:
        loop = self._loop
        if loop is not None:
            return loop
        with self._lock:
            if self._closed:
                raise ConfigurationError("dispatch loop is closed")
            if self._loop is None:
                loop = asyncio.new_event_loop()
                ready = threading.Event()

                def run() -> None:
                    asyncio.set_event_loop(loop)
                    loop.call_soon(ready.set)
                    loop.run_forever()

                thread = threading.Thread(
                    target=run, name="orb-dispatch-loop", daemon=True
                )
                thread.start()
                ready.wait()
                self._executor = ThreadPoolExecutor(
                    max_workers=self._executor_workers,
                    thread_name_prefix="orb-dispatch",
                )
                # Created here (not on the loop thread) so the bound is
                # fixed before the first coroutine can observe it.
                self._semaphore = asyncio.Semaphore(self.max_concurrency)
                self._thread = thread
                self._loop = loop
            return self._loop

    def close(self) -> None:
        with self._lock:
            self._closed = True
            loop, thread, executor = self._loop, self._thread, self._executor
            self._loop = self._thread = self._executor = None
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
            if thread is not None:
                thread.join(timeout=5.0)
            loop.close()
        if executor is not None:
            executor.shutdown(wait=True)

    # -- dispatch ---------------------------------------------------------

    async def _run(self, deliver: Callable[[], Any]) -> Any:
        assert self._semaphore is not None and self._executor is not None
        async with self._semaphore:
            loop = asyncio.get_event_loop()
            return await loop.run_in_executor(self._executor, deliver)

    def dispatch(self, deliver: Callable[[], Any]) -> Any:
        if self._closed:
            raise ConfigurationError("dispatch loop is closed")
        loop = self._ensure_started()
        self.dispatches += 1
        future = asyncio.run_coroutine_threadsafe(self._run(deliver), loop)
        return future.result()


def build_dispatch_loop(name: str) -> Optional[DispatchLoop]:
    """Map an ``OrbConfig.dispatch_loop`` value to a loop instance.

    ``"inline"`` maps to ``None`` — the ORB's invoke path special-cases
    it to call the transport directly, so the default pays nothing for
    the seam.
    """
    if name == "inline":
        return None
    if name == "asyncio":
        return AsyncioDispatchLoop()
    raise ConfigurationError(f"unknown dispatch loop {name!r}")
