"""Quickstart: activities, actions, signal sets, and two-phase commit.

Run:  python examples/quickstart.py

Walks the core vocabulary of the Activity Service (§3 of the paper):
an activity with registered actions, a broadcast signal mid-lifetime,
and a two-phase-commit completion protocol (§4.1, fig. 8).
"""

from repro.core import (
    ActivityManager,
    BroadcastSignalSet,
    CompletionStatus,
    FunctionAction,
)
from repro.models import TwoPhaseCommitSignalSet, TwoPhaseParticipant
from repro.models.twopc import SET_NAME as TWOPC_SET


def main() -> None:
    manager = ActivityManager()

    # -- 1. Begin an activity and register actions ----------------------------
    activity = manager.current.begin("order-66")
    print(f"began activity {activity.activity_id} ({activity.name})")

    # A FunctionAction lifts any callable into the Action interface.
    audit_entries = []
    audit = FunctionAction(
        lambda signal: audit_entries.append(signal.signal_name), name="audit"
    )
    activity.add_action("order.events", audit)

    # -- 2. Signals can flow at any point in the activity's lifetime ----------
    activity.register_signal_set(
        BroadcastSignalSet("order-placed", data={"sku": "X-1"},
                           signal_set_name="order.events")
    )
    outcome = activity.signal("order.events")
    print(f"mid-lifetime broadcast -> {outcome}")

    # -- 3. Complete the activity under a 2PC signal set ----------------------
    ledger = TwoPhaseParticipant("ledger")
    stock = TwoPhaseParticipant("stock")
    activity.add_action(TWOPC_SET, ledger)
    activity.add_action(TWOPC_SET, stock)
    activity.register_signal_set(TwoPhaseCommitSignalSet(), completion=True)

    outcome = manager.current.complete(CompletionStatus.SUCCESS)
    print(f"completion outcome: {outcome.name}")
    print(f"ledger saw signals: {ledger.signals_seen}")
    print(f"stock  saw signals: {stock.signals_seen}")
    print(f"audit trail:        {audit_entries}")

    assert outcome.name == "committed"
    assert ledger.committed and stock.committed

    # -- 4. A participant voting no pivots the protocol to rollback -----------
    activity = manager.current.begin("order-67")
    ok = TwoPhaseParticipant("ok")
    refuses = TwoPhaseParticipant("refuses", on_prepare=lambda: False)
    activity.add_action(TWOPC_SET, ok)
    activity.add_action(TWOPC_SET, refuses)
    activity.register_signal_set(TwoPhaseCommitSignalSet(), completion=True)
    outcome = manager.current.complete(CompletionStatus.SUCCESS)
    print(f"\nsecond activity outcome: {outcome.name}")
    print(f"'ok' participant rolled back: {ok.rolled_back}")
    assert outcome.name == "rolled_back"


if __name__ == "__main__":
    main()
