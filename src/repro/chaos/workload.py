"""Randomized mixed workloads for chaos campaigns.

The :class:`WorkloadRunner` draws one operation per campaign step from a
seeded stream — flat transactional transfers (local and cross-domain
through the federation), sagas, BTP atoms, and plain timed activities —
and records a :class:`OpResult` verdict for each into the ledger the
invariant checkers consume.

Outcome classification is the contract the checkers rely on:

``committed``
    The client saw the commit return (or the model report success).
``aborted``
    The client saw a clean rollback — insufficient funds, a phase-one
    failure, a refused BTP prepare, a compensated saga.  Nothing may
    remain applied.
``unknown``
    The client lost contact at completion time (communication error or
    a simulated crash *during* commit).  The outcome belongs to
    recovery; the checkers demand it resolves atomically either way.
``skipped``
    The operation was never attempted (its home domain was down).

Every random draw comes from the runner's own forked
:class:`~repro.util.rng.SeededRng`, so the op stream is identical on
replay regardless of what the fault schedule did to the world.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core import ActivityManager, CompletionStatus
from repro.exceptions import CommunicationError, InvalidStateError, ReproError
from repro.models.btp import BtpAtom, BtpParticipant
from repro.models.saga import Saga
from repro.ots import SimulatedCrash, TransactionRolledBack
from repro.util.rng import SeededRng

from repro.chaos.world import ChaosWorld

#: Default op mix (relative weights).
DEFAULT_MIX: Dict[str, float] = {
    "transfer_remote": 0.45,
    "transfer_local": 0.2,
    "saga": 0.15,
    "btp": 0.1,
    "activity": 0.1,
}


@dataclass
class OpResult:
    """One ledger entry: what the client believed happened."""

    op_id: str
    kind: str
    outcome: str
    source: str = ""
    debit: str = ""   # world-qualified account key ("A:a0")
    credit: str = ""
    amount: float = 0.0
    detail: str = ""
    crashed_domain: str = ""

    def describe(self) -> str:
        bits = [self.op_id, self.kind, self.outcome]
        if self.debit or self.credit:
            bits.append(f"{self.debit}->{self.credit}:{self.amount:g}")
        if self.detail:
            bits.append(self.detail)
        return " ".join(bits)


class WorkloadRunner:
    """Draws and executes one mixed operation per step."""

    def __init__(
        self,
        world: ChaosWorld,
        rng: SeededRng,
        mix: Optional[Dict[str, float]] = None,
    ) -> None:
        self.world = world
        self.rng = rng
        self.mix = dict(mix) if mix else dict(DEFAULT_MIX)
        self.ledger: List[OpResult] = []

    # -- drawing -----------------------------------------------------------

    def _draw_kind(self) -> str:
        kinds = sorted(self.mix)
        total = sum(self.mix[k] for k in kinds)
        roll = self.rng.uniform(0.0, total)
        acc = 0.0
        for kind in kinds:
            acc += self.mix[kind]
            if roll < acc:
                return kind
        return kinds[-1]

    def run_op(self, index: int) -> OpResult:
        """Execute the step's drawn operation and ledger its outcome."""
        op_id = f"op{index:04d}"
        kind = self._draw_kind()
        handler = getattr(self, f"_run_{kind}")
        result = handler(op_id)
        self.ledger.append(result)
        return result

    # -- bank transfers ----------------------------------------------------

    def _pick_domain(self, exclude: str = "") -> Optional[str]:
        names = [n for n in self.world.alive_domains() if n != exclude]
        return self.rng.choice(names) if names else None

    def _run_transfer_remote(self, op_id: str) -> OpResult:
        src = self._pick_domain()
        if src is None:
            return OpResult(op_id, "transfer_remote", "skipped",
                            detail="no alive domain")
        dst = self._pick_domain(exclude=src)
        if dst is None:
            # Single survivor: degrade to a local transfer so the step
            # still consumes the same rng draws on replay.
            return self._transfer(op_id, "transfer_remote", src, src)
        return self._transfer(op_id, "transfer_remote", src, dst)

    def _run_transfer_local(self, op_id: str) -> OpResult:
        src = self._pick_domain()
        if src is None:
            return OpResult(op_id, "transfer_local", "skipped",
                            detail="no alive domain")
        return self._transfer(op_id, "transfer_local", src, src)

    def _transfer(self, op_id: str, kind: str, src: str, dst: str) -> OpResult:
        world = self.world
        debit_key = self.rng.choice(sorted(world.domain(src).accounts))
        credit_choices = sorted(world.domain(dst).accounts)
        if src == dst:
            remaining = [k for k in credit_choices if k != debit_key]
            credit_key = self.rng.choice(remaining or credit_choices)
        else:
            credit_key = self.rng.choice(credit_choices)
        amount = float(self.rng.randint(1, 25))
        result = OpResult(
            op_id, kind, "unknown", source=src,
            debit=f"{src}:{debit_key}", credit=f"{dst}:{credit_key}",
            amount=amount,
        )
        domain = world.domain(src)
        tx = None
        try:
            tx = domain.current.begin()
            domain.accounts[debit_key].withdraw(op_id, amount)
            if dst == src:
                if credit_key == debit_key:
                    raise ValueError("degenerate self-transfer")
                domain.accounts[credit_key].deposit(op_id, amount)
            else:
                world.account_ref(src, dst, credit_key).invoke(
                    "deposit", op_id, amount
                )
        except SimulatedCrash:
            # A failpoint fired during the *body* — the source process
            # dies before any decision; treat like an aborted op whose
            # domain is gone (recovery presumes abort).
            world.crash(src)
            result.outcome = "unknown"
            result.detail = "crash during body"
            result.crashed_domain = src
            return result
        except (ValueError, ReproError) as exc:
            result.outcome = "aborted"
            result.detail = f"{type(exc).__name__}"
            if tx is not None:
                self._rollback(domain)
            return result

        try:
            domain.current.commit()
            result.outcome = "committed"
        except SimulatedCrash:
            world.crash(src)
            result.outcome = "unknown"
            result.detail = "crash during commit"
            result.crashed_domain = src
        except TransactionRolledBack:
            result.outcome = "aborted"
            result.detail = "rolled back at commit"
        except CommunicationError as exc:
            # Completion lost contact after the decision point may or
            # may not have been logged: genuinely in doubt.
            result.outcome = "unknown"
            result.detail = f"{type(exc).__name__} at commit"
        except ReproError as exc:
            result.outcome = "unknown"
            result.detail = f"{type(exc).__name__}: {exc}"
        return result

    def _rollback(self, domain) -> None:
        try:
            domain.current.rollback()
        except (ReproError, SimulatedCrash):
            pass

    # -- extended-transaction models --------------------------------------

    def _model_manager(self, op_id: str, kind: str):
        name = self._pick_domain()
        if name is None:
            return None, OpResult(op_id, kind, "skipped",
                                  detail="no alive domain")
        return self.world.domain(name), None

    def _run_saga(self, op_id: str) -> OpResult:
        domain, skipped = self._model_manager(op_id, "saga")
        if skipped is not None:
            return skipped
        steps = self.rng.randint(2, 4)
        fail_at = self.rng.randint(0, steps - 1) if self.rng.chance(0.4) else -1
        executed: List[str] = []
        saga = Saga(domain.manager, name=op_id)
        for i in range(steps):
            def work(ctx, i=i):
                if i == fail_at:
                    raise RuntimeError(f"{op_id} step{i} injected failure")
                executed.append(f"step{i}")
                return i

            def compensate(ctx, i=i):
                executed.remove(f"step{i}")

            saga.add_step(f"step{i}", work, compensate)
        outcome = saga.run()
        if outcome.succeeded:
            ok = len(executed) == steps
            return OpResult(op_id, "saga", "committed" if ok else "unknown",
                            source=domain.name, detail=f"steps={steps}")
        ok = not executed  # compensation swept the completed prefix
        return OpResult(
            op_id, "saga", "aborted" if ok else "unknown", source=domain.name,
            detail=f"failed at step{fail_at}, residue={executed}",
        )

    def _run_btp(self, op_id: str) -> OpResult:
        domain, skipped = self._model_manager(op_id, "btp")
        if skipped is not None:
            return skipped
        votes = [self.rng.chance(0.8) for _ in range(self.rng.randint(2, 3))]
        confirmed: List[str] = []
        atom = BtpAtom(domain.manager, name=op_id)
        for i, vote in enumerate(votes):
            atom.enroll(
                BtpParticipant(
                    f"p{i}",
                    on_prepare=lambda vote=vote: vote,
                    on_confirm=lambda i=i: confirmed.append(f"p{i}"),
                )
            )
        if atom.prepare():
            atom.confirm()
            ok = len(confirmed) == len(votes)
            return OpResult(op_id, "btp", "committed" if ok else "unknown",
                            source=domain.name, detail=f"n={len(votes)}")
        # A refused prepare already cancelled the atom.
        ok = not confirmed
        return OpResult(op_id, "btp", "aborted" if ok else "unknown",
                        source=domain.name, detail="prepare refused")

    def _run_activity(self, op_id: str) -> OpResult:
        domain, skipped = self._model_manager(op_id, "activity")
        if skipped is not None:
            return skipped
        timeout = self.rng.uniform(0.5, 5.0)
        activity = domain.manager.begin(name=f"act:{op_id}", timeout=timeout)
        try:
            activity.complete(CompletionStatus.SUCCESS)
            return OpResult(op_id, "activity", "committed",
                            source=domain.name, detail=f"timeout={timeout:.2f}")
        except (InvalidStateError, ReproError) as exc:
            return OpResult(op_id, "activity", "aborted",
                            source=domain.name, detail=type(exc).__name__)


__all__ = [
    "DEFAULT_MIX",
    "OpResult",
    "WorkloadRunner",
    "ActivityManager",
]
