"""Figure 7 — the SignalSet state machine (Waiting → GetSignal → End).

Regenerated artefact: the transition trace of a set driven through its
lifecycle, plus the guard's rejection of every illegal move, plus the
cost of state-machine enforcement (guarded vs raw signal set churn).
"""

import pytest

from repro.core import (
    GuardedSignalSet,
    Outcome,
    SequenceSignalSet,
    SignalSetActive,
    SignalSetInactive,
)
from repro.core.status import SignalSetState


def drive(guard):
    """Drive a guarded set to End, returning the observed states."""
    states = [guard.state]
    while True:
        signal, last = guard.get_signal()
        states.append(guard.state)
        if signal is None:
            break
        guard.set_response(Outcome.done())
        if last:
            guard.finish_broadcast()
            break
    guard.get_outcome()
    states.append(guard.state)
    return states


class TestFig7:
    def test_transitions_regenerated(self, benchmark, emit):
        def scenario_run():
            guard = GuardedSignalSet(SequenceSignalSet("s", ["a", "b"]))
            return drive(guard)

        states = benchmark.pedantic(scenario_run, rounds=1, iterations=1)
        assert states[0] is SignalSetState.WAITING
        assert SignalSetState.GET_SIGNAL in states
        assert states[-1] is SignalSetState.END
        emit(
            "fig07",
            ["fig 7 — state machine trace:"]
            + [f"  {state.name}" for state in states]
            + ["  (Waiting → GetSignal → End, no regressions)"],
            data={"trace_states": len(states)},
        )

    def test_illegal_moves_rejected(self, benchmark, emit):
        def scenario_run():
            rejections = 0
            # set_response before any signal.
            guard = GuardedSignalSet(SequenceSignalSet("s", ["a"]))
            try:
                guard.set_response(Outcome.done())
            except SignalSetInactive:
                rejections += 1
            # get_outcome mid-protocol.
            guard = GuardedSignalSet(SequenceSignalSet("s", ["a", "b"]))
            guard.get_signal()
            try:
                guard.get_outcome()
            except SignalSetActive:
                rejections += 1
            # reuse after End.
            guard = GuardedSignalSet(SequenceSignalSet("s", []))
            guard.get_signal()
            guard.get_outcome()
            for call in (guard.get_signal,
                         lambda: guard.set_response(Outcome.done())):
                try:
                    call()
                except SignalSetInactive:
                    rejections += 1
            return rejections

        rejections = benchmark.pedantic(scenario_run, rounds=1, iterations=1)
        assert rejections == 4
        emit(
            "fig07",
            [f"fig 7 — illegal transitions rejected: {rejections}/4"],
            data={"illegal_transitions_rejected": rejections},
        )

    @pytest.mark.parametrize("signals", [1, 8, 64])
    def test_bench_guarded_lifecycle(self, benchmark, signals):
        names = [f"s{i}" for i in range(signals)]

        def run():
            drive(GuardedSignalSet(SequenceSignalSet("s", names)))

        benchmark(run)

    @pytest.mark.parametrize("signals", [1, 8, 64])
    def test_bench_raw_lifecycle(self, benchmark, signals):
        """The unguarded baseline: what enforcement costs (ablation)."""
        names = [f"s{i}" for i in range(signals)]

        def run():
            sequence = SequenceSignalSet("s", names)
            while True:
                signal, last = sequence.get_signal()
                if signal is None:
                    break
                sequence.set_response(Outcome.done())
                if last:
                    break
            sequence.get_outcome()

        benchmark(run)
