"""Striped, lock-guarded maps for hot shared registries.

The activity manager's live-activity registry and the OTS factory's
transaction registry are touched on every ``begin``/``complete``/``get``;
under the parallel broadcast executor and ``parallel_participants`` those
calls arrive from many worker threads at once.  A single dict behind a
single lock makes every one of them a rendezvous point.  A
:class:`StripedMap` splits the key space across N independently-locked
segments so unrelated keys never contend.

Striping uses ``zlib.crc32`` of the key rather than ``hash()``:
``PYTHONHASHSEED`` randomises string hashes per process, and a
reproduction repo lives and dies by cross-run determinism (shard
assignment — and therefore any shard-ordered iteration — must be stable
run to run).
"""

from __future__ import annotations

import threading
import zlib
from typing import Any, Dict, Iterator, List, Optional, Tuple


class StripedMap:
    """A str-keyed map sharded into independently locked segments.

    Single-key operations lock only the owning segment.  Whole-map reads
    (``keys``/``values``/``items``/``__len__``) take per-segment
    snapshots in shard order — they are consistent per segment, not
    globally atomic, which is all the registries need (their callers
    tolerate an activity beginning or completing mid-listing).
    """

    def __init__(self, shards: int = 8) -> None:
        if shards < 1:
            raise ValueError("shards must be at least 1")
        self.shards = shards
        self._segments: List[Dict[str, Any]] = [{} for _ in range(shards)]
        self._locks: List[threading.Lock] = [threading.Lock() for _ in range(shards)]
        # Key-set generation per segment, bumped (under that segment's
        # lock) only when a mutation adds or removes a key — overwrites
        # keep the listing valid.  ``sorted_keys`` caches one sorted
        # snapshot against the summed generations, so registry scans
        # (timeout sweeps, ``active_transactions``) stop re-sorting the
        # whole key space on every call; the single-attribute cache
        # assignment keeps readers lock-free.
        self._versions: List[int] = [0] * shards
        self._sorted_cache: Optional[Tuple[int, Tuple[str, ...]]] = None
        self.listing_rebuilds = 0

    def _segment(
        self, key: str
    ) -> Tuple[threading.Lock, Dict[str, Any], int]:
        index = zlib.crc32(key.encode("utf-8")) % self.shards
        return self._locks[index], self._segments[index], index

    # -- single-key operations (one segment lock) -----------------------------

    def put(self, key: str, value: Any) -> None:
        lock, segment, index = self._segment(key)
        with lock:
            if key not in segment:
                self._versions[index] += 1
            segment[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        lock, segment, _ = self._segment(key)
        with lock:
            return segment.get(key, default)

    def __getitem__(self, key: str) -> Any:
        lock, segment, _ = self._segment(key)
        with lock:
            return segment[key]

    def pop(self, key: str, default: Any = None) -> Any:
        lock, segment, index = self._segment(key)
        with lock:
            if key in segment:
                self._versions[index] += 1
            return segment.pop(key, default)

    def setdefault(self, key: str, value: Any) -> Any:
        lock, segment, index = self._segment(key)
        with lock:
            if key not in segment:
                self._versions[index] += 1
            return segment.setdefault(key, value)

    def __contains__(self, key: object) -> bool:
        if not isinstance(key, str):
            return False
        lock, segment, _ = self._segment(key)
        with lock:
            return key in segment

    # -- whole-map snapshots (shard order, per-segment consistency) -----------

    def __len__(self) -> int:
        return sum(len(segment) for segment in self._segments)

    def keys(self) -> List[str]:
        collected: List[str] = []
        for lock, segment in zip(self._locks, self._segments):
            with lock:
                collected.extend(segment.keys())
        return collected

    def values(self) -> List[Any]:
        collected: List[Any] = []
        for lock, segment in zip(self._locks, self._segments):
            with lock:
                collected.extend(segment.values())
        return collected

    def items(self) -> List[Tuple[str, Any]]:
        collected: List[Tuple[str, Any]] = []
        for lock, segment in zip(self._locks, self._segments):
            with lock:
                collected.extend(segment.items())
        return collected

    def sorted_keys(self) -> Tuple[str, ...]:
        """Memoized globally sorted key snapshot.

        The generation signature is read *before* the per-segment
        snapshots: a mutation racing the scan leaves the cache stamped
        with a pre-mutation signature, so the next call recomputes —
        the cache can go stale for one call, never silently forever.
        """
        signature = sum(self._versions)
        cached = self._sorted_cache
        if cached is not None and cached[0] == signature:
            return cached[1]
        snapshot = tuple(sorted(self.keys()))
        self.listing_rebuilds += 1
        self._sorted_cache = (signature, snapshot)
        return snapshot

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def clear(self) -> None:
        for index, (lock, segment) in enumerate(
            zip(self._locks, self._segments)
        ):
            with lock:
                if segment:
                    self._versions[index] += 1
                segment.clear()

    def segment_sizes(self) -> List[int]:
        """Per-shard population (diagnostics / balance checks)."""
        return [len(segment) for segment in self._segments]
