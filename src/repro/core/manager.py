"""The ActivityManager: system-facing entry point of the Activity Service.

Fig. 13 of the paper splits the service's API into ``ActivityManager``
(used by high-level services to configure coordination: plug in
SignalSets, register recoverable Action factories) and ``UserActivity``
(application-facing demarcation).  This class is the former; it also owns
the registry of live activities, the property-group factories, timeout
policing, ORB installation (context-propagation interceptors) and the
checkpoint store used for activity-structure recovery (§3.4).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.core.action import Action
from repro.core.activity import Activity
from repro.core.broadcast import BroadcastExecutor
from repro.core.current import ActivityCurrent
from repro.core.delivery import AtLeastOnceDelivery, DeliveryPolicy
from repro.core.exceptions import ActivityServiceError, RecoveryError
from repro.core.property_group import PropertyGroupManager
from repro.core.signal_set import SignalSet
from repro.core.status import CompletionStatus
from repro.orb.core import Node, Orb
from repro.orb.reference import ObjectRef
from repro.persistence.object_store import ObjectStore
from repro.util.clock import Clock, SimulatedClock
from repro.util.events import EventLog
from repro.util.idgen import IdGenerator

SignalSetFactory = Callable[..., SignalSet]
ActionFactory = Callable[[Dict[str, Any]], Action]


class ActivityManager:
    """Creates, tracks, recovers and distributes activities."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        event_log: Optional[EventLog] = None,
        delivery: Optional[DeliveryPolicy] = None,
        store: Optional[ObjectStore] = None,
        property_groups: Optional[PropertyGroupManager] = None,
        executor: Optional[BroadcastExecutor] = None,
        action_timeout: Optional[float] = None,
        fast_path: bool = True,
    ) -> None:
        self.clock = clock if clock is not None else SimulatedClock()
        self.event_log = event_log if event_log is not None else EventLog(self.clock)
        self.delivery = delivery if delivery is not None else AtLeastOnceDelivery()
        # Broadcast executor shared by every activity this manager begins
        # (None → each coordinator defaults to the serial executor).
        self.executor = executor
        self.action_timeout = action_timeout
        # Invocation fast path: versioned context snapshots on the client
        # interceptor + marshal-once broadcast bodies in coordinators.
        # False restores build-and-marshal-per-hop everywhere.
        self.fast_path = fast_path
        self.store = store
        self.property_groups = (
            property_groups if property_groups is not None else PropertyGroupManager()
        )
        self.current = ActivityCurrent(self)
        self.ids = IdGenerator()
        self.orb: Optional[Orb] = None
        self._activities: Dict[str, Activity] = {}
        self._signal_set_factories: Dict[str, SignalSetFactory] = {}
        self._action_factories: Dict[str, ActionFactory] = {}
        self.begun = 0
        self.completed = 0

    # -- creation ------------------------------------------------------------

    def begin(
        self,
        name: Optional[str] = None,
        parent: Optional[Activity] = None,
        timeout: float = 0.0,
        executor: Optional[BroadcastExecutor] = None,
    ) -> Activity:
        """Create (and start) a new activity.

        ``executor`` overrides the manager-wide broadcast executor for
        this one activity (models like sagas route their compensation
        fan-out through a dedicated executor this way).
        """
        activity_id = self.ids.next("activity")
        activity = Activity(
            activity_id=activity_id,
            name=name,
            parent=parent,
            manager=self,
            event_log=self.event_log,
            delivery=self.delivery,
            timeout=timeout,
            clock=self.clock,
            executor=executor if executor is not None else self.executor,
            action_timeout=self.action_timeout,
            marshal_once=self.fast_path,
        )
        self._attach_property_groups(activity, parent)
        self._activities[activity_id] = activity
        self.begun += 1
        self.event_log.record(
            "activity_begin",
            activity=activity_id,
            name=activity.name,
            parent=parent.activity_id if parent is not None else None,
        )
        return activity

    def _attach_property_groups(
        self, activity: Activity, parent: Optional[Activity]
    ) -> None:
        if parent is not None:
            for group in parent.property_groups():
                activity.attach_property_group(group.child_view())
        else:
            for group in self.property_groups.create_all().values():
                activity.attach_property_group(group)

    # -- registry ----------------------------------------------------------------

    def get(self, activity_id: str) -> Activity:
        try:
            return self._activities[activity_id]
        except KeyError:
            raise ActivityServiceError(f"unknown activity {activity_id!r}") from None

    def knows(self, activity_id: str) -> bool:
        return activity_id in self._activities

    def active_activities(self) -> List[Activity]:
        return [
            activity
            for activity in self._activities.values()
            if not activity.status.is_terminal
        ]

    def on_activity_completed(self, activity: Activity) -> None:
        self.completed += 1
        if self.store is not None:
            self.checkpoint(activity)

    # -- timeouts ------------------------------------------------------------------

    def expire_timeouts(self) -> List[str]:
        """Latch FAIL_ONLY onto every active activity past its deadline."""
        expired = []
        now = self.clock.now()
        for activity in self.active_activities():
            if (
                activity.deadline is not None
                and now > activity.deadline
                and activity.get_completion_status() is not CompletionStatus.FAIL_ONLY
            ):
                activity.set_completion_status(CompletionStatus.FAIL_ONLY)
                expired.append(activity.activity_id)
        return expired

    # -- distribution -----------------------------------------------------------------

    def install(self, orb: Orb) -> None:
        """Wire activity-context propagation into an ORB."""
        from repro.core import exceptions as core_exceptions
        from repro.core.context import ActivityClientInterceptor, ActivityServerInterceptor

        self.orb = orb
        orb.interceptors.add_client(
            ActivityClientInterceptor(self.current, orb=orb, cache=self.fast_path)
        )
        orb.interceptors.add_server(ActivityServerInterceptor(orb, self))
        for name in (
            "ActionError",
            "SignalSetActive",
            "SignalSetInactive",
            "InvalidActivityState",
            "ActivityPending",
            "ActivityCompleted",
            "NoActivity",
            "CompletionStatusLatched",
            "NoSuchSignalSet",
            "NoSuchPropertyGroup",
            "PropertyGroupError",
            "ActivityServiceError",
        ):
            orb.register_exception(getattr(core_exceptions, name))

    def export(self, activity: Activity, node: Node) -> ObjectRef:
        """Activate an activity as a servant so peers can enlist remotely."""
        return node.activate(
            activity, object_id=f"activity:{activity.activity_id}", durable=True
        )

    def export_property_group(self, group: Any, node: Node) -> ObjectRef:
        """Activate a property group for by-reference propagation."""
        ref = node.activate(group, object_id=f"pg:{group.name}:{id(group):x}")
        setattr(group, "exported_ref", ref)
        return ref

    # -- recovery plumbing (used by core.recovery) ---------------------------------------

    def register_signal_set_factory(self, name: str, factory: SignalSetFactory) -> None:
        self._signal_set_factories[name] = factory

    def register_action_factory(self, name: str, factory: ActionFactory) -> None:
        self._action_factories[name] = factory

    def make_signal_set(self, factory_name: str) -> SignalSet:
        try:
            factory = self._signal_set_factories[factory_name]
        except KeyError:
            raise RecoveryError(f"no signal-set factory {factory_name!r}") from None
        return factory()

    def make_action(self, factory_name: str, config: Dict[str, Any]) -> Action:
        try:
            factory = self._action_factories[factory_name]
        except KeyError:
            raise RecoveryError(f"no action factory {factory_name!r}") from None
        return factory(config)

    def checkpoint(self, activity: Activity) -> None:
        from repro.core.recovery import ActivityRecoveryService

        if self.store is None:
            raise RecoveryError("manager has no checkpoint store")
        ActivityRecoveryService(self, self.store).checkpoint(activity)

    def recover(self) -> List[str]:
        """Rebuild the activity structure from the checkpoint store.

        Returns the ids of recovered activities that are still in flight
        (application logic must drive them to completion, §3.4).
        """
        from repro.core.recovery import ActivityRecoveryService

        if self.store is None:
            raise RecoveryError("manager has no checkpoint store")
        return ActivityRecoveryService(self, self.store).recover()

    def adopt(self, activity: Activity) -> None:
        """Install a recovered activity into the registry (recovery only)."""
        self._activities[activity.activity_id] = activity
