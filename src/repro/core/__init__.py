"""The Activity Service framework — the paper's primary contribution.

Activities (application-specific units of computation) coordinate through
a general-purpose event-signalling mechanism: each activity has an
:class:`ActivityCoordinator`; :class:`Action` objects register interest in
:class:`SignalSet` names; triggering a set makes the coordinator pump its
:class:`Signal` stream to every registered action and feed the
:class:`Outcome` replies back to the set, which decides how the protocol
proceeds.  Extended transaction models (two-phase commit, open nesting
with compensation, sagas, workflow coordination, BTP…) are just concrete
SignalSet/Action implementations — see :mod:`repro.models`.
"""

from repro.core.action import (
    Action,
    FunctionAction,
    IdempotentAction,
    RecordingAction,
    ScriptedAction,
)
from repro.core.activity import Activity
from repro.core.broadcast import (
    BroadcastExecutor,
    SerialBroadcastExecutor,
    ThreadPoolBroadcastExecutor,
    Transmission,
)
from repro.core.context import (
    ActivityClientInterceptor,
    ActivityContext,
    ActivityServerInterceptor,
    build_context,
    context_version,
    received_context,
    snapshot_context,
)
from repro.core.coordinator import ActionRecord, ActivityCoordinator
from repro.core.current import ActivityCurrent
from repro.core.interposition import (
    ActivityInterposer,
    SubordinateCoordinator,
    recover_subordinates,
)
from repro.core.delivery import (
    AtLeastOnceDelivery,
    AtMostOnceDelivery,
    DeliveryPolicy,
    ExactlyOnceDelivery,
)
from repro.core.exceptions import (
    ActionError,
    ActivityCompleted,
    ActivityPending,
    ActivityServiceError,
    CompletionStatusLatched,
    InvalidActivityState,
    NoActivity,
    NoSuchPropertyGroup,
    NoSuchSignalSet,
    NotOriginator,
    PropertyGroupError,
    RecoveryError,
    SignalSetActive,
    SignalSetInactive,
)
from repro.core.manager import ActivityManager
from repro.core.predefined import BroadcastSignalSet, CompletionSignalSet
from repro.core.property_group import (
    NestedVisibility,
    Propagation,
    PropertyGroup,
    PropertyGroupManager,
    RemotePropertyGroup,
    ScopedPropertyGroup,
)
from repro.core.recovery import ActivityRecoveryService
from repro.core.signal_set import GuardedSignalSet, SequenceSignalSet, SignalSet
from repro.core.signals import (
    OUTCOME_DONE,
    OUTCOME_ERROR,
    OUTCOME_UNREACHABLE,
    Outcome,
    Signal,
)
from repro.core.status import ActivityStatus, CompletionStatus, SignalSetState
from repro.core.user_activity import UserActivity

__all__ = [
    "Activity",
    "ActivityManager",
    "ActivityCurrent",
    "ActivityInterposer",
    "SubordinateCoordinator",
    "recover_subordinates",
    "UserActivity",
    "ActivityCoordinator",
    "ActionRecord",
    "BroadcastExecutor",
    "SerialBroadcastExecutor",
    "ThreadPoolBroadcastExecutor",
    "Transmission",
    "Action",
    "FunctionAction",
    "IdempotentAction",
    "RecordingAction",
    "ScriptedAction",
    "Signal",
    "Outcome",
    "OUTCOME_DONE",
    "OUTCOME_ERROR",
    "OUTCOME_UNREACHABLE",
    "SignalSet",
    "GuardedSignalSet",
    "SequenceSignalSet",
    "CompletionSignalSet",
    "BroadcastSignalSet",
    "CompletionStatus",
    "ActivityStatus",
    "SignalSetState",
    "PropertyGroup",
    "ScopedPropertyGroup",
    "RemotePropertyGroup",
    "PropertyGroupManager",
    "NestedVisibility",
    "Propagation",
    "DeliveryPolicy",
    "AtMostOnceDelivery",
    "AtLeastOnceDelivery",
    "ExactlyOnceDelivery",
    "ActivityContext",
    "ActivityClientInterceptor",
    "ActivityServerInterceptor",
    "build_context",
    "context_version",
    "snapshot_context",
    "received_context",
    "ActivityRecoveryService",
    "ActivityServiceError",
    "ActionError",
    "SignalSetActive",
    "SignalSetInactive",
    "InvalidActivityState",
    "ActivityPending",
    "ActivityCompleted",
    "NoActivity",
    "NotOriginator",
    "CompletionStatusLatched",
    "NoSuchSignalSet",
    "NoSuchPropertyGroup",
    "PropertyGroupError",
    "RecoveryError",
]
