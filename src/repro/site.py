"""Site daemon entry point: ``python -m repro.site --config site.json``.

Loads a :class:`~repro.orb.site.SiteConfig`, wires a
:class:`~repro.orb.site.SiteRuntime` and serves until a ``shutdown``
control frame (or a signal) arrives.  One deliberate daemon-only twist:
armed fail-points (``arm_kill`` control op) fire a **real SIGKILL** of
this process instead of the in-process :class:`SimulatedCrash` — the
same protocol points the simulated crash tests exercise become genuine
process deaths, and recovery must work from the on-disk WAL alone.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from typing import List, Optional

from repro.orb.site import SiteConfig, SiteRuntime


def build_runtime(config: SiteConfig) -> SiteRuntime:
    runtime = SiteRuntime(config)

    def kill_self(point: str) -> None:
        # Flush what little buffering we own, then die without cleanup:
        # no atexit, no finally blocks, no WAL niceties.  Durability must
        # come from records already forced to disk.
        print(f"[site {config.site_id}] fail-point {point!r}: SIGKILL", flush=True)
        os.kill(os.getpid(), signal.SIGKILL)

    runtime.factory.failpoints.on_fire = kill_self
    return runtime


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.site", description="Run one activity-service site daemon."
    )
    parser.add_argument(
        "--config", required=True, help="path to a SiteConfig JSON file"
    )
    args = parser.parse_args(argv)

    config = SiteConfig.from_file(args.config)
    runtime = build_runtime(config)
    runtime.transport.start()
    address = runtime.transport.address
    print(
        f"[site {config.site_id}] listening on {address[0]}:{address[1]}",
        flush=True,
    )

    def request_stop(signum: int, frame: object) -> None:
        runtime.stop()

    signal.signal(signal.SIGTERM, request_stop)
    signal.signal(signal.SIGINT, request_stop)
    runtime.serve()
    print(f"[site {config.site_id}] stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
