"""SQLite-backed object store: one database file per store.

The other file-backed stores hand-roll their durability (tmp+rename per
entry, or an append-only segment log); this one delegates it to SQLite's
journal, which gives the same contract — ``put_many`` maps to a single
SQL transaction, so a whole group-commit force is one atomic, durable
unit — plus a backend operators can inspect with stock tooling.  Values
still pass through the CDR marshaller, so a SQLite-backed replica obeys
exactly the same typing discipline as every other store and the bytes it
holds are interchangeable with theirs.

Thread-safety mirrors the other stores: one connection guarded by a
lock (SQLite connections are not concurrency-safe by themselves; the
parallel broadcast executor drives participant writes from worker
threads).  A second :class:`SqliteStore` opened over the same path sees
everything committed before the first crashed — that is the reopen
model the crash/recovery tests exercise.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from typing import Any, Optional, Tuple

from repro.orb.marshal import Marshaller, ValueTypeRegistry
from repro.persistence.object_store import BatchItems, ObjectStore, StoreError


class SqliteStore(ObjectStore):
    """Keyed object store over a single SQLite database file."""

    def __init__(
        self,
        path: str,
        registry: Optional[ValueTypeRegistry] = None,
        synchronous: str = "FULL",
    ) -> None:
        self._path = path
        self._marshaller = Marshaller(registry)
        self._lock = threading.RLock()
        self.writes = 0
        self.reads = 0
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        # check_same_thread=False: our lock serialises access, and the
        # worker threads of the broadcast executor must be able to write.
        self._conn = sqlite3.connect(path, check_same_thread=False)
        if synchronous.upper() not in ("OFF", "NORMAL", "FULL", "EXTRA"):
            raise StoreError(f"unknown synchronous mode {synchronous!r}")
        self._conn.execute(f"PRAGMA synchronous={synchronous.upper()}")
        with self._conn:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS objects ("
                "uid TEXT PRIMARY KEY, value BLOB NOT NULL)"
            )

    @property
    def path(self) -> str:
        return self._path

    def put(self, uid: str, state: Any) -> None:
        self.put_many([(uid, state)])

    def put_many(self, items: BatchItems) -> None:
        batch = dict(items)
        if not batch:
            return
        # Encode first: a marshalling error must leave the store
        # untouched, same all-or-nothing contract as one flush.
        rows = [
            (uid, self._marshaller.encode(state)) for uid, state in batch.items()
        ]
        with self._lock:
            with self._conn:  # one transaction per batch
                self._conn.executemany(
                    "INSERT INTO objects(uid, value) VALUES(?, ?) "
                    "ON CONFLICT(uid) DO UPDATE SET value=excluded.value",
                    rows,
                )
            self.writes += 1

    def get(self, uid: str) -> Any:
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM objects WHERE uid=?", (uid,)
            ).fetchone()
        if row is None:
            raise StoreError(f"no state stored under {uid!r}")
        self.reads += 1
        return self._marshaller.decode(row[0])

    def remove(self, uid: str) -> None:
        with self._lock:
            with self._conn:
                cursor = self._conn.execute(
                    "DELETE FROM objects WHERE uid=?", (uid,)
                )
            if cursor.rowcount == 0:
                raise StoreError(f"no state stored under {uid!r}")

    def contains(self, uid: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM objects WHERE uid=?", (uid,)
            ).fetchone()
        return row is not None

    def keys(self) -> Tuple[str, ...]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT uid FROM objects ORDER BY uid"
            ).fetchall()
        return tuple(row[0] for row in rows)

    def close(self) -> None:
        """Release the connection (reopen by constructing a new store)."""
        with self._lock:
            self._conn.close()
