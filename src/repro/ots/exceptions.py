"""OTS exception hierarchy, mirroring CosTransactions exceptions."""

from __future__ import annotations

from repro.exceptions import ReproError


class TransactionError(ReproError):
    """Base for all transaction-service errors."""


class TransactionRolledBack(TransactionError):
    """Commit was requested but the transaction rolled back instead."""


class TransactionRequired(TransactionError):
    """An operation needed an active transaction and none was present."""


class InvalidTransaction(TransactionError):
    """The supplied transaction handle is unusable in this context."""


class NoTransaction(TransactionError):
    """The calling thread has no associated transaction."""


class Inactive(TransactionError):
    """The transaction is no longer active (completing or completed)."""


class NotPrepared(TransactionError):
    """Phase-two operation invoked before a successful prepare."""


class SubtransactionsUnavailable(TransactionError):
    """Nested transactions were requested where unsupported."""


class SynchronizationUnavailable(TransactionError):
    """Synchronizations can only be registered with top-level transactions."""


class WrongTransaction(TransactionError):
    """A reply arrived under a different transaction than the request."""


class HeuristicException(TransactionError):
    """Base for heuristic outcomes raised by resources or the coordinator."""


class HeuristicRollback(HeuristicException):
    """The resource unilaterally rolled back after voting commit."""


class HeuristicCommit(HeuristicException):
    """The resource unilaterally committed after being told to roll back."""


class HeuristicMixed(HeuristicException):
    """Some parts of the transaction committed while others rolled back."""


class HeuristicHazard(HeuristicException):
    """The disposition of some updates is unknown."""


class SimulatedCrash(ReproError):
    """A fail-point fired: the coordinator 'machine' halted at this point.

    Tests catch this, optionally crash the node, and then drive the
    recovery manager — reproducing coordinator failure mid-protocol.
    """
