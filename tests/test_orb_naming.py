"""Unit tests for the naming service."""

import pytest

from repro.orb import Orb
from repro.orb.core import Servant
from repro.orb.naming import (
    NameAlreadyBound,
    NameNotFound,
    NamingService,
    install_naming,
)


class Dummy(Servant):
    def hello(self):
        return "hi"


@pytest.fixture
def deployment():
    orb = Orb()
    node = orb.create_node("ns-host")
    naming_ref = install_naming(orb, node)
    dummy_ref = node.activate(Dummy())
    return orb, node, naming_ref, dummy_ref


class TestNamingLocal:
    def test_bind_resolve(self):
        naming = NamingService()
        from repro.orb.reference import ObjectRef

        ref = ObjectRef("n", "o", "I")
        naming.bind("services/dummy", ref)
        assert naming.resolve("services/dummy") == ref

    def test_bind_duplicate_rejected(self):
        naming = NamingService()
        from repro.orb.reference import ObjectRef

        ref = ObjectRef("n", "o")
        naming.bind("a", ref)
        with pytest.raises(NameAlreadyBound):
            naming.bind("a", ref)

    def test_rebind_replaces(self):
        naming = NamingService()
        from repro.orb.reference import ObjectRef

        naming.bind("a", ObjectRef("n", "o1"))
        naming.rebind("a", ObjectRef("n", "o2"))
        assert naming.resolve("a").object_id == "o2"

    def test_resolve_missing(self):
        naming = NamingService()
        with pytest.raises(NameNotFound):
            naming.resolve("ghost")

    def test_resolve_missing_context(self):
        naming = NamingService()
        with pytest.raises(NameNotFound):
            naming.resolve("no/such/context")

    def test_unbind(self):
        naming = NamingService()
        from repro.orb.reference import ObjectRef

        naming.bind("a", ObjectRef("n", "o"))
        naming.unbind("a")
        with pytest.raises(NameNotFound):
            naming.resolve("a")

    def test_unbind_missing(self):
        naming = NamingService()
        with pytest.raises(NameNotFound):
            naming.unbind("ghost")

    def test_empty_name_rejected(self):
        naming = NamingService()
        from repro.orb.reference import ObjectRef

        with pytest.raises(NameNotFound):
            naming.bind("", ObjectRef("n", "o"))

    def test_listing(self):
        naming = NamingService()
        from repro.orb.reference import ObjectRef

        naming.bind("svc/a", ObjectRef("n", "1"))
        naming.bind("svc/b", ObjectRef("n", "2"))
        naming.bind("top", ObjectRef("n", "3"))
        assert naming.list_names("svc") == ["a", "b"]
        assert naming.list_names() == ["top"]
        assert naming.list_contexts() == ["svc"]


class TestNamingRemote:
    def test_initial_reference_registered(self, deployment):
        orb, node, naming_ref, dummy_ref = deployment
        assert orb.resolve_initial_references("NameService") == naming_ref

    def test_remote_bind_and_resolve(self, deployment):
        orb, node, naming_ref, dummy_ref = deployment
        naming_ref.invoke("bind", "apps/dummy", dummy_ref)
        resolved = naming_ref.invoke("resolve", "apps/dummy")
        assert resolved == dummy_ref
        # The resolved ref is live: invoke through it.
        assert resolved.invoke("hello") == "hi"

    def test_remote_errors_are_typed(self, deployment):
        orb, node, naming_ref, dummy_ref = deployment
        with pytest.raises(NameNotFound):
            naming_ref.invoke("resolve", "ghost")
        naming_ref.invoke("bind", "a", dummy_ref)
        with pytest.raises(NameAlreadyBound):
            naming_ref.invoke("bind", "a", dummy_ref)

    def test_naming_survives_crash_as_durable(self, deployment):
        orb, node, naming_ref, dummy_ref = deployment
        naming_ref.invoke("bind", "a", dummy_ref)
        node.crash()
        node.restart()
        assert naming_ref.invoke("resolve", "a") == dummy_ref
