"""Open nesting with compensation on the bulletin board (§2.1(i), §4.2, fig. 9).

Run:  python examples/bulletin_board_compensation.py

Within a long application transaction A, a post is made to the bulletin
board in an *independent* top-level transaction B so the board's lock is
released immediately.  A CompensationAction guards the post: if A later
rolls back, !B retracts it; if A commits, the action is discarded.
"""

from repro.apps import BulletinBoard
from repro.core import ActivityManager
from repro.models import OpenNestedCoordinator
from repro.ots import TransactionCurrent, TransactionFactory


def run(enclosing_commits: bool) -> None:
    factory = TransactionFactory()
    current = TransactionCurrent(factory)
    board = BulletinBoard("jobs", factory, current=current)
    manager = ActivityManager()
    onc = OpenNestedCoordinator(manager)

    label = "A commits" if enclosing_commits else "A rolls back"
    print(f"--- {label} ---")

    # The enclosing activity around application transaction A.
    enclosing = onc.begin_enclosing("A")
    tx_a = current.begin(name="A")

    # B: post in an independent top-level transaction with compensation.
    suspended = current.suspend()  # B must not be nested inside A
    post_id, _inner = board.post_open_nested(
        onc, author="sam", subject="position open", body="apply within"
    )
    current.resume(suspended)

    print(f"posted {post_id}; board locked now? {board.is_locked()}")
    assert not board.is_locked(), "B released the board immediately"
    assert len(board.read_board()) == 1, "post is visible before A completes"

    # ... A does a lot more long-running work here ...

    if enclosing_commits:
        current.commit()
        onc.complete_enclosing(enclosing, success=True)
        visible = board.read_board()
        print(f"A committed; post still visible: {[p.post_id for p in visible]}")
        assert len(visible) == 1
    else:
        current.rollback()
        onc.complete_enclosing(enclosing, success=False)
        visible = board.read_board()
        retracted = board.read_post(post_id).retracted
        print(f"A rolled back; compensation retracted the post "
              f"(visible={len(visible)}, retracted={retracted})")
        assert visible == [] and retracted
    print()


def main() -> None:
    run(enclosing_commits=True)
    run(enclosing_commits=False)


if __name__ == "__main__":
    main()
