"""A simulated CORBA ORB.

This package stands in for the commercial ORB the paper's framework was
specified against.  It provides the pieces the Activity Service actually
depends on:

- location-transparent invocation on :class:`~repro.orb.reference.ObjectRef`
  (the moral equivalent of an IOR);
- a CDR-style value marshaller enforcing pass-by-value semantics across
  "nodes" (:mod:`repro.orb.marshal`);
- request/reply delivery through a transport with configurable latency,
  message loss, duplication and node crashes (:mod:`repro.orb.transport`);
- client/server request interceptors carrying *service contexts* — the
  mechanism CORBA uses to propagate transaction and activity contexts
  implicitly (:mod:`repro.orb.interceptors`);
- a COS-Naming-style name service (:mod:`repro.orb.naming`).

Everything runs in-process and single-threaded under a simulated clock so
runs are deterministic, but the code paths (marshalling boundaries, context
propagation, unreliable delivery) mirror a real distributed deployment.
"""

from repro.orb.core import Node, Orb, PreparedInvocation, Servant
from repro.orb.federation import DomainLink, InterOrbBridge, coordination_node_id
from repro.orb.interceptors import (
    ClientRequestInterceptor,
    RequestInfo,
    ServerRequestInterceptor,
)
from repro.orb.marshal import (
    EncodeCache,
    Marshaller,
    MarshalStats,
    PayloadSlot,
    PayloadTemplate,
    ValueTypeRegistry,
    marshal_roundtrip,
)
from repro.orb.naming import NamingService
from repro.orb.reference import ObjectRef
from repro.orb.transport import (
    FaultPlan,
    SimulatedTransport,
    Transport,
    TransportStats,
)

__all__ = [
    "Orb",
    "Node",
    "Servant",
    "InterOrbBridge",
    "DomainLink",
    "coordination_node_id",
    "ObjectRef",
    "Marshaller",
    "MarshalStats",
    "EncodeCache",
    "PayloadSlot",
    "PayloadTemplate",
    "PreparedInvocation",
    "ValueTypeRegistry",
    "marshal_roundtrip",
    "Transport",
    "SimulatedTransport",
    "TransportStats",
    "FaultPlan",
    "NamingService",
    "RequestInfo",
    "ClientRequestInterceptor",
    "ServerRequestInterceptor",
]
