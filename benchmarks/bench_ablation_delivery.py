"""Ablation — signal delivery guarantees (§3.4).

The paper mandates at-least-once delivery and notes exactly-once "can be
provided by the activity service itself making use of the underlying
transaction service".  This ablation quantifies the trade:

- at-most-once: cheapest, loses signals on a lossy network;
- at-least-once: retries until delivered; receivers see duplicates
  (must be idempotent);
- exactly-once: at-least-once plus a durable delivery ledger — no
  duplicates reach the action, at one stable write per delivery.
"""

import pytest

from repro.core import (
    ActivityManager,
    AtLeastOnceDelivery,
    AtMostOnceDelivery,
    BroadcastSignalSet,
    ExactlyOnceDelivery,
    RecordingAction,
)
from repro.orb import FaultPlan, Orb
from repro.util.rng import SeededRng

POLICIES = {
    "at-most-once": lambda: AtMostOnceDelivery(),
    "at-least-once": lambda: AtLeastOnceDelivery(max_attempts=8),
    "exactly-once": lambda: ExactlyOnceDelivery(max_attempts=8),
}
ROUNDS = 40
DROP = 0.25


def run_policy(policy_name, rounds=ROUNDS, drop=DROP):
    orb = Orb(rng=SeededRng(42))
    node = orb.create_node("remote")
    manager = ActivityManager(clock=orb.clock, delivery=POLICIES[policy_name]())
    manager.install(orb)
    recorder = RecordingAction("r")
    if policy_name == "exactly-once":
        # Exactly-once is a *pair*: the sender ledger suppresses resends
        # across coordinator restarts, and a receiver-side dedup ledger
        # (the transaction-service half of §3.4) absorbs duplicates
        # injected by reply loss on the wire.
        from repro.core import IdempotentAction

        servant = IdempotentAction(recorder)
    else:
        servant = recorder
    ref = node.activate(servant, interface="Action")
    orb.transport.set_fault_plan(FaultPlan(drop_probability=drop))
    activity = manager.begin("ablation")
    activity.add_action("events", ref)
    errors = 0
    for round_number in range(rounds):
        activity.register_signal_set(
            BroadcastSignalSet(f"evt-{round_number}", signal_set_name="events")
        )
        if activity.signal("events").is_error:
            errors += 1
    distinct = len(set(recorder.signal_names))
    duplicates = len(recorder.signal_names) - distinct
    return {
        "delivered_distinct": distinct,
        "duplicates_seen_by_action": duplicates,
        "undelivered": rounds - distinct,
        "broadcast_errors": errors,
        "wire_requests": orb.transport.stats.requests_sent,
    }


class TestDeliveryAblation:
    def test_guarantee_shapes(self, benchmark, emit):
        def scenario_run():
            return {name: run_policy(name) for name in POLICIES}

        results = benchmark.pedantic(scenario_run, rounds=1, iterations=1)
        amo = results["at-most-once"]
        alo = results["at-least-once"]
        exo = results["exactly-once"]
        # Shapes: at-most-once loses signals; the others deliver all.
        assert amo["undelivered"] > 0
        assert alo["undelivered"] == 0
        assert exo["undelivered"] == 0
        # At-least-once may show duplicates at the action; exactly-once not.
        assert exo["duplicates_seen_by_action"] == 0
        # Retrying costs wire traffic.
        assert alo["wire_requests"] > amo["wire_requests"]
        emit(
            "ablation_delivery",
            ["ablation — delivery guarantees "
             f"(drop={DROP}, rounds={ROUNDS}):",
             "  policy          delivered  dups@action  undelivered  wire_reqs"]
            + [
                f"  {name:14s}  {r['delivered_distinct']:9d}  "
                f"{r['duplicates_seen_by_action']:11d}  "
                f"{r['undelivered']:11d}  {r['wire_requests']:9d}"
                for name, r in results.items()
            ],
            data={
                f"{name.replace('-', '_')}_{key}": value
                for name, result in results.items()
                for key, value in result.items()
            },
        )

    @pytest.mark.parametrize("policy", list(POLICIES))
    def test_bench_policy_cost(self, benchmark, policy):
        benchmark(lambda: run_policy(policy, rounds=10, drop=0.1))

    @pytest.mark.parametrize("policy", ["at-least-once", "exactly-once"])
    def test_bench_policy_cost_reliable_network(self, benchmark, policy):
        """On a clean network the ledger write is the whole difference."""
        benchmark(lambda: run_policy(policy, rounds=10, drop=0.0))
