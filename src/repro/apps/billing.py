"""Billing and accounting of resource usage (§2.1(iii)).

"If a service is accessed by a transaction and the user of the service is
to be charged, then the charging information should not be recovered if
the transaction aborts."  The meter therefore records charges *outside*
transaction control: a charge made inside a transaction stays on the
ledger even when that transaction rolls back.

For contrast (and for the tests that pin down the difference), a
transactional balance cell is also kept: refunds/credits applied through
``credit_transactional`` *are* undone by rollback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.exceptions import ReproError
from repro.orb.core import Servant
from repro.orb.marshal import GLOBAL_REGISTRY
from repro.ots.current import TransactionCurrent
from repro.ots.factory import TransactionFactory
from repro.ots.recoverable import RecoverableRegistry, TransactionalCell
from repro.persistence.object_store import ObjectStore


class BillingError(ReproError):
    """Unknown account or invalid amount."""


@GLOBAL_REGISTRY.register_dataclass
@dataclass(frozen=True)
class ChargeRecord:
    client: str
    amount: float
    description: str
    tid: Optional[str] = None  # transaction that incurred the charge, if any


class BillingMeter(Servant):
    """Non-recoverable usage metering plus a transactional balance."""

    def __init__(
        self,
        factory: TransactionFactory,
        current: Optional[TransactionCurrent] = None,
        store: Optional[ObjectStore] = None,
        registry: Optional[RecoverableRegistry] = None,
    ) -> None:
        self.factory = factory
        self.current = current
        self._store = store
        # The ledger is plain stable state, never enlisted in any
        # transaction: rollback cannot touch it.
        self._ledger: List[ChargeRecord] = []
        self._balances = TransactionalCell(
            "billing:balances", {}, factory, store=store, registry=registry
        )

    # -- non-recoverable charging --------------------------------------------------

    def charge(self, client: str, amount: float, description: str = "") -> ChargeRecord:
        """Record a charge immediately and durably (survives rollback)."""
        if amount <= 0:
            raise BillingError(f"charge must be positive, got {amount}")
        tx = self.current.get_transaction() if self.current is not None else None
        record = ChargeRecord(
            client=client,
            amount=amount,
            description=description,
            tid=tx.tid if tx is not None else None,
        )
        self._ledger.append(record)
        if self._store is not None:
            self._store.put(f"billing:ledger:{len(self._ledger):08d}", record)
        return record

    def charges_for(self, client: str) -> List[ChargeRecord]:
        return [record for record in self._ledger if record.client == client]

    def total_charged(self, client: str) -> float:
        return sum(record.amount for record in self.charges_for(client))

    @property
    def ledger_size(self) -> int:
        return len(self._ledger)

    # -- transactional balance (the contrast case) ------------------------------------

    def credit_transactional(self, client: str, amount: float) -> float:
        """Apply a credit under the ambient transaction (undone on abort)."""
        if amount <= 0:
            raise BillingError(f"credit must be positive, got {amount}")
        tx = self.current.get_transaction() if self.current is not None else None
        if tx is not None:
            balances = dict(self._balances.read(tx))
            new_balance = balances.get(client, 0.0) + amount
            balances[client] = new_balance
            self._balances.write(tx, balances)
            return new_balance
        tx = self.factory.create(name="billing:auto")
        try:
            balances = dict(self._balances.read(tx))
            new_balance = balances.get(client, 0.0) + amount
            balances[client] = new_balance
            self._balances.write(tx, balances)
        except BaseException:
            tx.rollback()
            raise
        tx.commit()
        return new_balance

    def balance_of(self, client: str) -> float:
        return self._balances.read().get(client, 0.0)
