"""Replicated persistence: quorum object stores and WAL shipping.

Every durability story so far ends at one ``fsync`` on one medium: a
domain that loses that disk loses its committed cells and — far worse —
its in-doubt coordination state, which peers presume a superior can
always answer (``resolve_in_doubt``).  This module puts N copies behind
the two existing interfaces so losing a disk degrades a domain instead
of erasing it:

- :class:`ReplicatedStore` — an :class:`~repro.persistence.object_store.ObjectStore`
  over a primary + N-1 follower replicas (each any existing store).
  ``put`` / ``put_many`` / ``remove`` acknowledge only once a
  configurable **write quorum** of replicas has durably applied the
  mutation; stragglers are retried under a
  :class:`~repro.util.retry.RetryPolicy` and persistently failing
  replicas are latched DOWN by a
  :class:`~repro.orb.membership.FailureDetector`, after which the store
  keeps serving in *degraded mode* (as long as a quorum remains) with an
  explicit ``under_replicated`` health surface.  A write that misses
  the quorum is rolled back out of the journal and off the minority
  that applied it, so unacknowledged data is never observable.  Every
  mutation gets a monotone version; a bounded op journal replays missed
  versions into a readmitted replica, falling back to a full snapshot
  re-sync when the journal no longer reaches back far enough (or after
  a wipe).

- :class:`ReplicatedWAL` — a :class:`~repro.persistence.wal.GroupCommitWAL`
  on the primary medium that ships every force's batch to follower
  logs, one shipped batch per force, keeping the primary's LSNs.  A
  restarted or readmitted follower re-syncs through the
  sequence-numbered catch-up protocol
  (:meth:`~repro.persistence.wal.WriteAheadLog.apply_shipped` rejects
  gaps; the primary then ships the missing tail, or a store-level
  snapshot when truncation has outrun the follower) *before* it counts
  toward the quorum again.

Both layers share one **deterministic promotion path**: construction
elects the medium holding the newest durable state (highest persisted
version / highest ``durable_upto``, ties broken by replica order), and
:meth:`promote` re-runs the same election over the surviving replicas
when the primary's disk is lost — because acked state reached a write
quorum, the newest surviving replica is guaranteed to contain every
acknowledged write whenever a quorum survives the failure.

:class:`ReplicaMedium` wraps any backing store as a pluggable "disk"
with ``fail()`` / ``heal()`` / ``wipe()`` hooks; the chaos engine's
``replica_loss`` and ``disk_wipe`` fault kinds drive exactly these.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import InvalidStateError
from repro.orb.membership import (
    FailureDetector,
    FailureDetectorConfig,
    PeerState,
)
from repro.persistence.object_store import (
    BatchItems,
    MemoryStore,
    ObjectStore,
    StoreError,
)
from repro.persistence.wal import (
    DEFAULT_GROUP_COMMIT_WINDOW,
    DEFAULT_SEGMENT_SIZE,
    GroupCommitWAL,
    LogRecord,
    ShippedGapError,
    WriteAheadLog,
)
from repro.util.clock import WallClock
from repro.util.retry import RetryPolicy

#: Version marker persisted inside each replica of a ReplicatedStore so
#: a reboot (or promotion) can elect the newest copy without trusting
#: any process memory.  Hidden from keys()/items()/len().
META_KEY = "__replication__"

#: Sentinel for "this key did not exist" in a captured pre-image, so a
#: failed-quorum write can be rolled back to a state where the key is
#: absent (None is a legitimate stored value).
_MISSING = object()


class ReplicationError(StoreError):
    """A replicated operation could not reach its safety contract
    (write quorum not met, acked state unreachable, catch-up failed)."""


def default_replica_detector_config() -> FailureDetectorConfig:
    """Detector defaults tuned for storage replicas, not network peers.

    One explicit failure latches DOWN: a replica write already carries
    its own straggler retry, so a surviving error is strong evidence —
    and phi never latches, because replicas are only heartbeated by
    write traffic (an idle store is silent because it is idle).
    """
    return FailureDetectorConfig(
        heartbeat_interval=1.0,
        probe_interval=1.0,
        failure_threshold=1,
        phi_latches_down=False,
    )


def default_replica_retry() -> RetryPolicy:
    """One immediate straggler retry per replica per operation: a
    transient error gets a second chance inside the same acknowledged
    write, without ever sleeping on the quorum path."""
    return RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0, jitter=0.0)


class ReplicaMedium(ObjectStore):
    """One pluggable "disk": a backing store that can fail, heal, wipe.

    The replicated layers treat any raised :class:`ReplicationError` as
    *medium* failure (retry, mark DOWN) while a plain
    :class:`StoreError` from a healthy medium keeps its usual meaning
    (missing key).  ``wipe()`` swaps in a fresh empty backing store —
    the disk was replaced; whatever it held is gone — after which the
    owning replicated store/WAL must be told via ``note_wiped`` so the
    replica is re-seeded instead of trusted.
    """

    def __init__(
        self,
        name: str,
        backing: ObjectStore,
        fresh: Optional[Callable[[], ObjectStore]] = None,
    ) -> None:
        self.name = name
        self._backing = backing
        self._fresh = fresh if fresh is not None else MemoryStore
        self.failed = False
        self.wipes = 0

    @property
    def backing(self) -> ObjectStore:
        return self._backing

    def fail(self) -> None:
        """The disk stops answering (pulled cable, dead controller)."""
        self.failed = True

    def heal(self) -> None:
        self.failed = False

    def wipe(self) -> None:
        """Replace the disk with an empty one; the old contents are lost."""
        self._backing = self._fresh()
        self.failed = False
        self.wipes += 1

    def _check(self) -> None:
        if self.failed:
            raise ReplicationError(f"replica medium {self.name!r} is failed")

    # -- ObjectStore delegation -----------------------------------------------

    def put(self, uid: str, state: Any) -> None:
        self._check()
        self._backing.put(uid, state)

    def put_many(self, items: BatchItems) -> None:
        self._check()
        self._backing.put_many(items)

    def get(self, uid: str) -> Any:
        self._check()
        return self._backing.get(uid)

    def remove(self, uid: str) -> None:
        self._check()
        self._backing.remove(uid)

    def contains(self, uid: str) -> bool:
        self._check()
        return self._backing.contains(uid)

    def keys(self) -> Tuple[str, ...]:
        self._check()
        return self._backing.keys()


class _Replica:
    """Book-keeping for one member of a :class:`ReplicatedStore`."""

    __slots__ = ("index", "name", "store", "applied", "resync")

    def __init__(self, index: int, name: str, store: ObjectStore) -> None:
        self.index = index
        self.name = name
        self.store = store
        self.applied = 0  # highest version durably applied on this replica
        self.resync = False  # contents untrusted; full snapshot required


def _replica_name(index: int, store: ObjectStore) -> str:
    name = getattr(store, "name", None)
    return name if isinstance(name, str) and name else f"replica-{index}"


class ReplicatedStore(ObjectStore):
    """Primary + N-1 followers behind the :class:`ObjectStore` interface.

    Mutations apply to every live replica in declaration order and
    acknowledge once ``write_quorum`` replicas hold the new version
    durably; anything less raises :class:`ReplicationError` and the
    write is *rolled back* — un-journaled and reverted on the minority
    that applied it (a replica whose pre-image cannot be restored is
    distrusted and re-seeded) — so an unacknowledged write is never
    observable through reads, catch-up replay, or promotion.  Reads are
    served from the newest live replica holding at least the acked
    version, preferring the elected primary, so the store always reads
    its acknowledged writes while any quorum survives.
    """

    def __init__(
        self,
        replicas: Sequence[ObjectStore],
        write_quorum: Optional[int] = None,
        clock: Optional[Any] = None,
        retry: Optional[RetryPolicy] = None,
        detector_config: Optional[FailureDetectorConfig] = None,
        journal_limit: int = 512,
    ) -> None:
        stores = list(replicas)
        if not stores:
            raise ReplicationError("ReplicatedStore needs at least one replica")
        quorum = (len(stores) // 2) + 1 if write_quorum is None else write_quorum
        if not 1 <= quorum <= len(stores):
            raise ReplicationError(
                f"write_quorum {quorum} out of range for {len(stores)} replicas"
            )
        if journal_limit < 1:
            raise ReplicationError("journal_limit must be >= 1")
        self._write_quorum = quorum
        self._clock = clock if clock is not None else WallClock()
        self._retry = retry if retry is not None else default_replica_retry()
        self._detector = FailureDetector(
            self._clock,
            detector_config
            if detector_config is not None
            else default_replica_detector_config(),
        )
        self._lock = threading.RLock()
        self._journal: Deque[Tuple[int, str, Any]] = deque()
        self._journal_limit = journal_limit
        self._under_since: Optional[float] = None
        self.catch_ups = 0
        self.full_resyncs = 0
        self.quorum_failures = 0
        self.promotions = 0
        self._replicas = [
            _Replica(i, _replica_name(i, store), store)
            for i, store in enumerate(stores)
        ]
        unversioned: List[_Replica] = []
        for replica in self._replicas:
            self._detector.watch(replica.name)
            try:
                meta = replica.store.get_or(META_KEY)
                populated = meta is None and any(
                    uid != META_KEY for uid in replica.store.keys()
                )
            except Exception:
                replica.resync = True
                self._detector.failure(replica.name)
            else:
                replica.applied = int(meta["version"]) if meta else 0
                if populated:
                    unversioned.append(replica)
        if unversioned:
            self._adopt_unversioned(unversioned)
        # Election: the newest durable copy becomes the read primary;
        # ties break toward the declared order.  This is the same rule
        # promote() applies after a primary loss, which is what makes
        # reboot-after-disk-loss and live promotion converge.
        self._version = max(r.applied for r in self._replicas)
        self._acked_version = self._version
        self._primary = self._elect_locked().index
        for replica in self._replicas:
            if replica.applied < self._version or replica.resync:
                try:
                    self._catch_up_replica_locked(replica, self._version)
                except Exception:
                    self._detector.failure(replica.name)
        self._refresh_health_locked()

    def _adopt_unversioned(self, unversioned: List[_Replica]) -> None:
        """Place replicas holding data but no version marker.

        Wrapping a pre-existing single-copy store is the legitimate
        case: with no versioned replica anywhere, the first populated
        one is adopted as the seed at version 1, so empty followers
        (version 0) read as *behind* it and get re-seeded instead of
        counting as in-sync — otherwise the first primary loss would
        promote an empty-but-"current" follower and every pre-existing
        key would vanish.  When versioned copies do exist, unversioned
        content has no place in the version order and is distrusted.
        """
        if any(r.applied > 0 for r in self._replicas):
            for replica in unversioned:
                replica.resync = True
            return
        seed: Optional[_Replica] = None
        for replica in unversioned:
            if seed is None:
                try:
                    replica.store.put(META_KEY, {"version": 1})
                except Exception:
                    replica.resync = True
                    self._detector.failure(replica.name)
                    continue
                replica.applied = 1
                seed = replica
            else:
                # A second marker-less populated disk may hold anything;
                # only one adopted lineage can win.
                replica.resync = True

    # -- membership helpers ---------------------------------------------------

    def _down_locked(self, replica: _Replica) -> bool:
        return self._detector.state(replica.name) is PeerState.DOWN

    def _skip_locked(self, replica: _Replica) -> bool:
        """Skip a DOWN replica unless its half-open probe is due."""
        if not self._down_locked(replica):
            return False
        return not self._detector.should_probe(replica.name)

    def _elect_locked(self) -> _Replica:
        live = [r for r in self._replicas if not self._down_locked(r) and not r.resync]
        candidates = live if live else list(self._replicas)
        return max(candidates, key=lambda r: (r.applied, -r.index))

    # -- mutation path --------------------------------------------------------

    def put(self, uid: str, state: Any) -> None:
        self.put_many({uid: state})

    def put_many(self, items: BatchItems) -> None:
        batch = dict(items)
        if not batch:
            return
        if META_KEY in batch:
            raise StoreError(f"{META_KEY!r} is reserved for replication metadata")
        self._mutate("put_many", batch)

    def remove(self, uid: str) -> None:
        with self._lock:
            if not self.contains(uid):
                raise StoreError(f"no state stored under {uid!r}")
            self._mutate("remove", uid)

    def _mutate(self, kind: str, payload: Any) -> None:
        with self._lock:
            # Pre-image of the touched keys, captured before the first
            # replica applies: once a replica holds the new version the
            # old values exist nowhere reachable if the rest of the
            # quorum dies mid-write, and the rollback path needs them.
            prior = self._capture_prior_locked(kind, payload, self._version)
            self._version += 1
            version = self._version
            self._journal.append((version, kind, payload))
            while len(self._journal) > self._journal_limit:
                self._journal.popleft()
            acked: List[_Replica] = []
            for replica in self._replicas:
                if self._skip_locked(replica):
                    continue
                try:
                    self._retry.call(
                        lambda r=replica: self._apply_locked(r, version, kind, payload),
                        retry_on=(Exception,),
                        sleep=self._clock.sleep,
                        now=self._clock.now,
                    )
                except Exception:
                    self._detector.failure(replica.name)
                else:
                    replica.applied = version
                    self._detector.heartbeat(replica.name)
                    acked.append(replica)
            if len(acked) >= self._write_quorum:
                self._acked_version = version
                self._refresh_health_locked()
                return
            self.quorum_failures += 1
            self._rollback_locked(version, prior, acked)
            self._refresh_health_locked()
            raise ReplicationError(
                f"write v{version} acked by {len(acked)}/{len(self._replicas)} "
                f"replicas ({[r.name for r in acked]}) and was rolled back; "
                f"write_quorum={self._write_quorum}"
            )

    def _capture_prior_locked(
        self, kind: str, payload: Any, at_version: int
    ) -> Optional[Dict[str, Any]]:
        """Pre-image of the keys this op touches, read from a replica
        fully current at ``at_version`` (missing keys map to
        ``_MISSING``) — what a failed-quorum write needs to roll itself
        back out.  ``None`` when no current replica answers."""
        keys = list(payload) if kind == "put_many" else [payload]
        candidates = sorted(
            (
                r
                for r in self._replicas
                if not r.resync and r.applied == at_version
            ),
            key=lambda r: (r.index != self._primary, r.index),
        )
        for replica in candidates:
            try:
                return {
                    uid: (
                        replica.store.get(uid)
                        if replica.store.contains(uid)
                        else _MISSING
                    )
                    for uid in keys
                }
            except Exception:
                continue
        return None

    def _rollback_locked(
        self,
        version: int,
        prior: Optional[Dict[str, Any]],
        acked: List[_Replica],
    ) -> None:
        """Roll a failed-quorum write back out so it is never
        observable: un-journal it, retract the version, and restore the
        pre-image on the minority that applied it.  A replica whose
        pre-image cannot be restored is distrusted (full re-sync) rather
        than left holding a write that was never acknowledged."""
        if self._journal and self._journal[-1][0] == version:
            self._journal.pop()
        self._version = version - 1
        for replica in acked:
            try:
                if prior is None:
                    raise ReplicationError("no pre-image captured")
                restore: Dict[str, Any] = {
                    uid: value
                    for uid, value in prior.items()
                    if value is not _MISSING
                }
                for uid, value in prior.items():
                    if value is _MISSING and replica.store.contains(uid):
                        replica.store.remove(uid)
                restore[META_KEY] = {"version": version - 1}
                replica.store.put_many(restore)
            except Exception:
                replica.applied = 0
                replica.resync = True
                self._detector.failure(replica.name)
            else:
                replica.applied = version - 1

    def _apply_locked(
        self, replica: _Replica, version: int, kind: str, payload: Any
    ) -> None:
        if replica.resync or replica.applied < version - 1:
            # A lagging or readmitted replica re-syncs *before* this
            # write can count it toward the quorum.
            self._catch_up_replica_locked(replica, version - 1)
        self._apply_op(replica.store, kind, payload, version)

    @staticmethod
    def _apply_op(store: ObjectStore, kind: str, payload: Any, version: int) -> None:
        if kind == "put_many":
            batch = dict(payload)
            batch[META_KEY] = {"version": version}
            store.put_many(batch)
        elif kind == "remove":
            try:
                store.remove(payload)
            except ReplicationError:
                raise  # medium failure, not a missing key
            except StoreError:
                pass  # replay over a snapshot that already lacks the key
            store.put(META_KEY, {"version": version})
        else:  # pragma: no cover - journal is written by this class only
            raise ReplicationError(f"unknown journal op {kind!r}")

    # -- catch-up -------------------------------------------------------------

    def _journal_covers_locked(self, applied: int) -> bool:
        needed_from = applied + 1
        if needed_from > self._version:
            return True  # nothing missing
        return bool(self._journal) and self._journal[0][0] <= needed_from

    def _catch_up_replica_locked(self, replica: _Replica, upto: int) -> None:
        if replica.resync or not self._journal_covers_locked(replica.applied):
            self._full_resync_locked(replica, upto)
            if replica.applied < upto and not self._journal_covers_locked(
                replica.applied
            ):
                # Backstop (source eligibility should make this
                # unreachable): replaying the journal over a gap would
                # silently skip the versions between the snapshot and
                # the journal's oldest entry.
                raise ReplicationError(
                    f"journal cannot bridge replica {replica.name!r} "
                    f"from v{replica.applied} to v{upto}"
                )
        for version, kind, payload in list(self._journal):
            if version <= replica.applied or version > upto:
                continue
            self._apply_op(replica.store, kind, payload, version)
            replica.applied = version
        if replica.applied < upto:
            raise ReplicationError(
                f"replica {replica.name!r} caught up to v{replica.applied}, "
                f"needed v{upto}"
            )
        self.catch_ups += 1

    def _full_resync_locked(self, replica: _Replica, upto: int) -> None:
        """Re-seed ``replica`` from the newest other live copy.

        A source is only eligible when its snapshot can be extended to
        ``upto``: either it already holds everything needed, or the op
        journal reaches back to its version.  A live-but-stale source
        below the journal window must never seed a catch-up — replaying
        the journal over the gap would skip mutations silently, then
        report the replica in sync."""
        sources = [
            r
            for r in self._replicas
            if r is not replica
            and not r.resync
            and not self._down_locked(r)
            and (r.applied >= upto or self._journal_covers_locked(r.applied))
        ]
        if not sources:
            raise ReplicationError(
                f"no live source can re-sync replica {replica.name!r} "
                f"to v{upto} without skipping journaled versions"
            )
        source = max(sources, key=lambda r: (r.applied, -r.index))
        snapshot = {
            uid: source.store.get(uid)
            for uid in source.store.keys()
            if uid != META_KEY
        }
        for uid in replica.store.keys():
            if uid != META_KEY and uid not in snapshot:
                replica.store.remove(uid)
        snapshot[META_KEY] = {"version": source.applied}
        replica.store.put_many(snapshot)
        replica.applied = source.applied
        replica.resync = False
        self.full_resyncs += 1

    def catch_up(self) -> int:
        """Opportunistically re-sync every reachable lagging replica;
        returns how many replicas were brought back in sync.  This is
        the maintenance entry point (site serve loop, chaos repair
        rounds) — quorum writes also catch up inline, but only touch
        replicas the current op happens to probe."""
        repaired = 0
        with self._lock:
            for replica in self._replicas:
                in_sync = (
                    replica.applied >= self._version and not replica.resync
                )
                if in_sync and not self._down_locked(replica):
                    continue
                if self._skip_locked(replica):
                    continue
                try:
                    if in_sync:
                        # DOWN but holding everything: a healed medium
                        # only needs a contact probe to be readmitted.
                        # Without this, an idle in-sync replica latches
                        # DOWN forever and can never serve as a re-sync
                        # source for its lagging peers.
                        replica.store.contains(META_KEY)
                    else:
                        self._catch_up_replica_locked(replica, self._version)
                except Exception:
                    self._detector.failure(replica.name)
                else:
                    self._detector.heartbeat(replica.name)
                    repaired += 1
            self._refresh_health_locked()
        return repaired

    # -- read path ------------------------------------------------------------

    def _read_candidates_locked(self) -> List[_Replica]:
        live = [
            r
            for r in self._replicas
            if not r.resync
            and not self._down_locked(r)
            and r.applied >= self._acked_version
        ]
        if not live:
            raise ReplicationError(
                f"acked state (v{self._acked_version}) unreachable: "
                f"no live in-sync replica"
            )
        # Newest first, primary breaking ties, then declaration order.
        primary = self._primary
        return sorted(
            live, key=lambda r: (-r.applied, r.index != primary, r.index)
        )

    def _read(self, op: Callable[[_Replica], Any]) -> Any:
        with self._lock:
            last: Optional[BaseException] = None
            for replica in self._read_candidates_locked():
                try:
                    return op(replica)
                except ReplicationError as exc:
                    # Medium failure (not a missing key): strike it and
                    # fall through to the next candidate.
                    self._detector.failure(replica.name)
                    last = exc
            raise ReplicationError(
                "every in-sync replica failed the read"
            ) from last

    def get(self, uid: str) -> Any:
        if uid == META_KEY:
            # Hidden consistently with contains()/keys(): the reserved
            # metadata key reads as absent, never as its internal value.
            raise StoreError(f"no state stored under {uid!r}")
        return self._read(lambda r: r.store.get(uid))

    def contains(self, uid: str) -> bool:
        if uid == META_KEY:
            return False
        return self._read(lambda r: r.store.contains(uid))

    def keys(self) -> Tuple[str, ...]:
        listing = self._read(lambda r: r.store.keys())
        return tuple(uid for uid in listing if uid != META_KEY)

    # -- promotion ------------------------------------------------------------

    def note_wiped(self, index: int) -> None:
        """The medium at ``index`` was wiped/replaced; distrust its
        contents and, if it was the primary, promote a survivor."""
        with self._lock:
            replica = self._replicas[index]
            replica.applied = 0
            replica.resync = True
            if index == self._primary:
                self.promote()
            self._refresh_health_locked()

    def promote(self) -> str:
        """Deterministically re-elect the newest surviving replica as
        primary and re-seed the others from it.  Raises
        :class:`ReplicationError` when the election would lose
        acknowledged writes — i.e. when no surviving quorum exists."""
        with self._lock:
            best = self._elect_locked()
            if best.resync or best.applied < self._acked_version:
                raise ReplicationError(
                    f"promotion would lose acked writes: best survivor "
                    f"{best.name!r} at v{best.applied}, acked v{self._acked_version}"
                )
            self._primary = best.index
            self._version = max(self._version, best.applied)
            self.promotions += 1
            for replica in self._replicas:
                if replica is best or self._skip_locked(replica):
                    continue
                if replica.applied >= best.applied and not replica.resync:
                    continue
                try:
                    self._catch_up_replica_locked(replica, best.applied)
                except Exception:
                    self._detector.failure(replica.name)
                else:
                    self._detector.heartbeat(replica.name)
            self._refresh_health_locked()
            return best.name

    # -- health ---------------------------------------------------------------

    def _refresh_health_locked(self) -> None:
        degraded = any(
            self._down_locked(r) or r.resync or r.applied < self._acked_version
            for r in self._replicas
        )
        if degraded and self._under_since is None:
            self._under_since = self._clock.now()
        elif not degraded:
            self._under_since = None

    @property
    def write_quorum(self) -> int:
        return self._write_quorum

    @property
    def primary_name(self) -> str:
        with self._lock:
            return self._replicas[self._primary].name

    @property
    def primary_index(self) -> int:
        with self._lock:
            return self._primary

    def quorum_ok(self) -> bool:
        with self._lock:
            live = sum(
                1
                for r in self._replicas
                if not self._down_locked(r)
                and not r.resync
                and r.applied >= self._acked_version
            )
            return live >= self._write_quorum

    def health(self) -> Dict[str, Any]:
        """The ``under_replicated`` surface operators (and the chaos
        auditor) gate on: per-replica lag, quorum status, and how long
        the store has been running degraded."""
        with self._lock:
            now = self._clock.now()
            self._refresh_health_locked()
            replicas = {
                r.name: {
                    "state": self._detector.state(r.name).value,
                    "applied": r.applied,
                    "lag": self._version - r.applied,
                    "resync_required": r.resync,
                    "primary": r.index == self._primary,
                }
                for r in self._replicas
            }
            return {
                "replicas": replicas,
                "version": self._version,
                "acked_version": self._acked_version,
                "write_quorum": self._write_quorum,
                "quorum_ok": self.quorum_ok(),
                "under_replicated": self._under_since is not None,
                "under_replicated_age": (
                    round(now - self._under_since, 6)
                    if self._under_since is not None
                    else None
                ),
                "counters": {
                    "catch_ups": self.catch_ups,
                    "full_resyncs": self.full_resyncs,
                    "quorum_failures": self.quorum_failures,
                    "promotions": self.promotions,
                },
            }


class _Follower:
    """Book-keeping for one follower log of a :class:`ReplicatedWAL`."""

    __slots__ = ("index", "name", "medium", "log", "resync")

    def __init__(
        self,
        index: int,
        name: str,
        medium: ObjectStore,
        log: Optional[WriteAheadLog],
        resync: bool = False,
    ) -> None:
        self.index = index
        self.name = name
        self.medium = medium
        self.log = log
        self.resync = resync


class ReplicatedWAL(GroupCommitWAL):
    """Group-commit WAL whose every force ships to follower logs.

    The primary medium hosts a normal :class:`GroupCommitWAL`; each
    force's batch is then shipped — one batch per force, primary LSNs
    preserved — to a :class:`WriteAheadLog` on every follower medium.
    ``append`` keeps the append-means-durable contract *at quorum
    strength*: it returns only when the batch is durable on at least
    ``write_quorum`` media, and raises :class:`ReplicationError`
    otherwise (the record is then durable on the primary but was never
    acknowledged as quorum-replicated).

    Construction elects the medium with the highest ``durable_upto`` as
    primary (ties break toward declaration order) and catches the rest
    up, which makes reopening after losing the primary's disk the same
    code path as :meth:`promote`.
    """

    def __init__(
        self,
        media: Sequence[ObjectStore],
        name: str = "wal",
        segment_size: int = DEFAULT_SEGMENT_SIZE,
        window: float = DEFAULT_GROUP_COMMIT_WINDOW,
        sleep: Optional[Callable[[float], None]] = None,
        write_quorum: Optional[int] = None,
        clock: Optional[Any] = None,
        retry: Optional[RetryPolicy] = None,
        detector_config: Optional[FailureDetectorConfig] = None,
        primary_index: Optional[int] = None,
    ) -> None:
        media = list(media)
        if not media:
            raise ReplicationError("ReplicatedWAL needs at least one medium")
        quorum = (len(media) // 2) + 1 if write_quorum is None else write_quorum
        if not 1 <= quorum <= len(media):
            raise ReplicationError(
                f"write_quorum {quorum} out of range for {len(media)} media"
            )
        self._media = media
        self._write_quorum = quorum
        self._clock = clock if clock is not None else WallClock()
        self._retry = retry if retry is not None else default_replica_retry()
        self._detector = FailureDetector(
            self._clock,
            detector_config
            if detector_config is not None
            else default_replica_detector_config(),
        )
        self.shipped_batches = 0
        self.shipped_records = 0
        self.catch_ups = 0
        self.full_resyncs = 0
        self.quorum_failures = 0
        self.promotions = 0
        self._under_since: Optional[float] = None

        probed: Dict[int, Optional[WriteAheadLog]] = {}
        if primary_index is None:
            best_index, best_upto = 0, -1
            for index, medium in enumerate(media):
                try:
                    log = WriteAheadLog(medium, name, segment_size)
                except Exception:
                    log = None
                probed[index] = log
                if log is not None and log.durable_upto > best_upto:
                    best_index, best_upto = index, log.durable_upto
            primary_index = best_index
        if not 0 <= primary_index < len(media):
            raise ReplicationError(f"primary_index {primary_index} out of range")
        self._primary_index = primary_index
        super().__init__(
            media[primary_index],
            name,
            segment_size,
            window,
            sleep if sleep is not None else time.sleep,
        )
        self._followers: List[_Follower] = []
        for index, medium in enumerate(media):
            if index == primary_index:
                continue
            follower = _Follower(
                index, _replica_name(index, medium), medium, probed.get(index)
            )
            self._followers.append(follower)
            self._detector.watch(follower.name)
            if follower.log is None and index in probed:
                follower.resync = True
                self._strike_follower_locked(follower)
        with self._lock:
            self._quorum_upto = self._durable_upto
            for follower in self._followers:
                if self._skip_follower_locked(follower):
                    continue
                try:
                    self._catch_up_follower_locked(follower)
                except Exception:
                    self._strike_follower_locked(follower)
            self._refresh_health_locked()

    # -- membership helpers ---------------------------------------------------

    def _skip_follower_locked(self, follower: _Follower) -> bool:
        if self._detector.state(follower.name) is not PeerState.DOWN:
            return False
        return not self._detector.should_probe(follower.name)

    def _strike_follower_locked(self, follower: _Follower) -> None:
        """A ship/catch-up against ``follower`` failed: mark it DOWN and
        drop the in-memory log handle.  A failure can leave the handle's
        volatile bookkeeping ahead of the medium (the store write is
        atomic, the Python-side segment list is not), so the next
        contact reopens the log from the medium's durable state."""
        self._detector.failure(follower.name)
        follower.log = None

    def _ensure_log_locked(self, follower: _Follower) -> WriteAheadLog:
        if follower.log is None:
            follower.log = WriteAheadLog(
                follower.medium, self._name, self._segment_size
            )
        return follower.log

    # -- shipping -------------------------------------------------------------

    def _force_locked(self) -> None:
        batch = [
            LogRecord(lsn=record.lsn, kind=record.kind, payload=record.payload)
            for record in self._volatile
        ]
        if not batch:
            return
        super()._force_locked()  # primary durable first
        acks = 1  # the primary
        for follower in self._followers:
            if self._skip_follower_locked(follower):
                continue
            try:
                self._retry.call(
                    lambda f=follower: self._ship_locked(f, batch),
                    retry_on=(Exception,),
                    sleep=self._clock.sleep,
                    now=self._clock.now,
                )
            except Exception:
                self._strike_follower_locked(follower)
            else:
                self._detector.heartbeat(follower.name)
                acks += 1
        self.shipped_batches += 1
        self.shipped_records += len(batch)
        self._refresh_health_locked()
        if acks >= self._write_quorum:
            self._quorum_upto = batch[-1].lsn
        else:
            self.quorum_failures += 1
            raise ReplicationError(
                f"force through lsn {batch[-1].lsn} durable on {acks}/"
                f"{len(self._media)} media; write_quorum={self._write_quorum}"
            )

    def _ship_locked(self, follower: _Follower, batch: List[LogRecord]) -> None:
        log = self._ensure_log_locked(follower)
        if not follower.resync and log.durable_upto >= batch[-1].lsn:
            return  # straggler retry after a partial failure: already landed
        if follower.resync or log.durable_upto != batch[0].lsn - 1:
            # The follower lags (or is untrusted): the catch-up protocol
            # ships *everything* it is missing, this batch included — a
            # bare apply of just this batch onto a lagging log would
            # either gap out or, on an empty log, silently skip the
            # records the primary still retains before the batch.
            self._catch_up_follower_locked(follower)
            return
        try:
            log.apply_shipped(batch)
        except ShippedGapError:
            self._catch_up_follower_locked(follower)

    def _catch_up_follower_locked(self, follower: _Follower) -> None:
        """Sequence-numbered catch-up: ship the missing LSN tail from
        the primary's retained records; fall back to a snapshot re-sync
        when the follower is untrusted, diverged, or truncation has
        dropped records it still needs."""
        log = self._ensure_log_locked(follower)
        if follower.resync or log.durable_upto > self._durable_upto:
            log = self._resync_follower_locked(follower)
        retained = self._records_locked()
        pending = [record for record in retained if record.lsn > log.durable_upto]
        if pending:
            try:
                log.apply_shipped(pending)
            except ShippedGapError:
                # Truncation outran this follower; its log can no longer
                # be extended contiguously — re-seed it wholesale.
                log = self._resync_follower_locked(follower)
                remaining = [
                    record for record in retained if record.lsn > log.durable_upto
                ]
                if remaining:
                    log.apply_shipped(remaining)
        # Target is the retained tail, not _durable_upto: a fully
        # truncated log keeps its watermark but holds no records a
        # follower could (or need) catch up to.
        target = retained[-1].lsn if retained else 0
        if log.durable_upto < target:
            raise ReplicationError(
                f"follower {follower.name!r} caught up to lsn "
                f"{log.durable_upto}, primary retains through {target}"
            )
        self.catch_ups += 1

    def _resync_follower_locked(self, follower: _Follower) -> WriteAheadLog:
        """Copy the primary's on-store log image onto the follower."""
        prefix = f"{self._name}:"
        snapshot = {
            uid: self._store.get(uid)
            for uid in self._store.keys()
            if uid.startswith(prefix)
        }
        try:
            for uid in follower.medium.keys():
                if uid.startswith(prefix) and uid not in snapshot:
                    follower.medium.remove(uid)
            if snapshot:
                follower.medium.put_many(snapshot)
        except Exception:
            follower.log = None
            raise
        follower.log = WriteAheadLog(
            follower.medium, self._name, self._segment_size
        )
        follower.resync = False
        self.full_resyncs += 1
        return follower.log

    # -- quorum-strength append ----------------------------------------------

    def append(self, kind: str, **payload: Any) -> LogRecord:
        record = super().append(kind, **payload)
        with self._lock:
            if self._quorum_upto < record.lsn:
                raise ReplicationError(
                    f"record {record.lsn} durable on the primary but not "
                    f"on a write quorum"
                )
        return record

    def _truncate_locked(self, up_to_lsn: int) -> int:
        dropped = super()._truncate_locked(up_to_lsn)
        for follower in self._followers:
            if follower.log is None or self._skip_follower_locked(follower):
                continue
            try:
                follower.log.truncate(up_to_lsn)
            except Exception:
                self._strike_follower_locked(follower)
        return dropped

    # -- catch-up / promotion maintenance -------------------------------------

    def catch_up(self) -> int:
        """Re-sync every reachable lagging follower; returns how many
        were brought back to the primary's ``durable_upto``."""
        repaired = 0
        with self._lock:
            for follower in self._followers:
                if self._skip_follower_locked(follower):
                    continue
                log = follower.log
                if (
                    log is not None
                    and not follower.resync
                    and log.durable_upto == self._durable_upto
                ):
                    continue
                try:
                    self._catch_up_follower_locked(follower)
                except Exception:
                    self._strike_follower_locked(follower)
                else:
                    self._detector.heartbeat(follower.name)
                    repaired += 1
            self._refresh_health_locked()
        return repaired

    def note_wiped(self, index: int) -> None:
        """The medium at ``index`` was wiped; re-seed it (follower) or
        promote the newest surviving follower (primary)."""
        with self._lock:
            if index == self._primary_index:
                self.promote()
                return
            for follower in self._followers:
                if follower.index == index:
                    follower.log = None
                    follower.resync = True
            self._refresh_health_locked()

    def failover_if_primary_down(self) -> Optional[str]:
        """Maintenance probe for the serve loop: when the primary medium
        stops answering, promote the newest surviving follower so the
        WAL degrades instead of wedging — with a dead primary every
        force raises, the volatile tail can never drain, and nothing
        else in the runtime would ever re-root the log.  Returns the
        promoted medium's name, or ``None`` when the primary answers."""
        with self._lock:
            try:
                self._store.contains(self._head_key())
            except Exception:
                return self.promote()
            return None

    def promote(self) -> str:
        """Re-root the log on the newest surviving follower medium.

        The old primary medium is demoted to a follower needing a full
        re-sync (its contents are no longer trusted).  Deterministic:
        highest ``durable_upto`` wins, declaration order breaks ties.

        An unforced tail is drained through a normal quorum force first
        (planned promotion over a healthy primary loses nothing); when
        that force cannot complete — the unplanned-primary-loss case —
        the tail is dropped exactly as the primary's crash dropped it:
        none of those records were ever acknowledged (``append`` returns
        only after quorum), and parked group-commit appenders are woken
        so they observe the loss instead of waiting forever."""
        with self._lock:
            if self._volatile:
                try:
                    self._force_locked()
                except Exception:
                    self._volatile.clear()
                    self._flushed.notify_all()
            best: Optional[_Follower] = None
            best_upto = -1
            for follower in self._followers:
                if self._detector.state(follower.name) is PeerState.DOWN:
                    continue
                if follower.resync:
                    continue
                try:
                    log = self._ensure_log_locked(follower)
                except Exception:
                    self._strike_follower_locked(follower)
                    continue
                if log.durable_upto > best_upto:
                    best, best_upto = follower, log.durable_upto
            if best is None:
                raise ReplicationError("no live follower to promote")
            if best_upto < self._quorum_upto:
                raise ReplicationError(
                    f"promotion would lose acked records: best survivor "
                    f"at lsn {best_upto}, quorum acked through {self._quorum_upto}"
                )
            old_index = self._primary_index
            old_medium = self._store
            old_name = _replica_name(old_index, old_medium)
            # Re-root the inherited WAL state on the promoted medium.
            self._store = best.medium
            self._roster = []
            self._segments = {}
            self._next_seg = 1
            self._next_lsn = 1
            self._durable_upto = 0
            self._volatile = []
            self._open()
            self._primary_index = best.index
            self._quorum_upto = self._durable_upto
            self._followers = [f for f in self._followers if f is not best]
            demoted = _Follower(old_index, old_name, old_medium, None, resync=True)
            self._followers.append(demoted)
            self._followers.sort(key=lambda f: f.index)
            self._detector.watch(demoted.name)
            self.promotions += 1
            for follower in self._followers:
                if self._skip_follower_locked(follower):
                    continue
                try:
                    self._catch_up_follower_locked(follower)
                except Exception:
                    self._strike_follower_locked(follower)
            self._refresh_health_locked()
            return best.name

    def reopen(self) -> "ReplicatedWAL":
        with self._lock:
            if self._volatile:
                raise InvalidStateError("reopen with unforced records; crash() first")
        return ReplicatedWAL(
            self._media,
            self._name,
            segment_size=self._segment_size,
            window=self.window,
            sleep=self._sleep,
            write_quorum=self._write_quorum,
            clock=self._clock,
            retry=self._retry,
            detector_config=self._detector.config,
        )

    # -- health ---------------------------------------------------------------

    def _refresh_health_locked(self) -> None:
        degraded = any(
            self._detector.state(f.name) is PeerState.DOWN
            or f.resync
            or f.log is None
            or f.log.durable_upto < self._durable_upto
            for f in self._followers
        )
        if degraded and self._under_since is None:
            self._under_since = self._clock.now()
        elif not degraded:
            self._under_since = None

    @property
    def write_quorum(self) -> int:
        return self._write_quorum

    @property
    def primary_index(self) -> int:
        return self._primary_index

    def quorum_ok(self) -> bool:
        with self._lock:
            live = 1 + sum(
                1
                for f in self._followers
                if self._detector.state(f.name) is not PeerState.DOWN
                and not f.resync
                and f.log is not None
                and f.log.durable_upto >= self._quorum_upto
            )
            return live >= self._write_quorum

    def health(self) -> Dict[str, Any]:
        with self._lock:
            now = self._clock.now()
            self._refresh_health_locked()
            followers = {
                f.name: {
                    "state": self._detector.state(f.name).value,
                    "durable_upto": f.log.durable_upto if f.log is not None else 0,
                    "lag": self._durable_upto
                    - (f.log.durable_upto if f.log is not None else 0),
                    "resync_required": f.resync,
                }
                for f in self._followers
            }
            return {
                "primary_index": self._primary_index,
                "durable_upto": self._durable_upto,
                "quorum_upto": self._quorum_upto,
                "write_quorum": self._write_quorum,
                "followers": followers,
                "quorum_ok": self.quorum_ok(),
                "under_replicated": self._under_since is not None,
                "under_replicated_age": (
                    round(now - self._under_since, 6)
                    if self._under_since is not None
                    else None
                ),
                "counters": {
                    "shipped_batches": self.shipped_batches,
                    "shipped_records": self.shipped_records,
                    "catch_ups": self.catch_ups,
                    "full_resyncs": self.full_resyncs,
                    "quorum_failures": self.quorum_failures,
                    "promotions": self.promotions,
                },
            }
