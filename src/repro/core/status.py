"""Activity lifecycle and completion-status types (§3.2.1 of the paper)."""

from __future__ import annotations

from enum import Enum

from repro.orb.marshal import GLOBAL_REGISTRY


@GLOBAL_REGISTRY.register_enum
class CompletionStatus(Enum):
    """The state an activity would complete in if completed now.

    Mirrors the paper's enumeration: SUCCESS and FAIL may change back and
    forth during the activity's lifetime; FAIL_ONLY latches — once set the
    only possible outcome is failure (§3.2.1).
    """

    SUCCESS = "CompletionStatusSuccess"
    FAIL = "CompletionStatusFail"
    FAIL_ONLY = "CompletionStatusFailOnly"

    @property
    def is_failure(self) -> bool:
        return self is not CompletionStatus.SUCCESS

    def may_become(self, new: "CompletionStatus") -> bool:
        """Whether a transition from self to ``new`` is legal."""
        if self is CompletionStatus.FAIL_ONLY:
            return new is CompletionStatus.FAIL_ONLY
        return True


@GLOBAL_REGISTRY.register_enum
class ActivityStatus(Enum):
    """Lifecycle states of an activity object."""

    ACTIVE = "ActivityActive"
    SUSPENDED = "ActivitySuspended"
    COMPLETING = "ActivityCompleting"
    COMPLETED = "ActivityCompleted"

    @property
    def is_terminal(self) -> bool:
        return self is ActivityStatus.COMPLETED


@GLOBAL_REGISTRY.register_enum
class SignalSetState(Enum):
    """Fig. 7: the state machine every SignalSet obeys."""

    WAITING = "Waiting"
    GET_SIGNAL = "GetSignal"
    END = "End"
