"""Travel-booking services (§2.1(iv), figs 1–2).

Each service manages a bounded inventory (seats, tables, rooms, cabs)
backed by :class:`~repro.ots.recoverable.TransactionalCell`, so
reservations participate in transactions with strict two-phase locking —
which is precisely what makes the *monolithic* long-running transaction
of fig. 1 hold resources needlessly (the fig. 1 bench measures that).

Two access styles are provided, matching the models that consume them:

- **transactional**: ``reserve``/``release`` run under the ambient OTS
  transaction (or an auto-commit transaction when none is active);
- **BTP-style**: ``prepare_booking`` places a provisional *hold* outside
  any transaction; ``confirm_booking``/``cancel_booking`` settle it —
  the behaviour BTP atoms need ("for t1 the taxi is reserved (prepared)
  and not booked (confirmed)", §4.5).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import ReproError
from repro.orb.core import Servant
from repro.ots.coordinator import Transaction
from repro.ots.current import TransactionCurrent
from repro.ots.factory import TransactionFactory
from repro.ots.locks import LockConflict
from repro.ots.recoverable import RecoverableRegistry, TransactionalCell
from repro.persistence.object_store import ObjectStore
from repro.util.idgen import IdGenerator


class BookingError(ReproError):
    """No inventory left, unknown booking, or conflicting reservation."""


class InventoryService(Servant):
    """One bookable service with ``capacity`` interchangeable units."""

    kind = "inventory"

    def __init__(
        self,
        name: str,
        capacity: int,
        factory: TransactionFactory,
        current: Optional[TransactionCurrent] = None,
        store: Optional[ObjectStore] = None,
        registry: Optional[RecoverableRegistry] = None,
        price: float = 0.0,
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity cannot be negative")
        self.name = name
        self.capacity = capacity
        self.price = price
        self.factory = factory
        self.current = current
        self._ids = IdGenerator()
        self._available = TransactionalCell(
            f"{name}:available", capacity, factory, store=store, registry=registry
        )
        self._bookings = TransactionalCell(
            f"{name}:bookings", {}, factory, store=store, registry=registry
        )
        # BTP-style provisional holds live outside transaction control.
        self._holds: Dict[str, str] = {}
        self.denied_requests = 0

    # -- transaction plumbing ----------------------------------------------------

    def _ambient_tx(self) -> Optional[Transaction]:
        if self.current is None:
            return None
        tx = self.current.get_transaction()
        if tx is not None and tx.status.is_terminal:
            # A completed transaction left on the caller's stack (e.g. a
            # compensation running after rollback) must not capture writes.
            return None
        return tx

    def _run(self, fn) -> Any:
        """Run ``fn(tx)`` under the ambient transaction or auto-commit."""
        tx = self._ambient_tx()
        if tx is not None:
            return fn(tx)
        tx = self.factory.create(name=f"{self.name}:auto")
        try:
            result = fn(tx)
        except BaseException:
            if not tx.status.is_terminal:
                tx.rollback()
            raise
        tx.commit()
        return result

    # -- transactional operations ---------------------------------------------------

    def available(self) -> int:
        """Committed availability (no transaction, no locks)."""
        return self._available.read()

    def reserve(self, client: str) -> str:
        """Take one unit for ``client`` under the ambient transaction."""

        def body(tx: Transaction) -> str:
            try:
                available = self._available.read(tx)
            except LockConflict:
                self.denied_requests += 1
                raise
            if available <= 0:
                self.denied_requests += 1
                raise BookingError(f"{self.name} is fully booked")
            booking_id = self._ids.next(f"{self.name}-bk")
            bookings = dict(self._bookings.read(tx))
            bookings[booking_id] = client
            self._available.write(tx, available - 1)
            self._bookings.write(tx, bookings)
            return booking_id

        return self._run(body)

    def release(self, booking_id: str) -> bool:
        """Return a unit (cancellation or compensation)."""

        def body(tx: Transaction) -> bool:
            bookings = dict(self._bookings.read(tx))
            if booking_id not in bookings:
                raise BookingError(f"unknown booking {booking_id!r} at {self.name}")
            del bookings[booking_id]
            self._available.write(tx, self._available.read(tx) + 1)
            self._bookings.write(tx, bookings)
            return True

        return self._run(body)

    def bookings_of(self, client: str) -> List[str]:
        bookings = self._bookings.read()
        return sorted(bid for bid, owner in bookings.items() if owner == client)

    def booking_count(self) -> int:
        return len(self._bookings.read())

    def is_locked(self) -> bool:
        return self._available.is_locked()

    # -- BTP-style provisional operations ----------------------------------------------

    def prepare_booking(self, client: str) -> str:
        """Place a provisional hold (no transaction, immediately durable)."""
        def body(tx: Transaction) -> str:
            available = self._available.read(tx)
            if available <= 0:
                self.denied_requests += 1
                raise BookingError(f"{self.name} cannot hold: fully booked")
            self._available.write(tx, available - 1)
            return self._ids.next(f"{self.name}-hold")

        hold_id = self._run(body)
        self._holds[hold_id] = client
        return hold_id

    def confirm_booking(self, hold_id: str) -> str:
        """Turn a hold into a real booking."""
        client = self._holds.pop(hold_id, None)
        if client is None:
            raise BookingError(f"unknown hold {hold_id!r} at {self.name}")

        def body(tx: Transaction) -> str:
            booking_id = self._ids.next(f"{self.name}-bk")
            bookings = dict(self._bookings.read(tx))
            bookings[booking_id] = client
            self._bookings.write(tx, bookings)
            return booking_id

        return self._run(body)

    def cancel_booking(self, hold_id: str) -> bool:
        """Release a hold, returning the unit to the pool."""
        client = self._holds.pop(hold_id, None)
        if client is None:
            return False  # idempotent: cancelling twice is fine

        def body(tx: Transaction) -> bool:
            self._available.write(tx, self._available.read(tx) + 1)
            return True

        return self._run(body)

    @property
    def holds_outstanding(self) -> int:
        return len(self._holds)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name}, {self.available()}/{self.capacity})"


class TaxiService(InventoryService):
    kind = "taxi"


class RestaurantService(InventoryService):
    kind = "restaurant"


class TheatreService(InventoryService):
    kind = "theatre"


class HotelService(InventoryService):
    kind = "hotel"


class TravelScenario:
    """The fig. 1 deployment: four services sharing one OTS factory."""

    def __init__(
        self,
        factory: Optional[TransactionFactory] = None,
        current: Optional[TransactionCurrent] = None,
        capacity: int = 10,
        store: Optional[ObjectStore] = None,
        registry: Optional[RecoverableRegistry] = None,
    ) -> None:
        self.factory = factory if factory is not None else TransactionFactory()
        self.current = (
            current if current is not None else TransactionCurrent(self.factory)
        )
        make = lambda cls, name, price: cls(  # noqa: E731 - local factory helper
            name,
            capacity,
            self.factory,
            current=self.current,
            store=store,
            registry=registry,
            price=price,
        )
        self.taxi = make(TaxiService, "taxi", 20.0)
        self.restaurant = make(RestaurantService, "restaurant", 60.0)
        self.theatre = make(TheatreService, "theatre", 45.0)
        self.hotel = make(HotelService, "hotel", 150.0)

    @property
    def services(self) -> Tuple[InventoryService, ...]:
        return (self.taxi, self.restaurant, self.theatre, self.hotel)

    def service_by_name(self, name: str) -> InventoryService:
        for service in self.services:
            if service.name == name:
                return service
        raise BookingError(f"no service named {name!r}")

    def total_available(self) -> int:
        return sum(service.available() for service in self.services)
