"""OTS crash recovery: fail-points, WAL replay, presumed abort, heuristics."""

import pytest

from repro.ots import (
    HeuristicHazard,
    HeuristicMixed,
    HeuristicRollback,
    RecoverableRegistry,
    RecoveryManager,
    Resource,
    SimulatedCrash,
    TransactionFactory,
    TransactionalCell,
    TransactionStatus,
    Vote,
)
from repro.persistence import MemoryStore, WriteAheadLog


@pytest.fixture
def env():
    class Env:
        def __init__(self):
            self.stable = MemoryStore()
            self.wal = WriteAheadLog(self.stable, "txlog")
            self.factory = TransactionFactory(wal=self.wal)
            self.registry = RecoverableRegistry()
            self.cell_store = MemoryStore()

        def cell(self, key, initial):
            return TransactionalCell(
                key, initial, self.factory, store=self.cell_store,
                registry=self.registry,
            )

        def recover(self):
            return RecoveryManager(self.wal.reopen(), self.registry).recover()

    return Env()


class TestFailpoints:
    def test_crash_before_commit_log_presumes_abort(self, env):
        a = env.cell("a", 0)
        b = env.cell("b", 0)
        tx = env.factory.create()
        a.write(tx, 1)
        b.write(tx, 2)
        env.factory.failpoints.arm("before_commit_log")
        with pytest.raises(SimulatedCrash):
            tx.commit()
        report = env.recover()
        assert report.recommitted == {}
        assert tx.tid in report.presumed_aborted
        assert a.read() == 0 and b.read() == 0

    def test_crash_after_commit_log_recommits_all(self, env):
        a = env.cell("a", 0)
        b = env.cell("b", 0)
        tx = env.factory.create()
        a.write(tx, 1)
        b.write(tx, 2)
        env.factory.failpoints.arm("after_commit_log")
        with pytest.raises(SimulatedCrash):
            tx.commit()
        report = env.recover()
        assert sorted(report.recommitted[tx.tid]) == ["a", "b"]
        assert a.read() == 1 and b.read() == 2

    def test_crash_mid_phase_two_completes_remaining(self, env):
        a = env.cell("a", 0)
        b = env.cell("b", 0)
        tx = env.factory.create()
        a.write(tx, 1)
        b.write(tx, 2)
        env.factory.failpoints.arm("before_commit_resource_1")
        with pytest.raises(SimulatedCrash):
            tx.commit()
        assert a.read() == 1, "first resource committed before the crash"
        assert b.read() == 0
        report = env.recover()
        assert b.read() == 2
        assert report.recommitted[tx.tid] == ["b"], "only b needed replay"

    def test_recovery_is_idempotent(self, env):
        a = env.cell("a", 0)
        b = env.cell("b", 0)
        tx = env.factory.create()
        a.write(tx, 1)
        b.write(tx, 2)
        env.factory.failpoints.arm("after_commit_log")
        with pytest.raises(SimulatedCrash):
            tx.commit()
        env.recover()
        second = env.recover()
        assert second.clean
        assert a.read() == 1 and b.read() == 2

    def test_failpoint_fires_once(self, env):
        env.factory.failpoints.arm("before_prepare")
        a = env.cell("a", 0)
        tx = env.factory.create()
        a.write(tx, 1)
        b = env.cell("b", 0)
        b.write(tx, 2)
        with pytest.raises(SimulatedCrash):
            tx.commit()
        assert env.factory.failpoints.fired == ["before_prepare"]
        # A new transaction passes the (now disarmed) point.
        tx2 = env.factory.create()
        a2 = env.cell("a2", 0)
        a2.write(tx2, 5)
        tx2.commit()
        assert a2.read() == 5

    def test_unresolved_recovery_key_reported(self, env):
        a = env.cell("a", 0)
        b = env.cell("b", 0)
        tx = env.factory.create()
        a.write(tx, 1)
        b.write(tx, 2)
        env.factory.failpoints.arm("after_commit_log")
        with pytest.raises(SimulatedCrash):
            tx.commit()
        # Simulate losing one cell's registration across the restart.
        fresh_registry = RecoverableRegistry()
        fresh_registry.register("a", a)
        report = RecoveryManager(env.wal.reopen(), fresh_registry).recover()
        assert report.unresolved_keys == ["b"]


class TestCellDurability:
    def test_committed_state_reloads_from_store(self, env):
        a = env.cell("a", 0)
        tx = env.factory.create()
        a.write(tx, 42)
        b = env.cell("b", 0)
        b.write(tx, 1)
        tx.commit()
        # A "restarted" cell over the same store sees the committed value.
        reloaded = TransactionalCell("a", 0, env.factory, store=env.cell_store)
        assert reloaded.read() == 42

    def test_prepared_state_survives_in_store(self, env):
        a = env.cell("a", 0)
        b = env.cell("b", 0)
        tx = env.factory.create()
        a.write(tx, 1)
        b.write(tx, 2)
        env.factory.failpoints.arm("after_commit_log")
        with pytest.raises(SimulatedCrash):
            tx.commit()
        # Rebuild both cells from stable storage (in-memory stage lost).
        registry = RecoverableRegistry()
        TransactionalCell("a", 0, env.factory, store=env.cell_store, registry=registry)
        TransactionalCell("b", 0, env.factory, store=env.cell_store, registry=registry)
        report = RecoveryManager(env.wal.reopen(), registry).recover()
        assert sorted(report.recommitted[tx.tid]) == ["a", "b"]
        assert registry.resolve("a").committed_value == 1
        assert registry.resolve("b").committed_value == 2

    def test_in_doubt_listing(self, env):
        a = env.cell("a", 0)
        b = env.cell("b", 0)
        tx = env.factory.create()
        a.write(tx, 1)
        b.write(tx, 1)
        env.factory.failpoints.arm("before_commit_log")
        with pytest.raises(SimulatedCrash):
            tx.commit()
        assert a.list_in_doubt() == [tx.tid]


class HeuristicResource(Resource):
    def __init__(self, raise_on_commit=None, raise_on_rollback=None):
        self.raise_on_commit = raise_on_commit
        self.raise_on_rollback = raise_on_rollback
        self.forgotten = False

    def prepare(self):
        return Vote.COMMIT

    def commit(self):
        if self.raise_on_commit:
            raise self.raise_on_commit

    def rollback(self):
        if self.raise_on_rollback:
            raise self.raise_on_rollback

    def forget(self):
        self.forgotten = True


class TestHeuristics:
    def test_heuristic_rollback_during_commit_reported_mixed(self, env):
        tx = env.factory.create()
        tx.register_resource(HeuristicResource())
        bad = HeuristicResource(raise_on_commit=HeuristicRollback("went back"))
        tx.register_resource(bad)
        with pytest.raises(HeuristicMixed):
            tx.commit()
        assert tx.status is TransactionStatus.COMMITTED
        assert bad.forgotten, "forget() must follow a reported heuristic"

    def test_heuristics_not_raised_when_not_requested(self, env):
        tx = env.factory.create()
        tx.register_resource(HeuristicResource())
        tx.register_resource(
            HeuristicResource(raise_on_commit=HeuristicRollback("x"))
        )
        tx.commit(report_heuristics=False)
        assert len(tx.heuristics) == 1

    def test_all_hazards_reported_as_hazard(self, env):
        from repro.exceptions import CommunicationError

        class Unreachable(HeuristicResource):
            def commit(self):
                raise CommunicationError("gone", transient=False)

        tx = env.factory.create()
        tx.register_resource(HeuristicResource())
        tx.register_resource(Unreachable())
        with pytest.raises(HeuristicHazard):
            tx.commit()

    def test_transient_failures_retried_then_succeed(self, env):
        from repro.exceptions import CommunicationError

        class Flaky(HeuristicResource):
            def __init__(self):
                super().__init__()
                self.attempts = 0

            def commit(self):
                self.attempts += 1
                if self.attempts < 3:
                    raise CommunicationError("blip", transient=True)

        flaky = Flaky()
        tx = env.factory.create()
        tx.register_resource(HeuristicResource())
        tx.register_resource(flaky)
        tx.commit()
        assert flaky.attempts == 3
