"""Slotted record bases + allocation profiling hooks (PR 7 record layer)."""

import pytest

from repro.core.context import ActivityContext
from repro.core.signals import Outcome, Signal
from repro.orb.marshal import GLOBAL_REGISTRY, marshal_roundtrip
from repro.ots.propagation import TransactionContext
from repro.util.profiling import (
    AllocationProbe,
    allocations_per_call,
    retained_blocks_per_object,
    trace_top,
)
from repro.util.records import FrozenRecord, SlottedRecord
from repro.wscf.coordination import CoordinationContext


class Point(SlottedRecord):
    __slots__ = ("x", "y")
    _fields = __slots__

    def __init__(self, x, y):
        self.x = x
        self.y = y


class Pinned(FrozenRecord):
    __slots__ = ("a", "b")
    _fields = __slots__

    def __init__(self, a, b=0):
        self._init(a=a, b=b)


class TestSlottedRecord:
    def test_no_instance_dict(self):
        assert not hasattr(Point(1, 2), "__dict__")
        assert not hasattr(Pinned(1), "__dict__")

    def test_value_equality_and_repr(self):
        assert Point(1, 2) == Point(1, 2)
        assert Point(1, 2) != Point(1, 3)
        assert Point(1, 2) != (1, 2)
        assert repr(Point(1, 2)) == "Point(x=1, y=2)"

    def test_frozen_refuses_assignment_and_deletion(self):
        record = Pinned(1, 2)
        with pytest.raises(AttributeError):
            record.a = 5
        with pytest.raises(AttributeError):
            del record.a

    def test_frozen_hashable(self):
        assert hash(Pinned(1, 2)) == hash(Pinned(1, 2))
        assert {Pinned(1, 2), Pinned(1, 2), Pinned(3)} == {Pinned(1, 2), Pinned(3)}


class TestConvertedWireRecords:
    """The converted value types keep their dataclass-era semantics."""

    def test_all_slotted(self):
        for cls, args in [
            (Signal, ("s", "ss")),
            (Outcome, ("n",)),
            (ActivityContext, ("a1", "root")),
            (TransactionContext, ("t1",)),
            (CoordinationContext, ("c1", "wscf:atomic-outcome")),
        ]:
            instance = cls(*args)
            assert not hasattr(instance, "__dict__"), cls

    def test_signal_semantics(self):
        signal = Signal("commit", "completion", data_payload := {"k": 1})
        assert signal.name == "commit"
        assert signal.delivery_id is None
        stamped = signal.with_delivery_id("d-1")
        assert stamped.delivery_id == "d-1"
        assert stamped.application_specific_data is data_payload
        assert signal != stamped
        assert signal.with_data(None).application_specific_data is None
        with pytest.raises(AttributeError):
            signal.signal_name = "other"
        assert str(signal) == "Signal(commit@completion)"

    def test_outcome_semantics(self):
        assert Outcome.done().is_done
        assert Outcome.error("boom").is_error
        assert not Outcome.unreachable().is_done
        assert Outcome("n", 1) == Outcome("n", 1)
        assert hash(Outcome.done()) == hash(Outcome.done())

    def test_registry_field_order_matches_dataclass_era(self):
        # register_slotted derives the wire parts from _fields: the
        # declaration order below IS the wire order of every release
        # since the types were dataclasses — a mismatch would silently
        # corrupt cross-version decoding.
        _, to_parts, _ = GLOBAL_REGISTRY.lookup_name(
            GLOBAL_REGISTRY.repository_id(Signal)
        )
        assert list(to_parts(Signal("s", "ss", 1, "d"))) == [
            "signal_name",
            "signal_set_name",
            "application_specific_data",
            "delivery_id",
        ]
        _, to_parts, _ = GLOBAL_REGISTRY.lookup_name(
            GLOBAL_REGISTRY.repository_id(ActivityContext)
        )
        assert list(to_parts(ActivityContext("a", "n"))) == [
            "activity_id",
            "activity_name",
            "property_values",
            "property_refs",
        ]

    @pytest.mark.parametrize("codec", ["legacy", "struct"])
    def test_roundtrip_both_codecs(self, codec):
        for value in [
            Signal("s", "ss", {"payload": [1, 2.5]}, "d-9"),
            Outcome.error(("why",)),
            ActivityContext("a1", "root", {"pg": {"k": "v"}}, {}),
            TransactionContext("tid-1"),
            CoordinationContext("c1", "wscf:atomic-outcome", "domA"),
        ]:
            assert marshal_roundtrip(value, codec=codec) == value


class TestAllocationProfiling:
    def test_probe_counts_blocks(self):
        with AllocationProbe() as probe:
            keep = [object() for _ in range(100)]
        assert probe.blocks >= 100
        del keep

    def test_probe_restores_gc(self):
        import gc

        assert gc.isenabled()
        with AllocationProbe():
            assert not gc.isenabled()
        assert gc.isenabled()

    def test_allocations_per_call_near_zero_for_noop(self):
        assert allocations_per_call(lambda: None, repeat=200) < 1.0

    def test_slotted_record_allocates_less_than_dict_record(self):
        # The record-layer claim, measured: a live slotted signal costs
        # strictly fewer allocator blocks than the same shape on
        # __dict__ storage (instance + dict vs instance alone).
        class DictSignal:
            def __init__(self, signal_name, signal_set_name, data, delivery_id):
                self.signal_name = signal_name
                self.signal_set_name = signal_set_name
                self.application_specific_data = data
                self.delivery_id = delivery_id

        slotted = retained_blocks_per_object(
            lambda: Signal("s", "ss", None, "d-1"), count=500
        )
        dict_backed = retained_blocks_per_object(
            lambda: DictSignal("s", "ss", None, "d-1"), count=500
        )
        assert slotted < dict_backed

    def test_trace_top_attributes_lines(self):
        rows = trace_top(lambda: [bytearray(1024) for _ in range(50)], limit=5)
        assert rows
        location, size, count = rows[0]
        assert ":" in location
        assert size > 0
