"""Property-based tests on lock-manager and transactional-cell invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ots import TransactionFactory, TransactionalCell
from repro.ots.locks import LockConflict, LockMode


class TestLockInvariants:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),     # transaction index
                st.integers(min_value=0, max_value=3),     # key index
                st.sampled_from([LockMode.READ, LockMode.WRITE]),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_never_two_writers_and_writer_excludes_readers(self, operations):
        factory = TransactionFactory()
        locks = factory.lock_manager
        transactions = [factory.create() for _ in range(5)]
        for tx_index, key_index, mode in operations:
            tx = transactions[tx_index]
            key = f"k{key_index}"
            try:
                locks.acquire(tx, key, mode)
            except LockConflict:
                pass
            # Invariant check after every step.
            for check_key in {f"k{i}" for i in range(4)}:
                holders = locks.holders(check_key)
                writers = [t for t, m in holders if m is LockMode.WRITE]
                readers = [t for t, m in holders if m is LockMode.READ]
                assert len(writers) <= 1
                if writers:
                    # Top-level transactions here: a writer excludes all
                    # other holders entirely.
                    assert len(holders) == 1

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.sampled_from([LockMode.READ, LockMode.WRITE]),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_release_all_leaves_no_residue(self, operations):
        factory = TransactionFactory()
        locks = factory.lock_manager
        transactions = [factory.create() for _ in range(4)]
        for tx_index, mode in operations:
            try:
                locks.acquire(transactions[tx_index], f"k{tx_index % 2}", mode)
            except LockConflict:
                pass
        for tx in transactions:
            locks.release_all(tx)
        for key in ("k0", "k1"):
            assert locks.holders(key) == []
        for tx in transactions:
            assert locks.keys_held_by(tx) == set()


class TestCellSerialisability:
    @given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_serial_transactions_apply_in_order(self, writes):
        factory = TransactionFactory()
        cell = TransactionalCell("c", 0, factory)
        for value in writes:
            tx = factory.create()
            cell.write(tx, value)
            tx.commit()
        assert cell.read() == writes[-1]

    @given(
        st.lists(st.integers(min_value=1, max_value=10), min_size=1, max_size=8),
        st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_aborted_transactions_leave_no_trace(self, deltas, data):
        commit_mask = data.draw(
            st.lists(st.booleans(), min_size=len(deltas), max_size=len(deltas))
        )
        factory = TransactionFactory()
        cell = TransactionalCell("c", 0, factory)
        expected = 0
        for delta, commits in zip(deltas, commit_mask):
            tx = factory.create()
            cell.write(tx, cell.read(tx) + delta)
            if commits:
                tx.commit()
                expected += delta
            else:
                tx.rollback()
        assert cell.read() == expected

    @given(st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=6))
    @settings(max_examples=75, deadline=None)
    def test_nested_chain_all_or_nothing(self, deltas):
        """A chain of nested transactions all commit with the top level or
        none do."""
        factory = TransactionFactory()
        cell = TransactionalCell("c", 0, factory)
        # Build a nested chain, each level adding its delta.
        top = factory.create()
        current = top
        stack = [top]
        cell.write(top, deltas[0])
        for delta in deltas[1:]:
            current = current.begin_subtransaction()
            stack.append(current)
            cell.write(current, cell.read(current) + delta)
        # Commit inner-to-outer except the top; then roll back the top.
        for tx in reversed(stack[1:]):
            tx.commit()
        top.rollback()
        assert cell.read() == 0
        # And the committed variant:
        cell2 = TransactionalCell("c2", 0, factory)
        top = factory.create()
        current = top
        stack = [top]
        cell2.write(top, deltas[0])
        for delta in deltas[1:]:
            current = current.begin_subtransaction()
            stack.append(current)
            cell2.write(current, cell2.read(current) + delta)
        for tx in reversed(stack):
            tx.commit()
        assert cell2.read() == sum(deltas)
