"""Codec negotiation on the socket HELLO (PR 10).

The contract: sites advertise the wire codecs they speak in their HELLO
frame; the dialed side picks the best *mutual* one (first of its own
preferences the dialer advertised) and announces the choice in the
HELLO reply, so both ends always agree.  Peers that advertise nothing —
pre-negotiation builds — keep speaking ``"legacy"`` unchanged, with the
modern side transcoding at the transport boundary.  No mutual codec is
a loud :class:`ConfigurationError`; and with negotiation off the HELLO
payload is byte-identical to prior releases.
"""

import json

import pytest

from repro.config import OrbConfig
from repro.exceptions import ConfigurationError
from repro.orb.core import Orb
from repro.orb.marshal import Marshaller
from repro.orb.reference import ObjectRef
from repro.orb.site import SiteConfig, SiteFederation, SiteRuntime
from repro.orb.socket_transport import PROTOCOL_VERSION, SocketTransport


class _Echo:
    def ping(self, value):
        return ("pong", value)


def _make_end(site_id, local_codec, prefs=None, server=False):
    """One transport+orb end, optionally serving, optionally negotiating."""
    transport = SocketTransport(
        site_id, bind=("127.0.0.1", 0) if server else None
    )
    orb = Orb(transport=transport, config=OrbConfig(codec=local_codec))
    SiteFederation(transport, orb)
    if server:
        transport.set_request_handler(orb.dispatch_request)
        transport.set_control_handler(
            lambda req: {
                "site": site_id,
                "domain": site_id
                if orb.has_node(str(req.get("node")))
                else None,
            }
        )
    if prefs is not None:
        marshallers = {
            name: (
                orb.marshaller
                if name == local_codec
                else Marshaller(orb.marshaller.registry, codec=name)
            )
            for name in dict.fromkeys(list(prefs) + [local_codec, "legacy"])
        }
        transport.enable_codec_negotiation(
            list(prefs), marshallers, local_codec=local_codec
        )
    transport.start()
    return transport, orb


@pytest.fixture
def ends():
    opened = []

    def build(*args, **kwargs):
        transport, orb = _make_end(*args, **kwargs)
        opened.append(transport)
        return transport, orb

    yield build
    for transport in opened:
        transport.close()


def _invoke_echo(server_transport, server_orb, client_orb, value):
    server_orb.create_node("server.app").activate(
        _Echo(), object_id="echo", interface="Echo"
    )
    ref = ObjectRef("server.app", "echo", "Echo").bind(client_orb)
    return ref.invoke("ping", value)


class TestNegotiation:
    def test_both_modern_pick_struct_with_zero_transcodes(self, ends):
        server, server_orb = ends(
            "server", "struct", prefs=["struct", "legacy"], server=True
        )
        client, client_orb = ends("client", "struct", prefs=["struct", "legacy"])
        client.connect_peer("server", server.address)
        assert _invoke_echo(server, server_orb, client_orb, 7) == ("pong", 7)
        assert client.peer_codec("server") == "struct"
        assert client.codec_transcodes == 0
        assert server.codec_transcodes == 0
        assert client.describe()["codecs"]["peers"] == {"server": "struct"}

    def test_server_authoritative_choice_on_asymmetric_preferences(self, ends):
        """Client prefers struct, server prefers legacy: both must land
        on the *server's* pick, or they would disagree forever."""
        server, server_orb = ends(
            "server", "legacy", prefs=["legacy", "struct"], server=True
        )
        client, client_orb = ends("client", "struct", prefs=["struct", "legacy"])
        client.connect_peer("server", server.address)
        assert _invoke_echo(server, server_orb, client_orb, 8) == ("pong", 8)
        assert client.peer_codec("server") == "legacy"
        # The client's ORB thinks in struct; the boundary transcodes.
        assert client.codec_transcodes > 0
        assert server.codec_transcodes == 0

    def test_legacy_dialer_keeps_working_against_modern_server(self, ends):
        """A pre-negotiation peer advertises nothing: the modern server
        speaks legacy to it and transcodes to its own struct internals."""
        server, server_orb = ends(
            "server", "struct", prefs=["struct", "legacy"], server=True
        )
        client, client_orb = ends("client", "legacy")  # negotiation off
        client.connect_peer("server", server.address)
        assert _invoke_echo(server, server_orb, client_orb, 9) == ("pong", 9)
        # request in, reply out: one transcode each, on the server only.
        assert server.codec_transcodes == 2
        assert client.codec_transcodes == 0
        assert client.peer_codec("server") is None

    def test_modern_dialer_against_legacy_server_falls_back(self, ends):
        """The HELLO reply of a pre-negotiation server carries no codec
        announcement; the modern dialer must assume legacy."""
        server, server_orb = ends("server", "legacy", server=True)
        client, client_orb = ends("client", "struct", prefs=["struct", "legacy"])
        client.connect_peer("server", server.address)
        assert _invoke_echo(server, server_orb, client_orb, 10) == ("pong", 10)
        assert client.peer_codec("server") == "legacy"
        assert client.codec_transcodes > 0
        assert server.codec_transcodes == 0


class TestNegotiationFailures:
    def test_no_mutual_codec_is_loud(self):
        transport = SocketTransport("island")
        transport.enable_codec_negotiation(
            ["struct"],
            {"struct": Marshaller(codec="struct"), "legacy": Marshaller()},
            local_codec="legacy",
        )
        with pytest.raises(ConfigurationError) as err:
            transport._negotiate_codec(["exotic"])
        assert "no mutual wire codec" in str(err.value)

    def test_legacy_dialer_refused_when_server_dropped_legacy(self):
        transport = SocketTransport("modern-only")
        transport.enable_codec_negotiation(
            ["struct"], {"struct": Marshaller(codec="struct")}, local_codec="struct"
        )
        with pytest.raises(ConfigurationError):
            transport._negotiate_codec(None)

    def test_enable_validates_marshaller_coverage(self):
        transport = SocketTransport("t")
        with pytest.raises(ConfigurationError):
            transport.enable_codec_negotiation([], {}, local_codec="legacy")
        with pytest.raises(ConfigurationError):
            transport.enable_codec_negotiation(
                ["struct"], {"legacy": Marshaller()}, local_codec="legacy"
            )


class TestWireCompatibilityWhenOff:
    def test_hello_payload_unchanged_without_negotiation(self):
        transport = SocketTransport("plain")
        payload = transport._hello_payload()
        assert payload == {"version": PROTOCOL_VERSION, "site": "plain"}
        # And it stays JSON-stable: no surprise keys for old parsers.
        assert sorted(json.loads(json.dumps(payload))) == ["site", "version"]

    def test_hello_payload_gains_only_codecs_when_on(self):
        transport = SocketTransport("modern")
        transport.enable_codec_negotiation(
            ["struct", "legacy"],
            {"struct": Marshaller(codec="struct"), "legacy": Marshaller()},
            local_codec="legacy",
        )
        payload = transport._hello_payload()
        assert payload["codecs"] == ["struct", "legacy"]
        assert sorted(payload) == ["codecs", "site", "version"]


class TestSiteWiring:
    def test_site_config_codecs_enable_negotiation(self):
        config = SiteConfig(site_id="s-codec", port=0, codecs=["struct", "legacy"])
        runtime = SiteRuntime(config)
        try:
            assert runtime.transport._codec_prefs == ["struct", "legacy"]
            assert set(runtime.transport._codec_marshallers) >= {"struct", "legacy"}
        finally:
            runtime.stop()
            runtime.transport.close()

    def test_site_config_rejects_unknown_codec(self):
        from repro.config import ConfigValidationError

        with pytest.raises(ConfigValidationError):
            SiteConfig(site_id="s", codecs=["morse"])

    def test_sites_with_different_internals_interoperate(self):
        """Two real site daemons, one struct-native and one legacy-era,
        negotiate per-link and keep the control plane working."""
        modern_cfg = SiteConfig(
            site_id="modern",
            port=0,
            orb={"codec": "struct"},
            codecs=["struct", "legacy"],
            poll_interval=0.05,
        )
        modern = SiteRuntime(modern_cfg)
        try:
            modern.serve_in_background()
            assert modern.wait_recovered(timeout=10.0)
            import threading

            pause = threading.Event()
            for _ in range(200):
                if modern.transport.address is not None:
                    break
                pause.wait(0.02)

            legacy = SocketTransport("legacy-era")
            legacy_orb = Orb(transport=legacy, config=OrbConfig())
            SiteFederation(legacy, legacy_orb)
            legacy.connect_peer("modern", modern.transport.address)
            legacy.start()
            try:
                reply = legacy.control("modern", {"op": "ping"})
                assert reply["site"] == "modern"
                # And a marshalled ORB request crosses the codec seam.
                modern.orb.create_node("modern.app").activate(
                    _Echo(), object_id="echo", interface="Echo"
                )
                ref = ObjectRef("modern.app", "echo", "Echo").bind(legacy_orb)
                assert ref.invoke("ping", 11) == ("pong", 11)
                assert modern.transport.codec_transcodes >= 2
            finally:
                legacy.close()
        finally:
            modern.stop()
            modern.transport.close()
