"""BTP atoms and cohesions (§4.5): figs 11–12 traces, confirm-set logic."""

import pytest

from repro.core import ActivityManager, CompletionStatus
from repro.models import (
    BtpAtom,
    BtpCohesion,
    BtpParticipant,
    BtpStatus,
)
from repro.models.btp import (
    COMPLETE_SET,
    PREPARE_SET,
    BtpError,
    SIGNAL_CANCEL,
    SIGNAL_CONFIRM,
    SIGNAL_PREPARE,
)


@pytest.fixture
def manager():
    return ActivityManager()


class TestParticipant:
    def test_lifecycle_prepare_confirm(self):
        from repro.core.signals import Signal

        events = []
        participant = BtpParticipant(
            "svc",
            on_prepare=lambda: events.append("prep") or True,
            on_confirm=lambda: events.append("conf"),
        )
        participant.process_signal(Signal(SIGNAL_PREPARE, PREPARE_SET))
        assert participant.status is BtpStatus.PREPARED
        participant.process_signal(Signal(SIGNAL_CONFIRM, COMPLETE_SET))
        assert participant.status is BtpStatus.CONFIRMED
        assert events == ["prep", "conf"]

    def test_prepare_refusal_cancels(self):
        from repro.core.signals import Signal

        participant = BtpParticipant("svc", on_prepare=lambda: False)
        outcome = participant.process_signal(Signal(SIGNAL_PREPARE, PREPARE_SET))
        assert outcome.name == "cancelled"
        assert participant.status is BtpStatus.CANCELLED

    def test_duplicate_prepare_idempotent(self):
        from repro.core.signals import Signal

        count = []
        participant = BtpParticipant("svc", on_prepare=lambda: count.append(1) or True)
        participant.process_signal(Signal(SIGNAL_PREPARE, PREPARE_SET))
        participant.process_signal(Signal(SIGNAL_PREPARE, PREPARE_SET))
        assert count == [1]

    def test_confirm_without_prepare_is_error(self):
        from repro.core.signals import Signal

        participant = BtpParticipant("svc")
        outcome = participant.process_signal(Signal(SIGNAL_CONFIRM, COMPLETE_SET))
        assert outcome.is_error

    def test_cancel_from_any_live_state(self):
        from repro.core.signals import Signal

        cancelled = []
        participant = BtpParticipant("svc", on_cancel=lambda: cancelled.append(1))
        participant.process_signal(Signal(SIGNAL_CANCEL, COMPLETE_SET))
        assert participant.status is BtpStatus.CANCELLED
        assert cancelled == [1]
        # Duplicate cancel is harmless.
        participant.process_signal(Signal(SIGNAL_CANCEL, COMPLETE_SET))
        assert cancelled == [1]


class TestAtom:
    def test_prepare_confirm_happy_path(self, manager):
        atom = BtpAtom(manager, "a")
        p1, p2 = BtpParticipant("p1"), BtpParticipant("p2")
        atom.enroll(p1)
        atom.enroll(p2)
        assert atom.prepare()
        assert atom.status is BtpStatus.PREPARED
        atom.confirm()
        assert atom.status is BtpStatus.CONFIRMED
        assert p1.status is BtpStatus.CONFIRMED

    def test_user_drives_both_phases(self, manager):
        """BTP's defining feature: prepare is explicit and separate."""
        atom = BtpAtom(manager, "a")
        participant = BtpParticipant("p")
        atom.enroll(participant)
        atom.prepare()
        assert participant.status is BtpStatus.PREPARED
        assert participant.signals_seen == [SIGNAL_PREPARE]
        # Arbitrary time later…
        atom.confirm()
        assert participant.signals_seen == [SIGNAL_PREPARE, SIGNAL_CONFIRM]

    def test_refusing_participant_cancels_atom(self, manager):
        atom = BtpAtom(manager, "a")
        good = BtpParticipant("good")
        bad = BtpParticipant("bad", on_prepare=lambda: False)
        atom.enroll(good)
        atom.enroll(bad)
        assert not atom.prepare()
        assert atom.status is BtpStatus.CANCELLED
        assert good.status is BtpStatus.CANCELLED, "prepared member told to cancel"

    def test_cancel_active_atom(self, manager):
        atom = BtpAtom(manager, "a")
        participant = BtpParticipant("p")
        atom.enroll(participant)
        atom.cancel()
        assert atom.status is BtpStatus.CANCELLED
        assert participant.status is BtpStatus.CANCELLED

    def test_confirm_requires_prepared(self, manager):
        atom = BtpAtom(manager, "a")
        atom.enroll(BtpParticipant("p"))
        with pytest.raises(BtpError):
            atom.confirm()

    def test_enroll_after_prepare_rejected(self, manager):
        atom = BtpAtom(manager, "a")
        atom.enroll(BtpParticipant("p"))
        atom.prepare()
        with pytest.raises(BtpError):
            atom.enroll(BtpParticipant("late"))

    def test_cancel_terminal_rejected(self, manager):
        atom = BtpAtom(manager, "a")
        atom.enroll(BtpParticipant("p"))
        atom.prepare()
        atom.confirm()
        with pytest.raises(BtpError):
            atom.cancel()


class TestFig11Fig12Traces:
    def test_prepare_signal_set_trace(self, manager):
        """Fig. 11: prepare to each action, then get_outcome."""
        atom = BtpAtom(manager, "a")
        atom.enroll(BtpParticipant("A1"))
        atom.enroll(BtpParticipant("A2"))
        atom.prepare()
        protocol = [
            (event.kind, event.detail.get("signal"), event.detail.get("action"))
            for event in manager.event_log
            if event.detail.get("signal_set") == PREPARE_SET
            and event.kind in ("get_signal", "transmit", "get_outcome")
        ]
        assert protocol == [
            ("get_signal", None, None),
            ("transmit", "prepare", "A1"),
            ("transmit", "prepare", "A2"),
            ("get_outcome", None, None),
        ]

    def test_complete_signal_set_confirm_trace(self, manager):
        """Fig. 12: confirm to each action after a success completion."""
        atom = BtpAtom(manager, "a")
        atom.enroll(BtpParticipant("A1"))
        atom.enroll(BtpParticipant("A2"))
        atom.prepare()
        atom.confirm()
        protocol = [
            (event.kind, event.detail.get("signal"), event.detail.get("action"))
            for event in manager.event_log
            if event.detail.get("signal_set") == COMPLETE_SET
            and event.kind in ("get_signal", "transmit", "get_outcome")
        ]
        assert protocol == [
            ("get_signal", None, None),
            ("transmit", "confirm", "A1"),
            ("transmit", "confirm", "A2"),
            ("get_outcome", None, None),
        ]

    def test_complete_signal_set_cancel_variant(self, manager):
        atom = BtpAtom(manager, "a")
        atom.enroll(BtpParticipant("A1"))
        atom.prepare()
        atom.activity.complete(CompletionStatus.FAIL)
        cancels = [
            event
            for event in manager.event_log
            if event.kind == "transmit"
            and event.detail.get("signal_set") == COMPLETE_SET
        ]
        assert [e.detail["signal"] for e in cancels] == ["cancel"]


class TestCohesion:
    def make_trip(self, manager):
        cohesion = BtpCohesion(manager, "trip")
        participants = {}
        for name in ("taxi", "restaurant", "theatre", "hotel"):
            atom = BtpAtom(manager, name)
            participant = BtpParticipant(name)
            atom.enroll(participant)
            cohesion.enroll(atom)
            participants[name] = participant
        return cohesion, participants

    def test_confirm_set_selection(self, manager):
        cohesion, participants = self.make_trip(manager)
        outcomes = cohesion.confirm(["taxi", "restaurant", "theatre"])
        assert outcomes["taxi"] is BtpStatus.CONFIRMED
        assert outcomes["hotel"] is BtpStatus.CANCELLED
        assert participants["hotel"].status is BtpStatus.CANCELLED
        assert cohesion.status is BtpStatus.CONFIRMED

    def test_different_outcomes_to_different_participants(self, manager):
        """Unlike an atom, a cohesion gives different outcomes (§4.5)."""
        cohesion, participants = self.make_trip(manager)
        cohesion.confirm(["taxi"])
        statuses = {name: p.status for name, p in participants.items()}
        assert statuses["taxi"] is BtpStatus.CONFIRMED
        assert all(
            status is BtpStatus.CANCELLED
            for name, status in statuses.items()
            if name != "taxi"
        )

    def test_explicit_member_cancel_then_confirm_rest(self, manager):
        cohesion, participants = self.make_trip(manager)
        cohesion.cancel_member("hotel")
        outcomes = cohesion.confirm(["taxi", "restaurant", "theatre"])
        assert outcomes["hotel"] is BtpStatus.CANCELLED
        assert cohesion.status is BtpStatus.CONFIRMED

    def test_confirm_set_member_failure_cancels_all(self, manager):
        """Atomicity across the confirm-set: one refusal cancels the set."""
        cohesion = BtpCohesion(manager, "trip")
        good_atom = BtpAtom(manager, "good")
        good = BtpParticipant("good")
        good_atom.enroll(good)
        bad_atom = BtpAtom(manager, "bad")
        bad_atom.enroll(BtpParticipant("bad", on_prepare=lambda: False))
        cohesion.enroll(good_atom)
        cohesion.enroll(bad_atom)
        outcomes = cohesion.confirm(["good", "bad"])
        assert outcomes == {
            "good": BtpStatus.CANCELLED,
            "bad": BtpStatus.CANCELLED,
        }
        assert cohesion.status is BtpStatus.CANCELLED
        assert good.status is BtpStatus.CANCELLED

    def test_unknown_confirm_set_member_rejected(self, manager):
        cohesion, _ = self.make_trip(manager)
        with pytest.raises(BtpError):
            cohesion.confirm(["ghost"])

    def test_duplicate_enroll_rejected(self, manager):
        cohesion = BtpCohesion(manager, "c")
        atom = BtpAtom(manager, "a")
        cohesion.enroll(atom)
        with pytest.raises(BtpError):
            cohesion.enroll(atom)

    def test_cancel_whole_cohesion(self, manager):
        cohesion, participants = self.make_trip(manager)
        cohesion.cancel()
        assert cohesion.status is BtpStatus.CANCELLED
        assert all(p.status is BtpStatus.CANCELLED for p in participants.values())

    def test_prepare_member_early(self, manager):
        """Business logic can prepare members as the activity progresses."""
        cohesion, participants = self.make_trip(manager)
        assert cohesion.prepare_member("taxi")
        assert participants["taxi"].status is BtpStatus.PREPARED
        # Preparing again is a no-op.
        assert cohesion.prepare_member("taxi")
        outcomes = cohesion.confirm(["taxi"])
        assert outcomes["taxi"] is BtpStatus.CONFIRMED


class TestPerModelExecutor:
    """BTP atoms accept ``executor=`` (ROADMAP: mirror Saga from PR 3)."""

    def run_atom_flow(self, executor=None):
        manager = ActivityManager()
        atom = BtpAtom(manager, "pay", executor=executor)
        participants = [BtpParticipant(f"p{i}") for i in range(4)]
        for participant in participants:
            atom.enroll(participant)
        assert atom.prepare()
        atom.confirm()
        trace = [
            (event.kind, event.detail.get("signal"), event.detail.get("outcome"))
            for event in manager.event_log
            if event.kind in ("get_signal", "transmit", "set_response", "get_outcome")
        ]
        return atom, participants, trace

    def test_thread_pool_executor_matches_serial_trace(self):
        from repro.core import ThreadPoolBroadcastExecutor

        serial_atom, serial_parts, serial_trace = self.run_atom_flow()
        with ThreadPoolBroadcastExecutor(max_workers=4) as executor:
            pool_atom, pool_parts, pool_trace = self.run_atom_flow(executor)
        assert pool_atom.status is serial_atom.status is BtpStatus.CONFIRMED
        assert [p.status for p in pool_parts] == [p.status for p in serial_parts]
        assert pool_trace == serial_trace

    def test_refusal_path_parity(self):
        from repro.core import ThreadPoolBroadcastExecutor

        def run(executor=None):
            manager = ActivityManager()
            atom = BtpAtom(manager, "mixed", executor=executor)
            statuses = []
            for i in range(4):
                participant = BtpParticipant(
                    f"p{i}", on_prepare=(lambda: False) if i == 2 else None
                )
                atom.enroll(participant)
                statuses.append(participant)
            prepared = atom.prepare()
            return prepared, atom.status, [p.status for p in statuses]

        serial = run()
        with ThreadPoolBroadcastExecutor(max_workers=4) as executor:
            pooled = run(executor)
        assert serial == pooled
        assert serial[0] is False and serial[1] is BtpStatus.CANCELLED

    def test_cohesion_new_atom_shares_executor(self):
        from repro.core import SerialBroadcastExecutor

        manager = ActivityManager()
        executor = SerialBroadcastExecutor()
        cohesion = BtpCohesion(manager, "trip", executor=executor)
        atom = cohesion.new_atom("hotel")
        assert atom.executor is executor
        assert "hotel" in cohesion.members
        atom.enroll(BtpParticipant("h"))
        outcomes = cohesion.confirm(["hotel"])
        assert outcomes["hotel"] is BtpStatus.CONFIRMED
