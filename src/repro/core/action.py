"""Actions — the signal receivers of the framework (§3.2.2).

The paper's IDL::

    interface Action {
        Outcome process_signal(in Signal sig) raises(ActionError);
    };

An action may be a local object, a servant invoked through an
:class:`~repro.orb.reference.ObjectRef` (the coordinator handles both), or
one of the adapters here:

- :class:`FunctionAction` lifts a plain callable;
- :class:`IdempotentAction` deduplicates redelivered signals by
  ``delivery_id`` — the behaviour §3.4 *requires* of actions under
  at-least-once delivery;
- :class:`RecordingAction` remembers everything it was sent (tests and
  trace reproduction).
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, List, Optional

from repro.core.exceptions import ActionError
from repro.core.signals import Outcome, Signal


class Action(abc.ABC):
    """A registered receiver of signals from one or more SignalSets."""

    @abc.abstractmethod
    def process_signal(self, signal: Signal) -> Outcome:
        """Handle ``signal`` and report an :class:`Outcome`.

        Implementations may raise :class:`ActionError`; the coordinator
        converts it into an error outcome for the SignalSet.  Under
        at-least-once delivery the same logical signal may arrive more
        than once (same ``delivery_id``); implementations must tolerate
        that (see :class:`IdempotentAction`).
        """


class FunctionAction(Action):
    """Wraps ``fn(signal) -> Outcome | Any | None`` as an Action."""

    def __init__(self, fn: Callable[[Signal], Any], name: Optional[str] = None) -> None:
        self._fn = fn
        self.name = name if name is not None else getattr(fn, "__name__", "action")

    def process_signal(self, signal: Signal) -> Outcome:
        result = self._fn(signal)
        if isinstance(result, Outcome):
            return result
        return Outcome.done(result)

    def __repr__(self) -> str:
        return f"FunctionAction({self.name})"


class IdempotentAction(Action):
    """Deduplicating wrapper: redeliveries return the cached outcome.

    Signals are keyed by ``delivery_id``.  Unstamped signals (delivery_id
    None) pass straight through — the coordinator always stamps, so those
    only occur when an action is invoked outside a coordinator.
    """

    def __init__(self, inner: Action) -> None:
        self.inner = inner
        self._seen: Dict[str, Outcome] = {}
        self.duplicates_suppressed = 0

    def process_signal(self, signal: Signal) -> Outcome:
        key = signal.delivery_id
        if key is None:
            return self.inner.process_signal(signal)
        if key in self._seen:
            self.duplicates_suppressed += 1
            return self._seen[key]
        outcome = self.inner.process_signal(signal)
        self._seen[key] = outcome
        return outcome


class RecordingAction(Action):
    """Remembers received signals; replies with a fixed or computed outcome."""

    def __init__(
        self,
        name: str = "recorder",
        reply: Optional[Callable[[Signal], Outcome]] = None,
    ) -> None:
        self.name = name
        self.received: List[Signal] = []
        self._reply = reply

    def process_signal(self, signal: Signal) -> Outcome:
        self.received.append(signal)
        if self._reply is not None:
            return self._reply(signal)
        return Outcome.done()

    @property
    def signal_names(self) -> List[str]:
        return [signal.signal_name for signal in self.received]

    def __repr__(self) -> str:
        return f"RecordingAction({self.name}, {len(self.received)} signals)"


class ScriptedAction(Action):
    """Replies per-signal-name from a script dict; errors on demand.

    ``script`` maps signal_name → Outcome, callable, or an Exception
    instance to raise.  Unknown signals get ``Outcome.done()``.
    """

    def __init__(self, script: Dict[str, Any], name: str = "scripted") -> None:
        self.script = script
        self.name = name
        self.received: List[Signal] = []

    def process_signal(self, signal: Signal) -> Outcome:
        self.received.append(signal)
        entry = self.script.get(signal.signal_name)
        if entry is None:
            return Outcome.done()
        if isinstance(entry, BaseException):
            raise entry
        if callable(entry):
            entry = entry(signal)
        if not isinstance(entry, Outcome):
            raise ActionError(
                f"scripted reply for {signal.signal_name!r} is not an Outcome"
            )
        return entry
