"""Recoverable transactional objects.

The paper assumes services whose state is manipulated under transactions
(bulletin boards, booking services, name servers).  This module provides
the building block those applications use: a :class:`TransactionalCell` —
one lockable, recoverable unit of state with:

- strict two-phase read/write locking through the factory's lock manager;
- per-transaction workspaces (deferred update), merged upward when a
  subtransaction commits (the retained-resources model);
- two-phase commit participation with presumed-abort recovery: prepared
  values are staged in an object store, so a crash between prepare and
  commit is resolved by the recovery manager from the store + WAL;
- idempotent phase-two operations, as recovery may replay them.

A :class:`RecoverableRegistry` maps recovery keys to live cells so the
recovery manager can find participants again after a restart.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.ots.coordinator import Transaction
from repro.ots.exceptions import TransactionRequired
from repro.ots.locks import LockConflict, LockMode
from repro.ots.resource import Resource, SubtransactionAwareResource
from repro.ots.status import Vote
from repro.persistence.object_store import ObjectStore


class Recoverable(abc.ABC):
    """What the recovery manager needs from a durable participant."""

    @abc.abstractmethod
    def recover_commit(self, tid: str) -> bool:
        """Re-apply the commit for ``tid`` if still pending.  Idempotent."""

    @abc.abstractmethod
    def recover_abort(self, tid: str) -> bool:
        """Discard any prepared-but-undecided state for ``tid``."""

    @abc.abstractmethod
    def list_in_doubt(self) -> List[str]:
        """Transaction ids with prepared state awaiting an outcome."""


class RecoverableRegistry:
    """recovery-key → recoverable object map for one deployment."""

    def __init__(self) -> None:
        self._objects: Dict[str, Recoverable] = {}

    def register(self, key: str, obj: Recoverable) -> None:
        self._objects[key] = obj

    def resolve(self, key: str) -> Optional[Recoverable]:
        return self._objects.get(key)

    def keys(self) -> Tuple[str, ...]:
        return tuple(sorted(self._objects))

    def all_objects(self) -> List[Recoverable]:
        return [self._objects[key] for key in self.keys()]


class TransactionalCell(Recoverable):
    """One unit of transactional, lockable, recoverable state."""

    def __init__(
        self,
        key: str,
        initial: Any,
        factory: Any,
        store: Optional[ObjectStore] = None,
        registry: Optional[RecoverableRegistry] = None,
    ) -> None:
        self.key = key
        self.factory = factory
        self.store = store
        self._committed = initial
        self._workspaces: Dict[str, Any] = {}
        self._prepared: Dict[str, Any] = {}
        self._enlisted_top: Set[str] = set()
        self._enlisted_sub: Set[str] = set()
        if store is not None and store.contains(self._state_key()):
            self._committed = store.get(self._state_key())
        if store is not None:
            # Durable intention records left by a previous incarnation are
            # still-held write locks: the prepared transaction's outcome is
            # undecided, so its lock must be re-established here even though
            # the lock manager's in-memory state died with the old process.
            prefix = f"prepared:{self.key}:"
            for stored in store.keys():
                if stored.startswith(prefix):
                    self._prepared.setdefault(
                        stored[len(prefix):], store.get(stored)
                    )
        if registry is not None:
            registry.register(key, self)

    # -- store keys ----------------------------------------------------------

    def _state_key(self) -> str:
        return f"cell:{self.key}"

    def _prepared_key(self, tid: str) -> str:
        return f"prepared:{self.key}:{tid}"

    # -- application interface --------------------------------------------------

    def read(self, tx: Optional[Transaction] = None) -> Any:
        """Read under ``tx`` (or the committed value when tx is None)."""
        if tx is None:
            return self._committed
        self._check_in_doubt(tx, LockMode.READ)
        self.factory.lock_manager.acquire(tx, self.key, LockMode.READ)
        self._touch(tx)
        cursor: Optional[Transaction] = tx
        while cursor is not None:
            if cursor.tid in self._workspaces:
                return self._workspaces[cursor.tid]
            cursor = cursor.parent
        return self._committed

    def write(self, tx: Optional[Transaction], value: Any) -> None:
        """Buffer ``value`` in the transaction's workspace."""
        if tx is None:
            raise TransactionRequired(f"write to cell {self.key!r} outside a transaction")
        self._check_in_doubt(tx, LockMode.WRITE)
        self.factory.lock_manager.acquire(tx, self.key, LockMode.WRITE)
        self._touch(tx)
        self._workspaces[tx.tid] = value

    @property
    def committed_value(self) -> Any:
        return self._committed

    def is_locked(self) -> bool:
        return bool(self.factory.lock_manager.holders(self.key))

    def _check_in_doubt(self, tx: Transaction, mode: LockMode) -> None:
        """Block access while another transaction's intention is in doubt.

        A prepared-but-undecided value is neither the old state nor the
        new one.  While the preparing process is alive its write lock
        blocks conflicting access; after a crash-restart the lock
        manager's memory is gone but the intention record in the store
        is not, so strict two-phase locking has to be enforced from the
        durable record itself — otherwise a later transaction could
        commit over the cell and the eventual ``recover_commit`` would
        stomp it with the stale prepared snapshot.
        """
        top = tx.top_level.tid
        holders = [tid for tid in self._prepared if tid != top]
        if holders:
            raise LockConflict(self.key, mode, sorted(holders))

    # -- enlistment -----------------------------------------------------------------

    def _touch(self, tx: Transaction) -> None:
        top = tx.top_level
        if top.tid not in self._enlisted_top:
            top.register_resource(_CellResource(self, top), recovery_key=self.key)
            self._enlisted_top.add(top.tid)
        cursor = tx
        while cursor.parent is not None:
            if cursor.tid not in self._enlisted_sub:
                cursor.register_subtran_aware(_CellSubtransactionResource(self, cursor))
                self._enlisted_sub.add(cursor.tid)
            cursor = cursor.parent

    # -- nested completion ---------------------------------------------------------

    def _merge_to_parent(self, child: Transaction, parent: Transaction) -> None:
        if child.tid in self._workspaces:
            self._workspaces[parent.tid] = self._workspaces.pop(child.tid)
        self._enlisted_sub.discard(child.tid)

    def _discard(self, tx: Transaction) -> None:
        self._workspaces.pop(tx.tid, None)
        self._enlisted_sub.discard(tx.tid)

    # -- top-level completion (driven by _CellResource) -------------------------------

    def _prepare(self, tid: str) -> Vote:
        if tid not in self._workspaces:
            self._enlisted_top.discard(tid)
            return Vote.READONLY
        staged = self._workspaces[tid]
        self._prepared[tid] = staged
        if self.store is not None:
            self.store.put(self._prepared_key(tid), staged)
        return Vote.COMMIT

    def _commit(self, tid: str) -> None:
        if tid in self._prepared:
            self._install(tid, self._prepared.pop(tid))
        elif self.store is not None and self.store.contains(self._prepared_key(tid)):
            # Recovery path: the in-memory stage was lost in a crash.
            self._install(tid, self.store.get(self._prepared_key(tid)))

    def _install(self, tid: str, value: Any) -> None:
        self._committed = value
        self._workspaces.pop(tid, None)
        self._prepared.pop(tid, None)
        self._enlisted_top.discard(tid)
        if self.store is not None:
            self.store.put(self._state_key(), value)
            if self.store.contains(self._prepared_key(tid)):
                self.store.remove(self._prepared_key(tid))

    def _rollback(self, tid: str) -> None:
        self._workspaces.pop(tid, None)
        self._prepared.pop(tid, None)
        self._enlisted_top.discard(tid)
        if self.store is not None and self.store.contains(self._prepared_key(tid)):
            self.store.remove(self._prepared_key(tid))

    def _commit_one_phase(self, tid: str) -> None:
        if tid in self._workspaces:
            self._install(tid, self._workspaces.pop(tid))

    # -- Recoverable ----------------------------------------------------------------

    def recover_commit(self, tid: str) -> bool:
        if self.store is not None and self.store.contains(self._prepared_key(tid)):
            self._install(tid, self.store.get(self._prepared_key(tid)))
            return True
        if tid in self._prepared:
            self._install(tid, self._prepared.pop(tid))
            return True
        return False

    def recover_abort(self, tid: str) -> bool:
        had = tid in self._prepared or (
            self.store is not None and self.store.contains(self._prepared_key(tid))
        )
        self._rollback(tid)
        return had

    def list_in_doubt(self) -> List[str]:
        in_doubt = set(self._prepared)
        if self.store is not None:
            prefix = f"prepared:{self.key}:"
            for stored in self.store.keys():
                if stored.startswith(prefix):
                    in_doubt.add(stored[len(prefix):])
        return sorted(in_doubt)

    def __repr__(self) -> str:
        return f"TransactionalCell({self.key!r}={self._committed!r})"


class _CellResource(Resource):
    """Two-phase participant for one (cell, top-level transaction) pair."""

    def __init__(self, cell: TransactionalCell, top: Transaction) -> None:
        self.cell = cell
        self.top = top

    def prepare(self) -> Vote:
        return self.cell._prepare(self.top.tid)

    def commit(self) -> None:
        self.cell._commit(self.top.tid)

    def rollback(self) -> None:
        self.cell._rollback(self.top.tid)

    def commit_one_phase(self) -> None:
        self.cell._commit_one_phase(self.top.tid)

    def forget(self) -> None:
        pass


class _CellSubtransactionResource(SubtransactionAwareResource):
    """Merges or discards a nested transaction's workspace on completion."""

    def __init__(self, cell: TransactionalCell, tx: Transaction) -> None:
        self.cell = cell
        self.tx = tx

    def commit_subtransaction(self, parent: Transaction) -> None:
        self.cell._merge_to_parent(self.tx, parent)

    def rollback_subtransaction(self) -> None:
        self.cell._discard(self.tx)
