"""Sagas [Garcia-Molina & Salem 1987] on the Activity Service.

A saga is a sequence of independent (sub-)transactions T1…Tn, each with a
compensating transaction C1…Cn.  If Tk fails, the saga runs
C(k-1)…C1 in *reverse* order, undoing the committed prefix.

The paper names Sagas as the canonical model a compensation SignalSet
serves ("if a Sagas type model is in use then a compensation Signal may
be required to be sent to Actions if a failure has happened", §3.2.3).
The mapping here:

- each completed step registers a compensation Action with the saga
  activity's compensation SignalSet;
- on failure, the :class:`SagaCompensationSignalSet` emits one
  ``compensate`` signal *per completed step, newest first*; each signal
  names its target step so only that step's action performs work — this
  is how reverse ordering is expressed without touching the coordinator's
  registration-order broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.action import Action
from repro.core.activity import Activity
from repro.core.signal_set import SignalSet
from repro.core.signals import Outcome, Signal
from repro.core.status import CompletionStatus
from repro.exceptions import ReproError

COMPENSATION_SET = "saga.compensation"
SIGNAL_COMPENSATE = "compensate"
SIGNAL_FORGET = "forget"
OUTCOME_COMPENSATED = "compensated"
OUTCOME_NOT_MINE = "not-mine"
OUTCOME_FORGOTTEN = "forgotten"


class SagaAbortedError(ReproError):
    """The saga failed and its completed prefix was compensated."""

    def __init__(self, failed_step: str, compensated: List[str]) -> None:
        super().__init__(
            f"saga aborted at step {failed_step!r}; compensated {compensated}"
        )
        self.failed_step = failed_step
        self.compensated = compensated


@dataclass
class SagaStep:
    name: str
    work: Callable[[Dict[str, Any]], Any]
    compensation: Optional[Callable[[Dict[str, Any]], Any]] = None


@dataclass
class SagaResult:
    completed: List[str] = field(default_factory=list)
    compensated: List[str] = field(default_factory=list)
    failed_step: Optional[str] = None
    outputs: Dict[str, Any] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        return self.failed_step is None


class SagaCompensationSignalSet(SignalSet):
    """Emits per-step compensate signals in reverse completion order.

    On success (completion status SUCCESS) it instead emits a single
    ``forget`` signal so actions can discard their compensation records.
    """

    def __init__(self, completed_steps: List[str]) -> None:
        self.signal_set_name = COMPENSATION_SET
        self._queue: List[str] = list(reversed(completed_steps))
        self._position = -1
        self._forget_sent = False
        self.responses: List[Tuple[str, Outcome]] = []

    def get_signal(self) -> Tuple[Optional[Signal], bool]:
        if self.get_completion_status() is CompletionStatus.SUCCESS:
            if self._forget_sent:
                return None, True
            self._forget_sent = True
            return Signal(SIGNAL_FORGET, self.signal_set_name), True
        self._position += 1
        if self._position >= len(self._queue):
            return None, True
        step = self._queue[self._position]
        last = self._position == len(self._queue) - 1
        return (
            Signal(
                SIGNAL_COMPENSATE,
                self.signal_set_name,
                application_specific_data={"step": step},
            ),
            last,
        )

    def set_response(self, response: Outcome) -> bool:
        current = (
            SIGNAL_FORGET
            if self._forget_sent
            else self._queue[self._position]
            if 0 <= self._position < len(self._queue)
            else "?"
        )
        self.responses.append((current, response))
        return False

    def get_outcome(self) -> Outcome:
        compensated = sorted(
            {
                step
                for step, response in self.responses
                if response.name == OUTCOME_COMPENSATED
            }
        )
        if self.get_completion_status() is CompletionStatus.SUCCESS:
            return Outcome.done(data=compensated)
        return Outcome.of("saga.compensated", data=compensated)


class _StepCompensationAction(Action):
    """Performs one step's compensation when its own signal arrives."""

    def __init__(self, saga: "Saga", step: SagaStep) -> None:
        self.saga = saga
        self.step = step
        self.name = f"compensate:{step.name}"
        self.compensated = False

    def process_signal(self, signal: Signal) -> Outcome:
        if signal.signal_name == SIGNAL_FORGET:
            return Outcome.of(OUTCOME_FORGOTTEN)
        if signal.signal_name != SIGNAL_COMPENSATE:
            return Outcome.error(data=f"unexpected signal {signal.signal_name}")
        target = (signal.application_specific_data or {}).get("step")
        if target != self.step.name:
            return Outcome.of(OUTCOME_NOT_MINE)
        if not self.compensated and self.step.compensation is not None:
            self.step.compensation(self.saga.context)
            self.compensated = True
            self.saga.result.compensated.append(self.step.name)
        return Outcome.of(OUTCOME_COMPENSATED)


class Saga:
    """Sequential saga executor over the Activity Service.

    ``executor`` (optional) routes the compensation sweep's per-signal
    fan-out through a specific
    :class:`~repro.core.broadcast.BroadcastExecutor` instead of the
    manager-wide default — a thread-pool executor overlaps the
    not-mine/compensated replies of all registered step actions while
    preserving the serial sweep's logical trace and reverse ordering
    (the per-step signals themselves stay sequential by construction).
    """

    def __init__(
        self, manager: Any, name: str = "saga", executor: Optional[Any] = None
    ) -> None:
        self.manager = manager
        self.name = name
        self.executor = executor
        self.steps: List[SagaStep] = []
        self.context: Dict[str, Any] = {"results": {}}
        self.result = SagaResult()
        self.activity: Optional[Activity] = None

    def add_step(
        self,
        name: str,
        work: Callable[[Dict[str, Any]], Any],
        compensation: Optional[Callable[[Dict[str, Any]], Any]] = None,
    ) -> "Saga":
        self.steps.append(SagaStep(name=name, work=work, compensation=compensation))
        return self

    def run(self, raise_on_abort: bool = False) -> SagaResult:
        """Execute steps; compensate the completed prefix on failure."""
        self.result = SagaResult()
        begin_kwargs = {"executor": self.executor} if self.executor is not None else {}
        self.activity = self.manager.begin(name=f"saga:{self.name}", **begin_kwargs)
        failed: Optional[str] = None
        for step in self.steps:
            try:
                output = step.work(self.context)
            except Exception:  # noqa: BLE001 - step failure triggers compensation
                failed = step.name
                break
            self.result.completed.append(step.name)
            self.result.outputs[step.name] = output
            self.context["results"][step.name] = output
            if step.compensation is not None:
                self.activity.add_action(
                    COMPENSATION_SET, _StepCompensationAction(self, step)
                )
        compensation_set = SagaCompensationSignalSet(
            [
                name
                for name in self.result.completed
                if self._step(name).compensation is not None
            ]
        )
        self.activity.register_signal_set(compensation_set, completion=True)
        if failed is None:
            self.activity.complete(CompletionStatus.SUCCESS)
        else:
            self.result.failed_step = failed
            self.activity.complete(CompletionStatus.FAIL)
            if raise_on_abort:
                raise SagaAbortedError(failed, list(self.result.compensated))
        return self.result

    def _step(self, name: str) -> SagaStep:
        for step in self.steps:
            if step.name == name:
                return step
        raise KeyError(name)
