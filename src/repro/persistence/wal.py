"""Write-ahead log.

The OTS coordinator logs its commit decision here before telling resources
to commit (presumed-abort protocol), and the activity recovery manager
logs activity-structure checkpoints.  Records are applied to an underlying
:class:`~repro.persistence.object_store.ObjectStore` so they share the
library's stable-storage model.

Records are append-only with monotonically increasing LSNs.  A log can be
reopened over the same store after a simulated crash; everything appended
(and forced) before the crash is still there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.exceptions import InvalidStateError
from repro.persistence.object_store import MemoryStore, ObjectStore


@dataclass(frozen=True)
class LogRecord:
    """One durable log entry."""

    lsn: int
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)


class WriteAheadLog:
    """Append-only durable record list over an object store.

    Writes are forced (durable) by default.  ``append_volatile`` +
    ``force`` exist so benchmarks can measure the cost of group forcing,
    and so crash tests can demonstrate loss of unforced records.
    """

    _META_KEY = "wal:meta"

    def __init__(self, store: Optional[ObjectStore] = None, name: str = "wal") -> None:
        self._store = store if store is not None else MemoryStore()
        self._name = name
        self._volatile: List[LogRecord] = []
        self.forces = 0
        meta = self._store.get_or(self._meta_key(), {"next_lsn": 1, "lsns": []})
        self._next_lsn: int = meta["next_lsn"]
        self._durable_lsns: List[int] = list(meta["lsns"])

    def _meta_key(self) -> str:
        return f"{self._name}:{self._META_KEY}"

    def _record_key(self, lsn: int) -> str:
        return f"{self._name}:rec:{lsn:012d}"

    # -- appending ----------------------------------------------------------

    def append(self, kind: str, **payload: Any) -> LogRecord:
        """Append and immediately force a record."""
        record = self.append_volatile(kind, **payload)
        self.force()
        return record

    def append_volatile(self, kind: str, **payload: Any) -> LogRecord:
        """Append a record that is lost on crash until :meth:`force` runs."""
        record = LogRecord(lsn=self._next_lsn, kind=kind, payload=payload)
        self._next_lsn += 1
        self._volatile.append(record)
        return record

    def force(self) -> None:
        """Flush all volatile records to stable storage."""
        if not self._volatile:
            return
        for record in self._volatile:
            self._store.put(
                self._record_key(record.lsn),
                {"lsn": record.lsn, "kind": record.kind, "payload": record.payload},
            )
            self._durable_lsns.append(record.lsn)
        self._volatile.clear()
        self._write_meta()
        self.forces += 1

    def _write_meta(self) -> None:
        self._store.put(
            self._meta_key(), {"next_lsn": self._next_lsn, "lsns": self._durable_lsns}
        )

    # -- reading ------------------------------------------------------------

    def records(self) -> List[LogRecord]:
        """All durable records in LSN order (volatile tail excluded)."""
        result = []
        for lsn in self._durable_lsns:
            raw = self._store.get(self._record_key(lsn))
            result.append(
                LogRecord(lsn=raw["lsn"], kind=raw["kind"], payload=raw["payload"])
            )
        return result

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self.records())

    def __len__(self) -> int:
        return len(self._durable_lsns)

    def of_kind(self, *kinds: str) -> List[LogRecord]:
        wanted = set(kinds)
        return [record for record in self.records() if record.kind in wanted]

    # -- truncation ----------------------------------------------------------

    def truncate(self, up_to_lsn: int) -> int:
        """Discard durable records with ``lsn <= up_to_lsn``; return count."""
        kept: List[int] = []
        dropped = 0
        for lsn in self._durable_lsns:
            if lsn <= up_to_lsn:
                self._store.remove(self._record_key(lsn))
                dropped += 1
            else:
                kept.append(lsn)
        self._durable_lsns = kept
        self._write_meta()
        return dropped

    # -- crash simulation ------------------------------------------------------

    def crash(self) -> None:
        """Drop the volatile tail, as a machine crash would."""
        self._volatile.clear()

    def reopen(self) -> "WriteAheadLog":
        """Return a fresh log handle over the same store (post-restart)."""
        if self._volatile:
            raise InvalidStateError("reopen with unforced records; crash() first")
        return WriteAheadLog(self._store, self._name)

    @property
    def store(self) -> ObjectStore:
        return self._store
