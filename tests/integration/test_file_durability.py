"""Integration: crash recovery with *file-backed* stable storage.

The in-memory store stands in for stable storage in most tests; here the
same recovery paths run against real files on disk, proving the WAL and
cell staging survive a full process-style teardown (fresh objects, same
directory).
"""

import pytest

from repro.core import ActivityManager, CompletionSignalSet, CompletionStatus, RecordingAction
from repro.ots import (
    RecoverableRegistry,
    RecoveryManager,
    SimulatedCrash,
    TransactionFactory,
    TransactionalCell,
)
from repro.persistence import FileStore, WriteAheadLog


class TestFileBackedOts:
    def test_commit_survives_reopen(self, tmp_path):
        store = FileStore(str(tmp_path / "cells"))
        factory = TransactionFactory(
            wal=WriteAheadLog(FileStore(str(tmp_path / "wal")), "txlog")
        )
        cell = TransactionalCell("balance", 100, factory, store=store)
        tx = factory.create()
        cell.write(tx, 250)
        other = TransactionalCell("other", 0, factory, store=store)
        other.write(tx, 1)
        tx.commit()
        # Fresh objects over the same directory.
        reopened = TransactionalCell(
            "balance", 0, TransactionFactory(), store=FileStore(str(tmp_path / "cells"))
        )
        assert reopened.read() == 250

    def test_crash_recovery_from_disk(self, tmp_path):
        wal_store = FileStore(str(tmp_path / "wal"))
        cell_store = FileStore(str(tmp_path / "cells"))
        factory = TransactionFactory(wal=WriteAheadLog(wal_store, "txlog"))
        registry = RecoverableRegistry()
        a = TransactionalCell("a", 0, factory, store=cell_store, registry=registry)
        b = TransactionalCell("b", 0, factory, store=cell_store, registry=registry)
        tx = factory.create()
        a.write(tx, 7)
        b.write(tx, 8)
        factory.failpoints.arm("after_commit_log")
        with pytest.raises(SimulatedCrash):
            tx.commit()

        # Full restart: everything rebuilt from the directories.
        fresh_factory = TransactionFactory(
            wal=WriteAheadLog(FileStore(str(tmp_path / "wal")), "txlog")
        )
        fresh_registry = RecoverableRegistry()
        fresh_a = TransactionalCell(
            "a", 0, fresh_factory, store=FileStore(str(tmp_path / "cells")),
            registry=fresh_registry,
        )
        fresh_b = TransactionalCell(
            "b", 0, fresh_factory, store=FileStore(str(tmp_path / "cells")),
            registry=fresh_registry,
        )
        report = RecoveryManager(fresh_factory.wal, fresh_registry).recover()
        assert report.recommitted
        assert fresh_a.read() == 7
        assert fresh_b.read() == 8

    def test_presumed_abort_from_disk(self, tmp_path):
        wal_store = FileStore(str(tmp_path / "wal"))
        cell_store = FileStore(str(tmp_path / "cells"))
        factory = TransactionFactory(wal=WriteAheadLog(wal_store, "txlog"))
        registry = RecoverableRegistry()
        cell = TransactionalCell("c", 5, factory, store=cell_store, registry=registry)
        tx = factory.create()
        cell.write(tx, 99)
        other = TransactionalCell("d", 0, factory, store=cell_store, registry=registry)
        other.write(tx, 1)
        factory.failpoints.arm("before_commit_log")
        with pytest.raises(SimulatedCrash):
            tx.commit()

        fresh_registry = RecoverableRegistry()
        fresh_cell = TransactionalCell(
            "c", 5, TransactionFactory(), store=FileStore(str(tmp_path / "cells")),
            registry=fresh_registry,
        )
        RecoveryManager(
            WriteAheadLog(FileStore(str(tmp_path / "wal")), "txlog"), fresh_registry
        ).recover()
        assert fresh_cell.read() == 5
        assert fresh_cell.list_in_doubt() == []


class TestFileBackedActivityRecovery:
    def test_activity_structure_from_disk(self, tmp_path):
        store_dir = str(tmp_path / "activities")

        def build_manager():
            manager = ActivityManager(store=FileStore(store_dir))
            manager.register_signal_set_factory("completion", CompletionSignalSet)
            manager.register_action_factory(
                "recorder", lambda config: RecordingAction(config.get("name", "r"))
            )
            return manager

        manager = build_manager()
        activity = manager.begin("durable-job")
        activity.register_signal_set(
            CompletionSignalSet(), completion=True, factory_name="completion"
        )
        activity.add_action(
            "repro.predefined.completion",
            RecordingAction(),
            factory_name="recorder",
            factory_config={"name": "r"},
        )
        manager.checkpoint(activity)

        fresh = build_manager()
        in_flight = fresh.recover()
        assert in_flight == [activity.activity_id]
        outcome = fresh.get(activity.activity_id).complete(CompletionStatus.SUCCESS)
        assert outcome.is_done
