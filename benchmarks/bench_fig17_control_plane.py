"""Figure 17 (extension) — control-plane cost vs live-activity population.

Not a figure from the paper: §3.4 has the Activity Service police
activity timeouts and track every live activity centrally, and the
reference implementation does both naively — ``expire_timeouts``
linearly sweeps *all* live activities and the registry is one flat
dict.  This bench measures the two control-plane scaling levers added
on top:

- the hashed hierarchical timer wheel (``ActivityManager(timer_wheel=True)``):
  sweep cost becomes proportional to the timers actually *expiring*
  instead of the live population — asserted roughly flat as the
  population grows while the naive sweep grows linearly;
- the striped registry (``registry_shards=N``): concurrent
  begin/complete throughput must not collapse onto a single dict lock
  as threads are added.

Expiry behaviour is asserted identical between the naive sweep and the
wheel (same expired ids, same number of FAIL_ONLY latches), and the
wheel stays off by default everywhere figure traces are asserted — no
other bench's event sequences change.

Results are written both human-readably (``results/fig17.txt``) and as
JSON (``results/BENCH_fig17.json``, uploaded as a CI artifact) so the
perf trajectory is tracked across PRs.

Quick mode (``BENCH_QUICK=1``) shrinks the sweep for CI smoke runs.
"""

import json
import os
import threading
import time

import pytest

from repro.core import ActivityManager
from repro.core.status import CompletionStatus
from repro.util.events import EventLog

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")
POPULATIONS = [1_000, 10_000] if QUICK else [1_000, 10_000, 100_000]
EXPIRY_FRACTIONS = [0.01] if QUICK else [0.01, 0.10]
THREAD_COUNTS = [1, 8] if QUICK else [1, 2, 8]
OPS_PER_THREAD = 300 if QUICK else 1_500
LONG_TIMEOUT = 1_000_000.0
SHORT_TIMEOUT = 5.0


def build_manager(population, expiring, use_wheel):
    """A manager holding ``population`` live activities, ``expiring`` of
    which are due shortly; tracing bounded so setup stays O(population)."""
    manager = ActivityManager(
        event_log=EventLog(max_events=4_096),
        timer_wheel=use_wheel,
        registry_shards=16,
    )
    for _ in range(population - expiring):
        manager.begin(timeout=LONG_TIMEOUT)
    for _ in range(expiring):
        manager.begin(timeout=SHORT_TIMEOUT)
    return manager


def time_noop_sweeps(manager, repeats):
    """Per-sweep cost of policing timeouts when nothing is due."""
    begin = time.perf_counter()
    for _ in range(repeats):
        assert manager.expire_timeouts() == []
    return (time.perf_counter() - begin) / repeats


class TestFig17SweepCost:
    def test_sweep_cost_flat_under_wheel(self, emit):
        fraction = EXPIRY_FRACTIONS[0]
        rows = []
        for population in POPULATIONS:
            expiring = max(1, int(population * fraction))
            repeats = max(5, 100_000 // population)
            naive = build_manager(population, expiring, use_wheel=False)
            wheel = build_manager(population, expiring, use_wheel=True)
            for manager in (naive, wheel):
                manager.clock.advance(1.0)  # nothing due yet
            naive_noop = time_noop_sweeps(naive, repeats)
            wheel_noop = time_noop_sweeps(wheel, repeats)
            for manager in (naive, wheel):
                manager.clock.advance(SHORT_TIMEOUT)  # shorts strictly overdue
            begin = time.perf_counter()
            naive_expired = naive.expire_timeouts()
            naive_expiry = time.perf_counter() - begin
            begin = time.perf_counter()
            wheel_expired = wheel.expire_timeouts()
            wheel_expiry = time.perf_counter() - begin
            # Behaviour parity: identical expirations either way.
            assert len(naive_expired) == len(wheel_expired) == expiring
            assert set(naive_expired) == set(wheel_expired)
            for activity_id in wheel_expired:
                assert (
                    wheel.get(activity_id).get_completion_status()
                    is CompletionStatus.FAIL_ONLY
                )
            rows.append(
                {
                    "population": population,
                    "expiring": expiring,
                    "naive_noop_us": naive_noop * 1e6,
                    "wheel_noop_us": wheel_noop * 1e6,
                    "naive_expiry_ms": naive_expiry * 1e3,
                    "wheel_expiry_ms": wheel_expiry * 1e3,
                }
            )

        naive_ratio = rows[-1]["naive_noop_us"] / rows[0]["naive_noop_us"]
        wheel_ratio = rows[-1]["wheel_noop_us"] / rows[0]["wheel_noop_us"]
        population_ratio = rows[-1]["population"] / rows[0]["population"]
        emit(
            "fig17",
            [
                "fig 17 — expire_timeouts cost vs live population "
                f"({fraction:.0%} expiring):",
                "  population  naive_noop_us  wheel_noop_us  naive_expiry_ms  wheel_expiry_ms",
            ]
            + [
                f"  {row['population']:10d}  {row['naive_noop_us']:13.1f}"
                f"  {row['wheel_noop_us']:13.1f}  {row['naive_expiry_ms']:15.2f}"
                f"  {row['wheel_expiry_ms']:15.2f}"
                for row in rows
            ]
            + [
                f"  population grew {population_ratio:.0f}x: naive sweep "
                f"{naive_ratio:.1f}x slower, wheel {wheel_ratio:.1f}x"
            ],
        )
        _merge_json({"sweep_cost": rows, "naive_ratio": naive_ratio,
                     "wheel_ratio": wheel_ratio})
        # Acceptance: the naive sweep scales with population, the wheel
        # does not (generous bounds: timing under CI noise).
        assert naive_ratio > 3.0, "naive sweep should grow with population"
        assert wheel_ratio < naive_ratio / 2.0
        assert rows[-1]["wheel_noop_us"] < rows[-1]["naive_noop_us"]

    def test_expiry_fraction_sweep_parity(self, emit):
        """Across expiry fractions the wheel expires exactly the naive set."""
        population = POPULATIONS[0]
        lines = [f"fig 17 — expiry-fraction parity at population {population}:"]
        for fraction in EXPIRY_FRACTIONS:
            expiring = max(1, int(population * fraction))
            naive = build_manager(population, expiring, use_wheel=False)
            wheel = build_manager(population, expiring, use_wheel=True)
            for manager in (naive, wheel):
                manager.clock.advance(SHORT_TIMEOUT + 1.0)
            naive_expired = naive.expire_timeouts()
            wheel_expired = wheel.expire_timeouts()
            assert set(naive_expired) == set(wheel_expired)
            assert len(wheel_expired) == expiring
            # Second sweep reports nothing new in either mode.
            assert naive.expire_timeouts() == wheel.expire_timeouts() == []
            lines.append(
                f"  fraction {fraction:.0%}: {expiring} expired identically"
            )
        emit("fig17", lines)

    def test_bench_wheel_sweep_at_max_population(self, benchmark):
        manager = build_manager(
            POPULATIONS[-1], max(1, POPULATIONS[-1] // 100), use_wheel=True
        )
        manager.clock.advance(1.0)
        benchmark.pedantic(
            manager.expire_timeouts, rounds=1 if QUICK else 3, iterations=5
        )


class TestFig17RegistryThroughput:
    """begin / get / complete churn against the striped registry.

    The realistic hot path touches the registry far more often per
    activity than the two mutations: every interceptor hop and
    coordinator round re-associates a request with its activity via
    ``get``.  Under one coarse lock each of those lookups is a
    rendezvous — a holder preempted mid-section convoys every other
    thread into the futex slow path; striping confines a convoy to one
    segment.  (On a GIL interpreter the *mutation-only* path shows
    parity rather than speedup — the win scales with lookup share and
    with free-threaded builds.)
    """

    GETS_PER_ACTIVITY = 25

    def run_churn(self, shards, threads):
        manager = ActivityManager(
            event_log=EventLog(max_events=1_024), registry_shards=shards
        )
        errors = []

        def worker():
            try:
                for _ in range(OPS_PER_THREAD):
                    activity = manager.begin(timeout=LONG_TIMEOUT)
                    for _ in range(self.GETS_PER_ACTIVITY):
                        manager.get(activity.activity_id)
                    activity.complete()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        begin = time.perf_counter()
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        elapsed = time.perf_counter() - begin
        assert errors == []
        assert manager.begun == manager.completed == threads * OPS_PER_THREAD
        return (threads * OPS_PER_THREAD * (self.GETS_PER_ACTIVITY + 2)) / elapsed

    def run_best_of(self, shards, threads, rounds=3):
        import gc

        best = 0.0
        for _ in range(rounds):
            gc.collect()
            gc.disable()
            try:
                best = max(best, self.run_churn(shards, threads))
            finally:
                gc.enable()
        return best

    def test_sharded_begin_complete_throughput(self, emit):
        rounds = 2 if QUICK else 3
        rows = []
        for threads in THREAD_COUNTS:
            coarse = self.run_best_of(shards=1, threads=threads, rounds=rounds)
            sharded = self.run_best_of(shards=32, threads=threads, rounds=rounds)
            rows.append(
                {
                    "threads": threads,
                    "coarse_ops_s": coarse,
                    "sharded_ops_s": sharded,
                    "speedup": sharded / coarse,
                }
            )
        emit(
            "fig17",
            ["fig 17 — begin/get/complete throughput, 1 vs 32 registry shards"
             f" ({self.GETS_PER_ACTIVITY} lookups per activity, best of"
             f" {rounds}):",
             "  threads  coarse_ops_s  sharded_ops_s  speedup"]
            + [
                f"  {row['threads']:7d}  {row['coarse_ops_s']:12.0f}"
                f"  {row['sharded_ops_s']:13.0f}  {row['speedup']:6.2f}x"
                for row in rows
            ],
        )
        _merge_json({"registry_throughput": rows})
        # Full-churn throughput must never collapse under striping; the
        # speedup itself is reported, not asserted, because a GIL
        # interpreter time-slices begin/complete (nanosecond critical
        # sections) and scheduler noise at 8 threads swamps the margin —
        # the isolated-contention assertion lives in the lookup test
        # below.
        top = rows[-1]
        assert top["threads"] >= 8
        assert top["sharded_ops_s"] >= top["coarse_ops_s"] * 0.6

    def test_sharded_lookup_throughput_beats_coarse_lock(self, emit):
        """Isolate the contention the stripes remove: 8 threads hammering
        registry lookups.  One coarse lock degrades into futex handoffs
        (every acquisition of a held lock is a syscall plus a forced
        context switch); 32 stripes keep acquisitions uncontended on the
        atomic fast path.  This margin is stable even on a single-core
        host, where the begin/complete churn above is pure scheduler
        lottery."""
        import gc

        from repro.util.sharding import StripedMap

        threads = THREAD_COUNTS[-1]
        ops = 10_000 if QUICK else 30_000
        keys = [f"activity-{i}" for i in range(1024)]

        def run(shards):
            registry = StripedMap(shards=shards)
            for key in keys:
                registry.put(key, key)

            def worker(seed):
                for i in range(ops):
                    registry.get(keys[(i * 7 + seed) & 1023])

            pool = [
                threading.Thread(target=worker, args=(seed,))
                for seed in range(threads)
            ]
            gc.collect()
            gc.disable()
            try:
                begin = time.perf_counter()
                for thread in pool:
                    thread.start()
                for thread in pool:
                    thread.join()
                return (threads * ops) / (time.perf_counter() - begin)
            finally:
                gc.enable()

        rounds = 2 if QUICK else 3
        coarse = max(run(1) for _ in range(rounds))
        sharded = max(run(32) for _ in range(rounds))
        emit(
            "fig17",
            [f"fig 17 — registry lookup throughput at {threads} threads"
             f" (best of {rounds}):",
             f"  coarse lock: {coarse:12.0f} ops/s",
             f"  32 shards:   {sharded:12.0f} ops/s  ({sharded / coarse:.2f}x)"],
        )
        _merge_json(
            {"lookup_throughput": {
                "threads": threads,
                "coarse_ops_s": coarse,
                "sharded_ops_s": sharded,
                "speedup": sharded / coarse,
            }}
        )
        # Acceptance: striping improves contended lookup throughput at
        # ≥ 8 threads (observed 1.1–1.4x; 0.98 absorbs timer jitter).
        assert sharded >= coarse * 0.98


RESULTS_JSON = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_fig17.json"
)


def _merge_json(payload):
    os.makedirs(os.path.dirname(RESULTS_JSON), exist_ok=True)
    existing = {}
    if os.path.exists(RESULTS_JSON):
        try:
            with open(RESULTS_JSON) as handle:
                existing = json.load(handle)
        except (OSError, ValueError):
            existing = {}
    existing.update(payload)
    with open(RESULTS_JSON, "w") as handle:
        json.dump(existing, handle, indent=2, sort_keys=True)


@pytest.fixture(scope="module", autouse=True)
def _fresh_json():
    if os.path.exists(RESULTS_JSON):
        os.remove(RESULTS_JSON)
    yield
