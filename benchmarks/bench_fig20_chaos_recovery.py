"""Figure 20 (extension) — failure detection and recovery latency.

Not a figure from the paper: the paper (§6) describes the HLS/OTS
recovery architecture but reports no failure-injection measurements.
This bench puts numbers on the chaos-hardened runtime using the
in-process :class:`~repro.chaos.world.ChaosWorld` under a simulated
clock, which makes every metric a *deterministic* function of the seed —
the regression gate can hold them to tight tolerances no wall-clock
bench could sustain.

Three measurements:

- **time-to-detect**: crash a domain mid-conversation and count
  simulated seconds until the bridge's phi-accrual detector latches the
  link DOWN (client probes keep arriving at the pre-crash cadence);
- **time-to-readmit / time-to-recover**: restart the dead domain and
  measure seconds until the half-open probe re-admits the link, and —
  in a second scenario where the *coordinator* dies after logging a
  commit decision — until federated recovery drains the survivor's
  in-doubt subordinate and the world is quiet again;
- **goodput under faults**: committed fraction across a seeded campaign
  sweep, with failure detection on vs off.

Results land in ``results/fig20.txt`` and ``results/BENCH_fig20.json``
(gated by ``check_bench_regression.py``).  Everything runs under the
simulated clock, so there is no quick mode: the full sweep costs well
under a second of wall time.
"""

from repro.chaos import CampaignConfig, run_campaign
from repro.chaos.world import ChaosWorld
from repro.exceptions import ReproError
from repro.orb.membership import PeerState
from repro.ots import SimulatedCrash

SEED = 20
GOODPUT_SEEDS = range(6)
PROBE_TICK = 0.1
ROUND_TICK = 0.25


def probe_transfer(world, op_id, amount=1.0):
    """One A->B federated transfer; True on commit, False on any abort.

    Each probe feeds the bridge's failure detector exactly like real
    client traffic: a routed success is a heartbeat, a routed failure
    is an explicit strike.
    """
    domain = world.domain("A")
    try:
        domain.current.begin()
        domain.accounts["a0"].withdraw(op_id, amount)
        world.account_ref("A", "B", "b0").invoke("deposit", op_id, amount)
        domain.current.commit()
        return True
    except ReproError:
        try:
            domain.current.rollback()
        except ReproError:
            pass
        return False


def ping(world, source="A", target="B"):
    """A non-transactional balance read across the bridge.

    Transactional traffic alone cannot re-admit a DOWN link: the
    half-open allowance is spent on the outer request, and the target's
    nested superior-registration callback then fast-fails on the same
    latched link, failing the probe itself.  Re-admission needs plain
    pings — the same reason the site daemons run a dedicated heartbeat
    round.
    """
    try:
        world.account_ref(source, target, "b0").invoke("balance")
        return True
    except ReproError:
        return False


def measure_detection():
    """Crash B under steady client traffic; clock the DOWN latch, then
    the half-open re-admission after restart."""
    world = ChaosWorld(seed=SEED)
    for i in range(5):  # establish the observed heartbeat cadence
        assert probe_transfer(world, f"warm{i}")
        world.clock.advance(PROBE_TICK)

    world.crash("B")
    crashed_at = world.clock.now()
    probes = 0
    while world.bridge.link_state("A", "B") is not PeerState.DOWN:
        probe_transfer(world, f"down{probes}")
        probes += 1
        world.clock.advance(PROBE_TICK)
        assert probes < 200, "detector never latched DOWN"
    detect_s = world.clock.now() - crashed_at

    world.restart("B")
    restarted_at = world.clock.now()
    rounds = 0
    while world.bridge.link_state("A", "B") is not PeerState.ALIVE:
        world.clock.advance(ROUND_TICK)
        ping(world)
        rounds += 1
        assert rounds < 200, "link never re-admitted"
    readmit_s = world.clock.now() - restarted_at
    assert world.quiesce()
    assert world.total_committed() == world.expected_total()
    return detect_s, probes, readmit_s


def measure_recovery():
    """Kill the coordinator after votes are gathered but *before* the
    decision is logged; clock how long the survivor's prepared, in-doubt
    subordinate takes to drain once the coordinator reboots.

    The rebooted WAL holds no decision, so boot-time replay cannot
    settle the branch — it resolves only when the survivor's in-doubt
    poller asks the superior and hears the presumed abort.  (With
    ``after_commit_log`` instead, boot-time replay recommits the branch
    synchronously and the drain takes zero simulated seconds.)
    """
    world = ChaosWorld(seed=SEED)
    assert probe_transfer(world, "warm")
    domain = world.domain("A")
    domain.factory.failpoints.arm("before_commit_log")
    try:
        domain.current.begin()
        domain.accounts["a0"].withdraw("indoubt", 5.0)
        world.account_ref("A", "B", "b0").invoke("deposit", "indoubt", 5.0)
        domain.current.commit()
        raise AssertionError("failpoint did not fire")
    except SimulatedCrash:
        world.crash("A")
    assert not world.is_quiet()  # B holds a prepared, undecided branch

    world.restart("A")
    restarted_at = world.clock.now()
    rounds = 0
    while not world.is_quiet():
        world.clock.advance(ROUND_TICK)
        for name in world.domains:
            d = world.domain(name)
            if d.recovery_error is not None:
                d.try_recover()
            d.service.sweep_orphans(min_age=0.5)
            try:
                d.service.resolve_in_doubt()
            except ReproError:
                continue
        rounds += 1
        assert rounds < 200, "in-doubt state never drained"
    recover_s = world.clock.now() - restarted_at
    # No logged decision: presumed abort must win, and cleanly.
    assert world.total_committed() == world.expected_total()
    assert world.domain("B").accounts["b0"].committed_balance == 101.0
    return recover_s


def measure_goodput(failure_detection):
    committed = unknown = total = 0
    for seed in GOODPUT_SEEDS:
        result = run_campaign(
            seed, CampaignConfig(failure_detection=failure_detection)
        )
        counts = result.outcome_counts()
        committed += counts.get("committed", 0)
        unknown += counts.get("unknown", 0)
        total += len(result.ops)
    return committed / total, unknown, total


class TestFig20ChaosRecovery:
    def test_detection_recovery_and_goodput(self, emit):
        detect_s, detect_probes, readmit_s = measure_detection()
        recover_s = measure_recovery()
        goodput_on, unknown_on, total_on = measure_goodput(True)
        goodput_off, unknown_off, _ = measure_goodput(False)

        emit(
            "fig20",
            [
                "fig 20 — failure detection & recovery latency "
                "(simulated clock, deterministic):",
                f"  time-to-detect   {detect_s:6.2f} s"
                f"  ({detect_probes} failed probes to DOWN latch)",
                f"  time-to-readmit  {readmit_s:6.2f} s"
                "  (restart to half-open probe success)",
                f"  time-to-recover  {recover_s:6.2f} s"
                "  (coordinator reboot to in-doubt drained)",
                f"  goodput, fd on   {goodput_on:6.1%}"
                f"  ({unknown_on} unknown / {total_on} ops,"
                f" {len(list(GOODPUT_SEEDS))} seeds)",
                f"  goodput, fd off  {goodput_off:6.1%}"
                f"  ({unknown_off} unknown)",
            ],
            data={
                "detect_s": detect_s,
                "detect_probes": detect_probes,
                "readmit_s": readmit_s,
                "recover_s": recover_s,
                "goodput_fd_on": goodput_on,
                "goodput_fd_off": goodput_off,
                "unknown_fd_on": unknown_on,
                "campaign_ops": total_on,
            },
        )

        assert detect_s < 10.0
        assert recover_s < 10.0
        assert goodput_on > 0.4
