"""A real TCP transport behind the :class:`~repro.orb.transport.Transport` seam.

Where :class:`~repro.orb.transport.SimulatedTransport` carries marshalled
payloads between nodes of one process, this transport carries the *same
bytes* between OS processes, so federation and OTS interposition run
unchanged over a genuine network:

- **Framing** — every message is one length-prefixed frame::

      u32 length | u8 kind | u16 len + utf-8 source | u16 len + utf-8 target | payload

  Kinds: ``HELLO`` (identity exchange on dial), ``REQUEST`` (marshalled
  request bytes; ``source``/``target`` are node ids), ``REPLY_OK``
  (marshalled reply bytes), ``REPLY_ERR`` (JSON ``{"type", "message"}``
  revived to a typed exception client-side), ``CONTROL`` (JSON site-level
  operations: ping, node location).

- **Connection management** — one listener per transport (a *site*); a
  per-peer pool of dialed connections, each checked out exclusively for
  one synchronous request/reply round, so no sequence numbers or demux
  are needed (mirroring the blocking two-way CORBA invocation the
  simulated transport models).

- **Reconnect with backoff** — a failed dial or a connection that dies
  mid-round is retried against a fresh socket with exponential backoff;
  exhausted retries surface as :class:`CommunicationError` (and count as
  ``requests_dropped``), exactly what the invocation path and the 2PC
  retry logic already handle.  A request retried over a fresh connection
  may have executed on the peer — at-least-once delivery, the same
  visibility the fault plan's ``duplicate_probability`` models in
  simulation (phase operations are idempotent by design).

- **Stats parity** — the shared :class:`TransportStats` counters are
  filled the same way the simulated transport fills them, so a
  benchmark's simulated and socket runs compare like for like.

The transport is deliberately ORB-agnostic: the hosting runtime supplies
a request handler (``set_request_handler``) that dispatches into its
ORB, and a control handler for site-level operations.  Delivery routing:
``deliver`` dispatches locally when no peer is known to own the target
node, otherwise forwards the frame to the owning peer (ownership learned
from explicit registration or ``locate`` control queries).
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import threading
from typing import Any, Callable, ClassVar, Dict, List, Optional, Tuple

from repro.exceptions import (
    AdmissionRejected,
    CommunicationError,
    ConfigurationError,
    InvalidStateError,
    ObjectNotExist,
    OverloadError,
    TimeoutError_,
)
from repro.orb.transport import Transport, TransportStats
from repro.util.retry import RetryPolicy

PROTOCOL_VERSION = 1

KIND_HELLO = 1
KIND_REQUEST = 2
KIND_REPLY_OK = 3
KIND_REPLY_ERR = 4
KIND_CONTROL = 5

_HEADER = struct.Struct(">IB")
_MAX_FRAME = 64 * 1024 * 1024

# Typed errors that keep their identity across the wire; anything else
# degrades to CommunicationError (the safe answer for a caller deciding
# whether to retry or keep holding in-doubt state).
_WIRE_ERRORS = {
    exc.__name__: exc
    for exc in (
        CommunicationError,
        ConfigurationError,
        InvalidStateError,
        ObjectNotExist,
        OverloadError,
        AdmissionRejected,
        TimeoutError_,
    )
}


def _encode_frame(kind: int, source: str, target: str, payload: bytes) -> bytes:
    source_b = source.encode("utf-8")
    target_b = target.encode("utf-8")
    body = b"".join(
        (
            struct.pack(">H", len(source_b)),
            source_b,
            struct.pack(">H", len(target_b)),
            target_b,
            payload,
        )
    )
    return _HEADER.pack(len(body) + 1, kind) + body


def _recv_exact(sock: socket.socket, size: int) -> bytes:
    chunks: List[bytes] = []
    remaining = size
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _parse_frame_body(body: bytes) -> Tuple[str, str, bytes]:
    """Split a frame body into (source, target, payload).

    Shared by the blocking reader below and the asyncio accept loop —
    one parser, whatever moves the bytes."""
    src_len = struct.unpack_from(">H", body, 0)[0]
    source = body[2 : 2 + src_len].decode("utf-8")
    offset = 2 + src_len
    dst_len = struct.unpack_from(">H", body, offset)[0]
    target = body[offset + 2 : offset + 2 + dst_len].decode("utf-8")
    payload = body[offset + 2 + dst_len :]
    return source, target, payload


def _read_frame(sock: socket.socket) -> Tuple[int, str, str, bytes]:
    header = _recv_exact(sock, _HEADER.size)
    length, kind = _HEADER.unpack(header)
    if not 1 <= length <= _MAX_FRAME:
        raise ConnectionError(f"invalid frame length {length}")
    body = _recv_exact(sock, length - 1)
    source, target, payload = _parse_frame_body(body)
    return kind, source, target, payload


class _Connection:
    """One dialed connection, used exclusively for one round at a time."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock

    def round_trip(
        self, kind: int, source: str, target: str, payload: bytes
    ) -> Tuple[int, bytes]:
        self.sock.sendall(_encode_frame(kind, source, target, payload))
        reply_kind, _, _, reply_payload = _read_frame(self.sock)
        return reply_kind, reply_payload

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class SocketTransport(Transport):
    """Length-prefixed TCP request/reply between site processes.

    ``site_id`` names this endpoint in HELLO exchanges; ``bind``
    (host, port) is where :meth:`start` listens — port 0 picks a free
    port, readable from :attr:`address` afterwards.  Peers are added
    with :meth:`connect_peer` and dialed lazily on first use.

    ``accept_loop`` selects the server-side engine (PR 7 dispatch
    layer): ``"threads"`` (default) runs the historical
    thread-per-connection accept loop; ``"asyncio"`` serves every
    connection from one event-loop thread (frames read with
    ``readexactly``, handlers run on an executor so a blocking ORB
    dispatch never stalls the loop).  The wire protocol is identical —
    a threads client talks to an asyncio server and vice versa.
    """

    supports_fault_injection: ClassVar[bool] = False
    remote_capable: ClassVar[bool] = True

    def __init__(
        self,
        site_id: str,
        bind: Optional[Tuple[str, int]] = None,
        reconnect_attempts: int = 5,
        reconnect_base_delay: float = 0.05,
        connect_timeout: float = 5.0,
        request_timeout: float = 30.0,
        accept_loop: str = "threads",
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if accept_loop not in ("threads", "asyncio"):
            raise ConfigurationError(
                f"accept_loop must be 'threads' or 'asyncio', got {accept_loop!r}"
            )
        self.site_id = site_id
        self.bind = bind
        self.accept_loop = accept_loop
        self.stats = TransportStats()
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_base_delay = reconnect_base_delay
        # Reconnects follow the unified RetryPolicy: capped exponential
        # backoff *with jitter*, so the pool slots of many clients never
        # hammer a recovering peer in lockstep (PR 8).  The legacy
        # (attempts, base_delay) pair folds into a policy when no
        # explicit one is given.
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(
                max_attempts=reconnect_attempts,
                base_delay=reconnect_base_delay,
                max_delay=max(reconnect_base_delay, 2.0),
                jitter=0.5,
            )
        )
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self._quarantined: Dict[str, str] = {}
        self._peers: Dict[str, Tuple[str, int]] = {}
        self._node_homes: Dict[str, str] = {}
        self._idle: Dict[str, List[_Connection]] = {}
        self._lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._aio_loop: Optional[asyncio.AbstractEventLoop] = None
        self._aio_server: Optional[asyncio.AbstractServer] = None
        self._aio_thread: Optional[threading.Thread] = None
        self._server_conns: List[socket.socket] = []
        self._closed = False
        self._started = False
        self._request_handler: Optional[Callable[[str, bytes], bytes]] = None
        self._control_handler: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None
        self.address: Optional[Tuple[str, int]] = None
        # Codec negotiation (PR 10): off until enable_codec_negotiation
        # is called — HELLO payloads and all request bytes then stay
        # byte-identical to every prior release.
        self._codec_prefs: Optional[List[str]] = None
        self._codec_marshallers: Dict[str, Any] = {}
        self._local_codec = "legacy"
        self._peer_codecs: Dict[str, str] = {}
        self.codec_transcodes = 0
        # Inbound admission gate (PR 10): callable(peer_site) raising
        # OverloadError to shed a REQUEST frame before dispatch.
        self._inbound_gate: Optional[Callable[[Optional[str]], None]] = None

    # -- runtime wiring ----------------------------------------------------

    def set_request_handler(self, handler: Callable[[str, bytes], bytes]) -> None:
        """``handler(target_node, request_bytes) -> reply_bytes`` runs the
        server-side dispatch for frames arriving over the wire."""
        self._request_handler = handler

    def set_control_handler(
        self, handler: Callable[[Dict[str, Any]], Dict[str, Any]]
    ) -> None:
        """Handler for site-level CONTROL operations (JSON in/out)."""
        self._control_handler = handler

    def set_inbound_gate(
        self, gate: Optional[Callable[[Optional[str]], None]]
    ) -> None:
        """Install an admission gate over inbound REQUEST frames.

        ``gate(peer_site)`` runs before dispatch for every REQUEST frame
        (``peer_site`` is the connection's HELLO identity, or None for a
        pre-HELLO frame) and sheds by raising
        :class:`~repro.exceptions.OverloadError` — which travels back as
        a typed fast-fail REPLY_ERR, so well-behaved clients back off
        via their :class:`RetryPolicy`.  ``None`` uninstalls.
        """
        self._inbound_gate = gate

    def enable_codec_negotiation(
        self,
        preferences: List[str],
        marshallers: Dict[str, Any],
        local_codec: str = "legacy",
    ) -> None:
        """Advertise wire codecs on HELLO and transcode per peer (PR 10).

        ``preferences`` ranks the codecs this site is willing to speak
        (best first); ``marshallers`` maps each advertised codec name to
        a ready :class:`~repro.orb.marshal.Marshaller`; ``local_codec``
        is what the hosting ORB's own marshaller produces/expects.

        Negotiation is server-authoritative: the dialed side picks the
        first of *its* preferences present in the dialer's advertised
        list and announces the choice in its HELLO reply, so both ends
        always agree.  A peer that advertises nothing (a pre-PR-10
        build) is spoken to in ``"legacy"`` — mixed fleets upgrade one
        site at a time.  No mutual codec is a loud
        :class:`ConfigurationError`, never a silent mis-decode.

        When the negotiated wire codec differs from ``local_codec``,
        request/reply payloads are transcoded at this boundary
        (decode with one marshaller, re-encode with the other;
        :attr:`codec_transcodes` counts them).  Until this method is
        called nothing changes: HELLO bytes and request bytes are
        byte-identical to prior releases.
        """
        if not preferences:
            raise ConfigurationError("codec preferences must not be empty")
        missing = [name for name in preferences if name not in marshallers]
        if missing:
            raise ConfigurationError(
                f"no marshaller supplied for advertised codec(s) {missing}"
            )
        if local_codec not in marshallers:
            raise ConfigurationError(
                f"no marshaller supplied for local codec {local_codec!r}"
            )
        self._codec_prefs = list(preferences)
        self._codec_marshallers = dict(marshallers)
        self._local_codec = local_codec

    def _hello_payload(self) -> Dict[str, Any]:
        hello: Dict[str, Any] = {"version": PROTOCOL_VERSION, "site": self.site_id}
        if self._codec_prefs is not None:
            hello["codecs"] = list(self._codec_prefs)
        return hello

    def _negotiate_codec(self, advertised: Optional[List[str]]) -> str:
        """Server-side choice: first of our preferences the dialer speaks."""
        if advertised is None:
            # A legacy-era dialer: no advertisement means the historical
            # wire format.
            if "legacy" not in self._codec_marshallers:
                raise ConfigurationError(
                    f"site {self.site_id} no longer speaks 'legacy' but the"
                    f" peer advertised no codecs"
                )
            return "legacy"
        for name in self._codec_prefs or ():
            if name in advertised:
                return name
        raise ConfigurationError(
            f"no mutual wire codec: site {self.site_id} speaks"
            f" {self._codec_prefs}, peer advertised {advertised}"
        )

    def _transcode(self, data: bytes, src: str, dst: str) -> bytes:
        """Re-encode ``data`` from codec ``src`` to codec ``dst``."""
        if src == dst:
            return data
        value = self._codec_marshallers[src].decode(data)
        self.codec_transcodes += 1
        return self._codec_marshallers[dst].encode(value)

    def _wire_codec(self, peer_id: str) -> str:
        """The codec negotiated with ``peer_id`` (client side).

        Dials once to negotiate when the peer has not been spoken to
        yet; quarantined peers are not dialed (the subsequent round trip
        fast-fails anyway).
        """
        if self._codec_prefs is None:
            return self._local_codec
        known = self._peer_codecs.get(peer_id)
        if known is not None:
            return known
        if peer_id not in self._peers or self.is_quarantined(peer_id):
            return self._local_codec
        try:
            conn = self._checkout(peer_id)
        except (ConnectionError, OSError) as exc:
            raise CommunicationError(
                f"could not negotiate codec with peer {peer_id}: {exc}"
            )
        self._checkin(peer_id, conn)
        return self._peer_codecs.get(peer_id, self._local_codec)

    def peer_codec(self, peer_id: str) -> Optional[str]:
        """The negotiated wire codec for ``peer_id``, if known yet."""
        return self._peer_codecs.get(peer_id)

    def register_remote_node(self, node_id: str, peer_id: str) -> None:
        """Record that ``peer_id``'s process serves ``node_id``."""
        self._node_homes[node_id] = peer_id

    def node_home(self, node_id: str) -> Optional[str]:
        return self._node_homes.get(node_id)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        if self.bind is None:
            # A client-only transport: dials peers, accepts nothing.
            self._started = True
            return
        if self.accept_loop == "asyncio":
            self._start_asyncio_server()
            self._started = True
            return
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(self.bind)
        listener.listen(32)
        self._listener = listener
        self.address = listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"site-{self.site_id}-accept", daemon=True
        )
        self._started = True
        self._accept_thread.start()

    def close(self) -> None:
        self._closed = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        self._stop_asyncio_server()
        with self._lock:
            idle = [conn for conns in self._idle.values() for conn in conns]
            self._idle.clear()
            server_conns, self._server_conns = self._server_conns, []
        for conn in idle:
            conn.close()
        for sock in server_conns:
            try:
                sock.close()
            except OSError:
                pass

    def connect_peer(self, peer_id: str, address: Tuple[str, int]) -> None:
        self._peers[peer_id] = (address[0], int(address[1]))

    def peers(self) -> Tuple[str, ...]:
        return tuple(sorted(self._peers))

    # -- quarantine (failure-detector integration) -------------------------

    def quarantine(self, peer_id: str, reason: str = "failure detector") -> None:
        """Fast-fail requests to ``peer_id`` until :meth:`readmit`.

        A quarantined peer costs one typed :class:`CommunicationError`
        per request — no dial, no backoff, no pool-slot pile-up — which
        is what lets callers honour their deadline budgets while the
        membership layer waits for the peer to come back.
        """
        with self._lock:
            self._quarantined[peer_id] = reason

    def readmit(self, peer_id: str) -> None:
        """Lift the quarantine (the failure detector saw a heartbeat)."""
        with self._lock:
            self._quarantined.pop(peer_id, None)

    def quarantined(self) -> Dict[str, str]:
        with self._lock:
            return dict(self._quarantined)

    def is_quarantined(self, peer_id: str) -> bool:
        with self._lock:
            return peer_id in self._quarantined

    # -- server side (asyncio accept loop) ---------------------------------

    def _start_asyncio_server(self) -> None:
        loop = asyncio.new_event_loop()
        ready = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(loop)
            loop.call_soon(ready.set)
            loop.run_forever()

        thread = threading.Thread(
            target=run, name=f"site-{self.site_id}-aio", daemon=True
        )
        thread.start()
        ready.wait()
        host, port = self.bind
        server = asyncio.run_coroutine_threadsafe(
            asyncio.start_server(self._serve_asyncio_connection, host, port), loop
        ).result()
        self._aio_loop = loop
        self._aio_server = server
        self._aio_thread = thread
        self.address = server.sockets[0].getsockname()[:2]

    def _stop_asyncio_server(self) -> None:
        loop, server, thread = self._aio_loop, self._aio_server, self._aio_thread
        self._aio_loop = self._aio_server = self._aio_thread = None
        if loop is None:
            return

        async def shutdown() -> None:
            if server is not None:
                server.close()
                await server.wait_closed()

        try:
            asyncio.run_coroutine_threadsafe(shutdown(), loop).result(timeout=5.0)
        except Exception:
            pass
        loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=5.0)
        loop.close()

    async def _serve_asyncio_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Frames on one connection are processed sequentially (the
        # client checks a connection out exclusively per round, so
        # there is never a second in-flight request to pipeline); the
        # blocking ORB dispatch runs on the default executor so slow
        # handlers never stall other connections sharing the loop.
        loop = asyncio.get_event_loop()
        conn_state: Dict[str, Any] = {}
        try:
            while not self._closed:
                header = await reader.readexactly(_HEADER.size)
                length, kind = _HEADER.unpack(header)
                if not 1 <= length <= _MAX_FRAME:
                    break
                body = await reader.readexactly(length - 1)
                source, target, payload = _parse_frame_body(body)
                reply_kind, reply_payload = await loop.run_in_executor(
                    None, self._handle_frame, kind, source, target, payload,
                    conn_state,
                )
                writer.write(
                    _encode_frame(reply_kind, self.site_id, source, reply_payload)
                )
                await writer.drain()
                with self._lock:
                    self.stats.replies_sent += 1
                    self.stats.bytes_sent += len(reply_payload)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    # -- server side (thread-per-connection) -------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return
            with self._lock:
                self._server_conns.append(sock)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(sock,),
                name=f"site-{self.site_id}-conn",
                daemon=True,
            )
            thread.start()

    def _serve_connection(self, sock: socket.socket) -> None:
        conn_state: Dict[str, Any] = {}
        try:
            while not self._closed:
                kind, source, target, payload = _read_frame(sock)
                reply_kind, reply_payload = self._handle_frame(
                    kind, source, target, payload, conn_state
                )
                sock.sendall(
                    _encode_frame(reply_kind, self.site_id, source, reply_payload)
                )
                with self._lock:
                    self.stats.replies_sent += 1
                    self.stats.bytes_sent += len(reply_payload)
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _handle_frame(
        self,
        kind: int,
        source: str,
        target: str,
        payload: bytes,
        conn_state: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, bytes]:
        if conn_state is None:
            conn_state = {}
        try:
            if kind == KIND_HELLO:
                hello = json.loads(payload.decode("utf-8"))
                if hello.get("version") != PROTOCOL_VERSION:
                    raise ConfigurationError(
                        f"protocol version mismatch: peer {source} speaks"
                        f" {hello.get('version')}, this site speaks {PROTOCOL_VERSION}"
                    )
                conn_state["peer_site"] = hello.get("site")
                reply = {"version": PROTOCOL_VERSION, "site": self.site_id}
                if self._codec_prefs is not None:
                    chosen = self._negotiate_codec(hello.get("codecs"))
                    conn_state["codec"] = chosen
                    reply["codec"] = chosen
                    reply["codecs"] = list(self._codec_prefs)
                return KIND_HELLO, json.dumps(reply).encode("utf-8")
            if kind == KIND_CONTROL:
                if self._control_handler is None:
                    raise ConfigurationError("no control handler installed")
                request = json.loads(payload.decode("utf-8"))
                reply = self._control_handler(request)
                return KIND_REPLY_OK, json.dumps(reply).encode("utf-8")
            if kind == KIND_REQUEST:
                if self._inbound_gate is not None:
                    # May raise OverloadError: the shed becomes a typed
                    # fast-fail REPLY_ERR before any dispatch work.
                    self._inbound_gate(conn_state.get("peer_site"))
                if self._request_handler is None:
                    raise ConfigurationError("no request handler installed")
                wire_codec = conn_state.get("codec", self._local_codec)
                request_bytes = self._transcode(
                    payload, wire_codec, self._local_codec
                )
                reply_bytes = self._request_handler(target, request_bytes)
                return KIND_REPLY_OK, self._transcode(
                    reply_bytes, self._local_codec, wire_codec
                )
            raise ConfigurationError(f"unknown frame kind {kind}")
        except BaseException as exc:
            described = {"type": type(exc).__name__, "message": str(exc)}
            return KIND_REPLY_ERR, json.dumps(described).encode("utf-8")

    # -- client side -------------------------------------------------------

    def _dial(self, peer_id: str) -> _Connection:
        host, port = self._peers[peer_id]
        sock = socket.create_connection((host, port), timeout=self.connect_timeout)
        sock.settimeout(self.request_timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn = _Connection(sock)
        hello = json.dumps(self._hello_payload()).encode("utf-8")
        reply_kind, reply_payload = conn.round_trip(
            KIND_HELLO, self.site_id, peer_id, hello
        )
        if reply_kind == KIND_REPLY_ERR:
            conn.close()
            raise self._revive_error(reply_payload)
        if reply_kind != KIND_HELLO:
            conn.close()
            raise CommunicationError(
                f"peer {peer_id} answered HELLO with frame kind {reply_kind}"
            )
        if self._codec_prefs is not None:
            try:
                reply = json.loads(reply_payload.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                reply = {}
            chosen = reply.get("codec")
            if chosen is None:
                # A legacy-era peer replied without negotiating: speak
                # the historical wire format to it.
                chosen = "legacy"
            if chosen not in self._codec_marshallers:
                conn.close()
                raise ConfigurationError(
                    f"peer {peer_id} chose wire codec {chosen!r} which this"
                    f" site cannot speak (have {sorted(self._codec_marshallers)})"
                )
            self._peer_codecs[peer_id] = chosen
        return conn

    def _checkout(self, peer_id: str) -> _Connection:
        with self._lock:
            idle = self._idle.get(peer_id)
            if idle:
                return idle.pop()
        return self._dial(peer_id)

    def _checkin(self, peer_id: str, conn: _Connection) -> None:
        with self._lock:
            if self._closed:
                conn.close()
                return
            self._idle.setdefault(peer_id, []).append(conn)

    def _revive_error(self, payload: bytes) -> BaseException:
        try:
            described = json.loads(payload.decode("utf-8"))
            type_name = described.get("type", "")
            message = described.get("message", "")
        except (ValueError, UnicodeDecodeError):
            type_name, message = "", repr(payload[:128])
        exc_type = _WIRE_ERRORS.get(type_name)
        if exc_type is not None:
            return exc_type(message)
        return CommunicationError(f"remote {type_name or 'error'}: {message}")

    def _round_trip(
        self,
        peer_id: str,
        kind: int,
        source: str,
        target: str,
        payload: bytes,
        attempts: Optional[int] = None,
        ignore_quarantine: bool = False,
    ) -> Tuple[int, bytes]:
        """One request/reply against ``peer_id``, reconnecting under the
        transport's :class:`RetryPolicy` (capped backoff + jitter) when
        the peer is down or a pooled connection has died underneath us.
        A quarantined peer fails fast — no dial at all — unless the
        caller is the membership layer's half-open probe."""
        if self._closed:
            raise CommunicationError(f"transport for site {self.site_id} is closed")
        if peer_id not in self._peers:
            raise CommunicationError(
                f"site {self.site_id} has no address for peer {peer_id!r}"
            )
        if not ignore_quarantine:
            with self._lock:
                reason = self._quarantined.get(peer_id)
            if reason is not None:
                with self._lock:
                    self.stats.requests_dropped += 1
                    self.stats.quarantine_rejections += 1
                raise CommunicationError(
                    f"peer {peer_id} quarantined ({reason}); failing fast"
                )
        policy = self.retry_policy
        if attempts is not None:
            policy = RetryPolicy(
                max_attempts=attempts,
                base_delay=policy.base_delay,
                multiplier=policy.multiplier,
                max_delay=policy.max_delay,
                jitter=policy.jitter,
                deadline=policy.deadline,
            )

        def one_round() -> Tuple[int, bytes]:
            conn = self._checkout(peer_id)
            try:
                reply = conn.round_trip(kind, source, target, payload)
            except (ConnectionError, OSError):
                # The connection died mid-round; the request may or may
                # not have executed (at-least-once, like a duplicated
                # simulated delivery).  Retry on a fresh connection.
                conn.close()
                raise
            self._checkin(peer_id, conn)
            return reply

        def count_reconnect(_attempt: int, _error: BaseException) -> None:
            # Distinct re-dial attempts, not requests: a request that
            # succeeds first try contributes nothing here.
            with self._lock:
                self.stats.reconnects += 1

        try:
            return policy.call(  # type: ignore[return-value]
                one_round,
                retry_on=(ConnectionError, OSError),
                on_retry=count_reconnect,
            )
        except (ConnectionError, OSError) as exc:
            with self._lock:
                self.stats.requests_dropped += 1
            raise CommunicationError(
                f"peer {peer_id} unreachable after {policy.max_attempts}"
                f" attempts: {exc}"
            )

    def request(
        self, peer_id: str, source_node: str, target_node: str, request_bytes: bytes
    ) -> bytes:
        """Send one marshalled request to ``peer_id`` and return the
        marshalled reply (raising the revived typed error on failure).

        With codec negotiation enabled and a peer whose negotiated wire
        codec differs from the local one, the request is transcoded on
        the way out and the reply on the way back — the hosting ORB
        never sees foreign bytes."""
        wire_codec = self._local_codec
        if self._codec_prefs is not None:
            wire_codec = self._wire_codec(peer_id)
            request_bytes = self._transcode(
                request_bytes, self._local_codec, wire_codec
            )
        with self._lock:
            self.stats.requests_sent += 1
            self.stats.bytes_sent += len(request_bytes)
        kind, payload = self._round_trip(
            peer_id, KIND_REQUEST, source_node, target_node, request_bytes
        )
        if kind == KIND_REPLY_ERR:
            raise self._revive_error(payload)
        return self._transcode(payload, wire_codec, self._local_codec)

    def control(
        self,
        peer_id: str,
        operation: Dict[str, Any],
        attempts: Optional[int] = None,
        probe: bool = False,
    ) -> Dict[str, Any]:
        """Site-level JSON RPC (ping, locate) against one peer.

        ``attempts=1`` probes without the reconnect backoff — the right
        setting for discovery sweeps that must not stall on a dead peer.
        ``probe=True`` additionally bypasses quarantine: it is how the
        membership layer's half-open heartbeat reaches a DOWN peer to
        discover it recovered.
        """
        payload = json.dumps(operation).encode("utf-8")
        with self._lock:
            self.stats.requests_sent += 1
            self.stats.bytes_sent += len(payload)
        kind, reply = self._round_trip(
            peer_id,
            KIND_CONTROL,
            self.site_id,
            peer_id,
            payload,
            attempts=attempts,
            ignore_quarantine=probe,
        )
        if kind == KIND_REPLY_ERR:
            raise self._revive_error(reply)
        return json.loads(reply.decode("utf-8"))

    # -- the Transport seam ------------------------------------------------

    def deliver(
        self,
        source_node: str,
        target_node: str,
        request_bytes: bytes,
        dispatch: Callable[[bytes], bytes],
    ) -> bytes:
        """Local targets dispatch in-process; targets registered to a
        peer cross the wire.  Stats are counted either way, so the
        counters mean the same thing they mean on the simulated path."""
        home = self._node_homes.get(target_node)
        if home is None or home == self.site_id:
            with self._lock:
                self.stats.requests_sent += 1
                self.stats.bytes_sent += len(request_bytes)
            reply = dispatch(request_bytes)
            with self._lock:
                self.stats.replies_sent += 1
                self.stats.bytes_sent += len(reply)
            return reply
        return self.request(home, source_node, target_node, request_bytes)

    # -- introspection -----------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        described = {
            "transport": type(self).__name__,
            "site": self.site_id,
            "address": list(self.address) if self.address else None,
            "peers": {peer: list(addr) for peer, addr in sorted(self._peers.items())},
            "quarantined": self.quarantined(),
            "retry_policy": self.retry_policy.describe(),
        }
        if self._codec_prefs is not None:
            described["codecs"] = {
                "local": self._local_codec,
                "preferences": list(self._codec_prefs),
                "peers": dict(sorted(self._peer_codecs.items())),
                "transcodes": self.codec_transcodes,
            }
        return described
